#!/usr/bin/env bash
# Smoke benchmark for the precomputation layer.
#
#   ./scripts/bench.sh                  # toy64, seconds
#   ./scripts/bench.sh --params ss512   # production-size acceptance run
#
# Arguments are passed through to benchmarks.smoke; results merge into
# BENCH_pairing.json at the repo root (see docs/PERFORMANCE.md for the
# schema).
set -eu
cd "$(dirname "$0")/.."

PYTHONPATH=src python -m benchmarks.smoke "$@"
