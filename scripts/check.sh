#!/usr/bin/env bash
# The full local gate: exactly what CI runs.
#
#   ./scripts/check.sh            # tier-1 tests + repro.lint (+ ruff/mypy if installed)
#   ./scripts/check.sh --fast     # skip the test suite, just the static checks
#
# ruff and mypy are optional: they are skipped with a notice when not
# installed so the gate works on the offline, stdlib-only toolchain the
# repo targets.  mypy is advisory (reported, never fails the gate) while
# the tree's annotations are still being tightened.

set -u
cd "$(dirname "$0")/.."

fast=0
[ "${1:-}" = "--fast" ] && fast=1

failures=0

step() {
    echo
    echo "== $1"
}

if [ "$fast" -eq 0 ]; then
    step "tier-1 tests (pytest)"
    PYTHONPATH=src python -m pytest -x -q || failures=$((failures + 1))
fi

step "crypto-hygiene lint (repro.lint)"
PYTHONPATH=src python -m repro.lint src examples benchmarks \
    --check-baseline --self-time-budget 60 || failures=$((failures + 1))

step "fork-safety lint (RP3xx, scoped)"
PYTHONPATH=src python -m repro.lint src examples benchmarks \
    --select RP3 || failures=$((failures + 1))

step "ruff"
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests || failures=$((failures + 1))
else
    echo "ruff not installed — skipped (config lives in pyproject.toml)"
fi

step "mypy (advisory)"
if command -v mypy >/dev/null 2>&1; then
    mypy || echo "mypy reported issues (advisory — not failing the gate)"
else
    echo "mypy not installed — skipped (config lives in pyproject.toml)"
fi

echo
if [ "$failures" -ne 0 ]; then
    echo "check.sh: FAILED ($failures gate(s))"
    exit 1
fi
echo "check.sh: all gates passed"
