#!/usr/bin/env bash
# The full local gate: exactly what CI runs.
#
#   ./scripts/check.sh            # tier-1 tests + repro.lint (+ ruff/mypy if installed)
#   ./scripts/check.sh --fast     # skip the test suite, just the static checks
#   ./scripts/check.sh --bench    # also run the toy64 smoke benchmark and the
#                                 # trajectory regression check (advisory —
#                                 # mirrors CI's non-blocking bench job)
#   ./scripts/check.sh --chaos    # also run the seeded fault-injection
#                                 # chaos suite (pytest -m faults) across
#                                 # the three fixed CI seeds
#   ./scripts/check.sh --backends # also run the cross-backend identity
#                                 # suites against every field-arithmetic
#                                 # backend the box has (gmpy2 legs skip
#                                 # themselves when the wheel is absent —
#                                 # mirrors CI's test-gmpy2 job)
#
# ruff and mypy are optional: they are skipped with a notice when not
# installed so the gate works on the offline, stdlib-only toolchain the
# repo targets.  mypy is advisory (reported, never fails the gate) while
# the tree's annotations are still being tightened.

set -u
cd "$(dirname "$0")/.."

fast=0
bench=0
chaos=0
backends=0
for arg in "$@"; do
    [ "$arg" = "--fast" ] && fast=1
    [ "$arg" = "--bench" ] && bench=1
    [ "$arg" = "--chaos" ] && chaos=1
    [ "$arg" = "--backends" ] && backends=1
done

failures=0

step() {
    echo
    echo "== $1"
}

if [ "$fast" -eq 0 ]; then
    step "tier-1 tests (pytest)"
    PYTHONPATH=src python -m pytest -x -q || failures=$((failures + 1))
fi

# One run gates all four families (RP1xx pattern rules, RP2xx taint,
# RP3xx fork-safety, RP4xx typestate protocols); --jobs parallelizes
# parsing without changing a byte of the report.
step "crypto-hygiene lint (repro.lint, RP1xx-RP4xx)"
PYTHONPATH=src python -m repro.lint src examples benchmarks \
    --check-baseline --self-time-budget 60 --jobs 4 \
    || failures=$((failures + 1))

step "ruff"
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests || failures=$((failures + 1))
else
    echo "ruff not installed — skipped (config lives in pyproject.toml)"
fi

step "mypy (advisory)"
if command -v mypy >/dev/null 2>&1; then
    mypy || echo "mypy reported issues (advisory — not failing the gate)"
else
    echo "mypy not installed — skipped (config lives in pyproject.toml)"
fi

if [ "$chaos" -eq 1 ]; then
    step "chaos suite (pytest -m faults, seeds 101/202/303)"
    REPRO_CHAOS_SEEDS="101,202,303" \
        PYTHONPATH=src python -m pytest -q -m faults \
        || failures=$((failures + 1))
fi

if [ "$backends" -eq 1 ]; then
    step "cross-backend identity suites (every available backend)"
    PYTHONPATH=src python -c \
        "from repro.math.backend import available_backends, resolve_backend_name; \
         print('available backends:', ', '.join(available_backends())); \
         print('auto resolves to:', resolve_backend_name('auto'))"
    PYTHONPATH=src python -m pytest -q \
        tests/math/test_backends.py tests/core/test_cross_backend.py \
        tests/core/test_worker_warmup.py \
        || failures=$((failures + 1))
fi

if [ "$bench" -eq 1 ]; then
    step "smoke benchmark + trajectory check (advisory — mirrors CI bench job)"
    ./scripts/bench.sh --rounds 3 \
        || echo "smoke benchmark failed (advisory — not failing the gate)"
    PYTHONPATH=src python -m benchmarks.trajectory --check --rounds 3 \
        || echo "trajectory check reported regressions (advisory — not failing the gate)"
fi

echo
if [ "$failures" -ne 0 ]; then
    echo "check.sh: FAILED ($failures gate(s))"
    exit 1
fi
echo "check.sh: all gates passed"
