"""Byte-level encoding helpers shared across the library.

All serialization in this library is explicit, fixed-width, big-endian.
These helpers centralize the integer/byte conversions and the
length-prefixed framing used by ciphertext and key encodings so that every
module frames data the same way.
"""

from __future__ import annotations

from repro.errors import DecodingError, EncodingError


def int_to_bytes(value: int, length: int) -> bytes:
    """Encode a non-negative integer as exactly ``length`` big-endian bytes.

    Raises :class:`EncodingError` if the value is negative or too large to
    fit, rather than silently truncating.
    """
    if value < 0:
        raise EncodingError(f"cannot encode negative integer {value}")
    try:
        return value.to_bytes(length, "big")
    except OverflowError as exc:
        raise EncodingError(
            f"integer of {value.bit_length()} bits does not fit in "
            f"{length} bytes"
        ) from exc


def int_from_bytes(data: bytes) -> int:
    """Decode a big-endian byte string into a non-negative integer."""
    return int.from_bytes(data, "big")


def byte_length(value: int) -> int:
    """Number of bytes needed to hold ``value`` (at least 1)."""
    return max(1, (value.bit_length() + 7) // 8)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise EncodingError(
            f"xor_bytes requires equal lengths, got {len(a)} and {len(b)}"
        )
    return bytes(x ^ y for x, y in zip(a, b))


def pack_chunks(*chunks: bytes) -> bytes:
    """Frame chunks as ``count || (len || bytes)*`` with 4-byte lengths.

    The inverse is :func:`unpack_chunks`.  Used by ciphertexts and composite
    keys so that parsing is unambiguous regardless of chunk contents.
    """
    parts = [len(chunks).to_bytes(4, "big")]
    for chunk in chunks:
        parts.append(len(chunk).to_bytes(4, "big"))
        parts.append(chunk)
    return b"".join(parts)


def unpack_chunks(data: bytes) -> list[bytes]:
    """Parse a byte string produced by :func:`pack_chunks`."""
    if len(data) < 4:
        raise DecodingError("truncated chunk framing: missing count")
    count = int.from_bytes(data[:4], "big")
    offset = 4
    chunks: list[bytes] = []
    for index in range(count):
        if offset + 4 > len(data):
            raise DecodingError(f"truncated chunk framing at chunk {index}")
        length = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        if offset + length > len(data):
            raise DecodingError(f"chunk {index} overruns buffer")
        chunks.append(data[offset:offset + length])
        offset += length
    if offset != len(data):
        raise DecodingError(f"{len(data) - offset} trailing bytes after chunks")
    return chunks
