"""Network links, latency models and the broadcast channel.

Latency models are callables drawing a per-delivery delay from an
explicit RNG.  :class:`UnicastLink` models the (possibly slow,
congested) sender→receiver path; :class:`BroadcastChannel` models the
time server's one-to-many update dissemination — one ``publish`` call
fans out to every subscriber with an independent jitter draw, which is
exactly the "single update for all receivers" property the scenarios
measure.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import SimulationError
from repro.sim.events import Simulator
from repro.sim.metrics import MetricsCollector


class FixedLatency:
    """Constant delay."""

    def __init__(self, seconds: float):
        if seconds < 0:
            raise SimulationError("latency cannot be negative")
        self.seconds = seconds

    def sample(self, rng: random.Random) -> float:
        return self.seconds


class UniformLatency:
    """Uniform delay on ``[low, high]`` — crude congestion jitter."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise SimulationError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class NormalJitterLatency:
    """Gaussian jitter around a base delay, clamped at a floor."""

    def __init__(self, base: float, jitter_std: float, floor: float = 1e-3):
        if base < 0 or jitter_std < 0:
            raise SimulationError("base and jitter must be non-negative")
        self.base = base
        self.jitter_std = jitter_std
        self.floor = floor

    def sample(self, rng: random.Random) -> float:
        return max(self.floor, rng.gauss(self.base, self.jitter_std))


LatencyModel = Callable  # Anything with .sample(rng) -> float.


class UnicastLink:
    """A point-to-point link delivering byte payloads to one handler."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        rng: random.Random,
        metrics: MetricsCollector | None = None,
        name: str = "unicast",
    ):
        self.sim = sim
        self.latency = latency
        self.rng = rng
        self.metrics = metrics
        self.name = name

    def send(self, payload, size_bytes: int, deliver: Callable) -> float:
        """Schedule delivery; returns the arrival time."""
        delay = self.latency.sample(self.rng)
        arrival = self.sim.now + delay
        if self.metrics is not None:
            self.metrics.record_message(self.name, size_bytes)
        self.sim.schedule_in(delay, lambda: deliver(payload))
        return arrival


class BroadcastChannel:
    """One-to-many dissemination with independent per-subscriber jitter."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        rng: random.Random,
        metrics: MetricsCollector | None = None,
        name: str = "broadcast",
    ):
        self.sim = sim
        self.latency = latency
        self.rng = rng
        self.metrics = metrics
        self.name = name
        self._subscribers: list[Callable] = []

    def subscribe(self, deliver: Callable) -> None:
        self._subscribers.append(deliver)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def publish(self, payload, size_bytes: int) -> list[float]:
        """Fan the payload out; the *sender* pays for one message.

        Returns each subscriber's arrival time (for fairness analysis).
        Per-subscriber jitter is drawn independently, modelling last-hop
        variation under a multicast/satellite-style distribution tree.
        """
        if self.metrics is not None:
            self.metrics.record_message(self.name, size_bytes)
        arrivals = []
        for deliver in self._subscribers:
            delay = self.latency.sample(self.rng)
            arrivals.append(self.sim.now + delay)
            self.sim.schedule_in(delay, (lambda d: (lambda: d(payload)))(deliver))
        return arrivals
