"""The paper's two motivating applications, run end to end in simulation.

* :func:`run_programming_contest` — §1: problem sets must reach teams
  all over the world *before* the start time but be unreadable until it;
  fairness is the spread of effective opening times across teams.
* :func:`run_sealed_bid_auction` — §1: bids are sealed until the close
  so that nobody (including the auctioneer handling them) can leak them
  to competitors early.

Both return small result objects with the measured timing/traffic plus
the anonymity ledger, so tests and benchmark E10 can assert the paper's
qualitative claims on concrete numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.keys import UserKeyPair
from repro.core.tre import TimedReleaseScheme
from repro.errors import SimulationError, UpdateNotAvailableError
from repro.pairing.api import PairingGroup
from repro.sim.actors import (
    NaiveSenderNode,
    TimeServerNode,
    TREReceiverNode,
    TRESenderNode,
)
from repro.sim.events import Simulator
from repro.sim.metrics import AnonymityLedger, MetricsCollector
from repro.sim.network import (
    BroadcastChannel,
    NormalJitterLatency,
    UnicastLink,
    UniformLatency,
)


@dataclass
class ContestResult:
    """Timing outcome of one simulated contest."""

    contest_start: float
    tre_open_times: list[float]
    naive_open_times: list[float]
    update_arrivals: list[float]
    ciphertext_arrivals: list[float]
    server_broadcasts: int
    server_bytes: int
    ledger: AnonymityLedger

    @property
    def tre_spread(self) -> float:
        return max(self.tre_open_times) - min(self.tre_open_times)

    @property
    def naive_spread(self) -> float:
        return max(self.naive_open_times) - min(self.naive_open_times)

    @property
    def tre_worst_lag(self) -> float:
        """Worst opening delay past the official start (TRE arm)."""
        return max(t - self.contest_start for t in self.tre_open_times)

    @property
    def naive_worst_lag(self) -> float:
        return max(t - self.contest_start for t in self.naive_open_times)


def run_programming_contest(
    teams: int = 20,
    seed: int = 2005,
    group: PairingGroup | None = None,
    contest_start: float = 3600.0,
    problem_bytes: int = 20_000,
    message_latency=None,
    update_latency=None,
    send_lead_time: float = 3000.0,
) -> ContestResult:
    """Simulate a worldwide programming contest (paper §1).

    The organizer TRE-encrypts the problem set with release time =
    contest start, ships it to every team well in advance over slow,
    jittery links, and the passive time server broadcasts one tiny
    update at the start.  A parallel "naive" arm withholds the plaintext
    until the start and then ships it over the same links.
    """
    if teams < 1:
        raise SimulationError("need at least one team")
    rng = random.Random(seed)
    group = group or PairingGroup("toy64")
    message_latency = message_latency or UniformLatency(5.0, 240.0)
    update_latency = update_latency or NormalJitterLatency(0.08, 0.03)

    sim = Simulator()
    metrics = MetricsCollector()
    ledger = AnonymityLedger()
    channel = BroadcastChannel(sim, update_latency, rng, metrics, "updates")
    server_node = TimeServerNode(sim, group, channel, rng)
    organizer = TRESenderNode("organizer", sim, group, server_node.public_key, rng)
    naive_organizer = NaiveSenderNode(sim, metrics)

    start_label = b"contest:start"
    problem_set = rng.randbytes(problem_bytes)

    receivers = []
    for index in range(teams):
        receiver = TREReceiverNode(
            f"team-{index}",
            sim,
            group,
            server_node.public_key,
            channel,
            rng,
            metrics,
        )
        receivers.append(receiver)
        link = UnicastLink(sim, message_latency, rng, metrics, "problems")
        organizer.send(
            problem_set,
            receiver,
            link,
            start_label,
            at=contest_start - send_lead_time,
        )
        naive_link = UnicastLink(sim, message_latency, rng, metrics, "naive")
        naive_organizer.send_at_release(problem_set, contest_start, naive_link)

    server_node.schedule_update(contest_start, start_label)
    sim.run()

    tre_open_times = metrics.series["tre_open_time"]
    if len(tre_open_times) != teams:
        raise SimulationError(
            f"{teams - len(tre_open_times)} teams never opened the problems "
            "(ciphertext arrived after the update?)"
        )
    ciphertext_arrivals = [
        value
        for name, values in metrics.series.items()
        if name.startswith("ct_arrival:")
        for value in values
    ]
    return ContestResult(
        contest_start=contest_start,
        tre_open_times=tre_open_times,
        naive_open_times=metrics.series["naive_open_time"],
        update_arrivals=server_node.broadcast_arrivals[start_label],
        ciphertext_arrivals=ciphertext_arrivals,
        server_broadcasts=metrics.channels["updates"].messages,
        server_bytes=metrics.channels["updates"].bytes,
        ledger=ledger,
    )


@dataclass
class AuctionResult:
    """Outcome of one simulated sealed-bid auction."""

    close_time: float
    bids: dict[str, int]
    winner: str
    winning_bid: int
    opened_at: float
    early_opening_attempts: int
    early_openings_succeeded: int
    early_openings_refused: int
    server_broadcasts: int
    ledger: AnonymityLedger
    bid_bytes: dict[str, int] = field(default_factory=dict)


def run_sealed_bid_auction(
    bidders: int = 8,
    seed: int = 1993,
    group: PairingGroup | None = None,
    close_time: float = 600.0,
    early_attempt_times: tuple[float, ...] = (200.0, 400.0),
) -> AuctionResult:
    """Simulate a sealed-bid government tender (paper §1).

    Each bidder encrypts its bid to the auctioneer with release time =
    the close.  The auctioneer holds all ciphertexts and *tries* to open
    them early (modelling the corrupt-agent threat the paper describes);
    every early attempt fails because no update exists yet.  At the
    close the time server broadcasts one update and all bids open.
    """
    if bidders < 2:
        raise SimulationError("an auction needs at least two bidders")
    rng = random.Random(seed)
    group = group or PairingGroup("toy64")

    sim = Simulator()
    metrics = MetricsCollector()
    ledger = AnonymityLedger()
    channel = BroadcastChannel(
        sim, NormalJitterLatency(0.05, 0.01), rng, metrics, "updates"
    )
    server_node = TimeServerNode(sim, group, channel, rng)
    scheme = TimedReleaseScheme(group)
    auctioneer = UserKeyPair.generate(group, server_node.public_key, rng)

    close_label = b"auction:close"
    bids = {f"bidder-{i}": rng.randrange(1_000, 1_000_000) for i in range(bidders)}
    sealed: dict[str, object] = {}
    bid_bytes: dict[str, int] = {}

    def submit(name: str, amount: int):
        def do_submit():
            ciphertext = scheme.encrypt(
                str(amount).encode(),
                auctioneer.public,
                server_node.public_key,
                close_label,
                rng,
            )
            sealed[name] = ciphertext
            bid_bytes[name] = ciphertext.size_bytes(group)

        return do_submit

    for index, (name, amount) in enumerate(sorted(bids.items())):
        sim.schedule_at(10.0 + index, submit(name, amount))

    # The corrupt-agent probe: before the close, try opening with any
    # update the server has actually published (none for the close label).
    early_results = {"attempts": 0, "succeeded": 0, "refused": 0}

    def attempt_early_opening():
        for name, ciphertext in sealed.items():
            early_results["attempts"] += 1
            try:
                server_node.server.lookup(close_label)
                early_results["succeeded"] += 1
            except UpdateNotAvailableError:
                # No update published yet: the bid stays sealed.  The
                # refusal is the security property — count it so the
                # result proves every pre-close attempt was denied.
                early_results["refused"] += 1

    for when in early_attempt_times:
        sim.schedule_at(when, attempt_early_opening)

    opened: dict[str, int] = {}
    opened_at = {"time": None}

    def open_all(update):
        for name, ciphertext in sorted(sealed.items()):
            plaintext = scheme.decrypt(
                ciphertext, auctioneer, update, server_node.public_key
            )
            opened[name] = int(plaintext.decode())
        opened_at["time"] = sim.now

    channel.subscribe(open_all)
    server_node.schedule_update(close_time, close_label)
    sim.run()

    if opened != bids:
        raise SimulationError("recovered bids do not match submitted bids")
    winner = max(opened, key=lambda name: opened[name])
    return AuctionResult(
        close_time=close_time,
        bids=bids,
        winner=winner,
        winning_bid=bids[winner],
        opened_at=opened_at["time"],
        early_opening_attempts=early_results["attempts"],
        early_openings_succeeded=early_results["succeeded"],
        early_openings_refused=early_results["refused"],
        server_broadcasts=metrics.channels["updates"].messages,
        ledger=ledger,
    )


@dataclass
class ThresholdBeaconResult:
    """Outcome of one simulated threshold-beacon release."""

    release_time: float
    member_count: int
    threshold: int
    offline_members: int
    share_arrivals: list[float]
    combined_at: float | None
    receivers_opened: int
    open_times: list[float]

    @property
    def time_to_update(self) -> float:
        """Delay from the release instant to the combined update."""
        if self.combined_at is None:
            raise SimulationError("the beacon never reached its threshold")
        return self.combined_at - self.release_time


def run_threshold_beacon(
    members: int = 5,
    threshold: int = 3,
    offline: int = 1,
    receivers: int = 10,
    seed: int = 2024,
    group: PairingGroup | None = None,
    release_time: float = 120.0,
    share_latency=None,
) -> ThresholdBeaconResult:
    """Simulate a k-of-N beacon releasing one epoch under partial failure.

    ``offline`` members never publish their share.  A relay collects
    share broadcasts, verifies each against the Feldman commitments,
    and combines as soon as ``threshold`` valid shares have arrived;
    the combined update is then broadcast to the receivers, who hold
    TRE ciphertexts sealed to the release label.
    """
    from repro.core.threshold import ThresholdTimeServer

    if offline > members - threshold:
        raise SimulationError(
            "too many offline members: the threshold can never be met"
        )
    rng = random.Random(seed)
    group = group or PairingGroup("toy64")
    share_latency = share_latency or NormalJitterLatency(0.25, 0.10)

    sim = Simulator()
    metrics = MetricsCollector()
    coordinator, member_objs = ThresholdTimeServer.setup(
        group, members=members, threshold=threshold, rng=rng
    )
    label = b"beacon:release"
    scheme = TimedReleaseScheme(group)
    user_keys = [
        UserKeyPair.generate(group, coordinator.public_key, rng)
        for _ in range(receivers)
    ]
    ciphertexts = [
        scheme.encrypt(
            f"payload-{i}".encode(), key.public, coordinator.public_key,
            label, rng,
        )
        for i, key in enumerate(user_keys)
    ]

    update_channel = BroadcastChannel(
        sim, NormalJitterLatency(0.05, 0.02), rng, metrics, "updates"
    )
    opened: list[tuple[int, bytes]] = []

    def make_receiver(index):
        def on_update(update):
            plaintext = scheme.decrypt(
                ciphertexts[index], user_keys[index], update,
                coordinator.public_key,
            )
            opened.append((index, plaintext))
            metrics.observe("beacon_open_time", sim.now)

        return on_update

    for index in range(receivers):
        update_channel.subscribe(make_receiver(index))

    state = {"shares": [], "combined_at": None, "arrivals": []}

    def on_share(share):
        state["arrivals"].append(sim.now)
        if state["combined_at"] is not None:
            return
        if not coordinator.verify_share(share):
            return
        state["shares"].append(share)
        if len(state["shares"]) >= threshold:
            update = coordinator.combine(state["shares"], verify=False)
            state["combined_at"] = sim.now
            update_channel.publish(update, len(update.to_bytes(group)))

    online = member_objs[offline:]
    for member in online:
        link = UnicastLink(sim, share_latency, rng, metrics, "shares")
        sim.schedule_at(
            release_time,
            (lambda m=member, l=link: l.send(
                m.issue_update_share(label),
                group.point_bytes + len(label),
                on_share,
            )),
        )
    sim.run()

    expected = [(i, f"payload-{i}".encode()) for i in range(receivers)]
    if sorted(opened) != expected:
        raise SimulationError("not every receiver recovered its payload")
    return ThresholdBeaconResult(
        release_time=release_time,
        member_count=members,
        threshold=threshold,
        offline_members=offline,
        share_arrivals=state["arrivals"],
        combined_at=state["combined_at"],
        receivers_opened=len(opened),
        open_times=metrics.series["beacon_open_time"],
    )
