"""Simulation actors that run the real cryptography from :mod:`repro.core`.

These are not mocks: a :class:`TimeServerNode` signs genuine time-bound
key updates, a :class:`TREReceiverNode` performs genuine pairing
decryptions.  The simulator only supplies the clock and the network.
"""

from __future__ import annotations

import random

from repro.core.keys import UserKeyPair
from repro.core.timeserver import PassiveTimeServer, TimeBoundKeyUpdate
from repro.core.tre import TimedReleaseScheme, TRECiphertext
from repro.pairing.api import PairingGroup
from repro.sim.events import Simulator
from repro.sim.metrics import AnonymityLedger, MetricsCollector
from repro.sim.network import BroadcastChannel, UnicastLink


class TimeServerNode:
    """A passive time server on the broadcast channel.

    Publishes one update per scheduled label, to everyone at once.  It
    has no unicast links and no registry of users — its *only* output
    interface is the broadcast channel, matching the paper's model.
    """

    def __init__(
        self,
        sim: Simulator,
        group: PairingGroup,
        channel: BroadcastChannel,
        rng: random.Random,
    ):
        self.sim = sim
        self.group = group
        self.channel = channel
        self.server = PassiveTimeServer(group, rng=rng)
        self.broadcast_arrivals: dict[bytes, list[float]] = {}

    @property
    def public_key(self):
        return self.server.public_key

    def schedule_update(self, when: float, time_label: bytes) -> None:
        self.sim.schedule_at(when, lambda: self._broadcast(time_label))

    def _broadcast(self, time_label: bytes) -> None:
        update = self.server.publish_update(time_label)
        size = len(update.to_bytes(self.group))
        self.broadcast_arrivals[time_label] = self.channel.publish(update, size)


class TREReceiverNode:
    """Holds a TRE key pair; buffers ciphertexts; opens them on update."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        group: PairingGroup,
        server_public,
        channel: BroadcastChannel,
        rng: random.Random,
        metrics: MetricsCollector,
        verify_updates: bool = True,
    ):
        self.name = name
        self.sim = sim
        self.group = group
        self.server_public = server_public
        self.metrics = metrics
        self.verify_updates = verify_updates
        self.scheme = TimedReleaseScheme(group)
        self.keypair = UserKeyPair.generate(group, server_public, rng)
        self.pending: dict[bytes, list[TRECiphertext]] = {}
        self.opened: list[tuple[bytes, bytes, float]] = []
        self.update_arrivals: dict[bytes, float] = {}
        channel.subscribe(self.receive_update)

    @property
    def public(self):
        return self.keypair.public

    def receive_ciphertext(self, ciphertext: TRECiphertext) -> None:
        self.metrics.observe(f"ct_arrival:{self.name}", self.sim.now)
        self.pending.setdefault(ciphertext.time_label, []).append(ciphertext)

    def receive_update(self, update: TimeBoundKeyUpdate) -> None:
        self.update_arrivals[update.time_label] = self.sim.now
        for ciphertext in self.pending.pop(update.time_label, []):
            plaintext = self.scheme.decrypt(
                ciphertext,
                self.keypair,
                update,
                self.server_public if self.verify_updates else None,
            )
            self.opened.append((update.time_label, plaintext, self.sim.now))
            self.metrics.observe("tre_open_time", self.sim.now)


class TRESenderNode:
    """Encrypts and ships ciphertexts ahead of the release time."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        group: PairingGroup,
        server_public,
        rng: random.Random,
    ):
        self.name = name
        self.sim = sim
        self.group = group
        self.server_public = server_public
        self.rng = rng
        self.scheme = TimedReleaseScheme(group)

    def send(
        self,
        message: bytes,
        receiver: TREReceiverNode,
        link: UnicastLink,
        time_label: bytes,
        at: float | None = None,
    ) -> None:
        def transmit():
            ciphertext = self.scheme.encrypt(
                message,
                receiver.public,
                self.server_public,
                time_label,
                self.rng,
            )
            link.send(
                ciphertext,
                ciphertext.size_bytes(self.group),
                receiver.receive_ciphertext,
            )

        self.sim.schedule_at(self.sim.now if at is None else at, transmit)


class NaiveSenderNode:
    """The no-crypto strawman: hold the plaintext, send at release time.

    Message opening time then includes the full (large-payload,
    congested) delivery latency — the unfairness TRE avoids by shipping
    the ciphertext early.
    """

    def __init__(self, sim: Simulator, metrics: MetricsCollector):
        self.sim = sim
        self.metrics = metrics

    def send_at_release(
        self,
        message: bytes,
        release_time: float,
        link: UnicastLink,
        ledger: AnonymityLedger | None = None,
        receiver_name: str = "receiver",
    ) -> None:
        def transmit():
            def deliver(payload):
                self.metrics.observe("naive_open_time", self.sim.now)

            link.send(message, len(message), deliver)

        self.sim.schedule_at(release_time, transmit)
