"""Measurement plumbing: traffic accounting and the anonymity ledger.

Two separable concerns:

* :class:`MetricsCollector` — counts messages and bytes per channel and
  collects named observation series (e.g. per-receiver message opening
  times) with summary statistics.
* :class:`AnonymityLedger` — records every identity-revealing fact each
  party observes.  The paper's privacy claims become assertions over
  this ledger: after a full TRE scenario the *time server's* entry must
  be empty, while the escrow/Rivest/Mont baselines accumulate entries.
"""

from __future__ import annotations

import statistics
from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class ChannelStats:
    messages: int = 0
    bytes: int = 0


class MetricsCollector:
    """Accumulates per-channel traffic and named observation series."""

    def __init__(self):
        self.channels: dict[str, ChannelStats] = defaultdict(ChannelStats)
        self.series: dict[str, list[float]] = defaultdict(list)

    def record_message(self, channel: str, size_bytes: int) -> None:
        stats = self.channels[channel]
        stats.messages += 1
        stats.bytes += size_bytes

    def observe(self, series: str, value: float) -> None:
        self.series[series].append(value)

    def summary(self, series: str) -> dict[str, float]:
        values = self.series.get(series, [])
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "mean": statistics.fmean(values),
            "min": min(values),
            "max": max(values),
            "spread": max(values) - min(values),
            "stdev": statistics.pstdev(values),
        }

    def channel_totals(self) -> dict[str, tuple[int, int]]:
        return {
            name: (stats.messages, stats.bytes)
            for name, stats in sorted(self.channels.items())
        }


@dataclass
class PartyView:
    """What one party has directly observed."""

    sender_identities: set[bytes] = field(default_factory=set)
    receiver_identities: set[bytes] = field(default_factory=set)
    plaintexts_seen: int = 0
    release_times_seen: set[bytes] = field(default_factory=set)

    def is_empty(self) -> bool:
        return (
            not self.sender_identities
            and not self.receiver_identities
            and self.plaintexts_seen == 0
            and not self.release_times_seen
        )


class AnonymityLedger:
    """Per-party observation record backing the privacy assertions."""

    def __init__(self):
        self._views: dict[str, PartyView] = defaultdict(PartyView)

    def view(self, party: str) -> PartyView:
        return self._views[party]

    def record_sender_seen(self, party: str, identity: bytes) -> None:
        self._views[party].sender_identities.add(identity)

    def record_receiver_seen(self, party: str, identity: bytes) -> None:
        self._views[party].receiver_identities.add(identity)

    def record_plaintext_seen(self, party: str) -> None:
        self._views[party].plaintexts_seen += 1

    def record_release_time_seen(self, party: str, label: bytes) -> None:
        self._views[party].release_times_seen.add(label)

    def server_learned_nothing(self, party: str = "time-server") -> bool:
        """The paper's headline anonymity property as a predicate."""
        return self._views[party].is_empty()
