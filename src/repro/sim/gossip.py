"""Epidemic (gossip) dissemination of time-bound key updates.

The paper's server "publishes/broadcasts" one update and is done; in a
real deployment that broadcast is carried by infrastructure — a CDN, a
satellite feed, or peer-to-peer gossip.  This module models the gossip
option: the server *injects* the update at a handful of seed nodes and
every node forwards the first copy it sees to ``fanout`` random peers.

What it demonstrates, quantitatively (see
``tests/sim/test_gossip.py``):

* the server's own cost stays O(1) in the population — it sends
  ``seeds`` messages no matter how many receivers exist;
* coverage completes in O(log n) hops with high probability;
* the update needs no secure channel at any hop: every node verifies
  the BLS self-authentication before forwarding, so a malicious relay
  cannot substitute a forged update (it just gets dropped).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.events import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.network import LatencyModel


@dataclass
class GossipResult:
    """Outcome of one dissemination."""

    injected_at: float
    seeds: int
    fanout: int
    node_count: int
    delivery_times: dict[str, float] = field(default_factory=dict)
    messages_sent: int = 0
    forged_copies_dropped: int = 0

    @property
    def coverage(self) -> float:
        return len(self.delivery_times) / self.node_count

    @property
    def completion_time(self) -> float:
        if len(self.delivery_times) < self.node_count:
            raise SimulationError("gossip did not reach every node")
        return max(self.delivery_times.values()) - self.injected_at


class GossipNetwork:
    """A random-peer gossip mesh carrying (and verifying) one payload."""

    def __init__(
        self,
        sim: Simulator,
        node_names: list[str],
        latency: LatencyModel,
        fanout: int,
        rng: random.Random,
        metrics: MetricsCollector | None = None,
        verifier=None,
    ):
        if fanout < 1:
            raise SimulationError("fanout must be at least 1")
        if len(node_names) < 2:
            raise SimulationError("gossip needs at least two nodes")
        self.sim = sim
        self.node_names = list(node_names)
        self.latency = latency
        self.fanout = fanout
        self.rng = rng
        self.metrics = metrics
        # verifier(payload) -> bool; models per-hop self-authentication.
        self.verifier = verifier or (lambda payload: True)

    def disseminate(
        self, payload, size_bytes: int, seeds: int = 1
    ) -> GossipResult:
        """Inject at ``seeds`` random nodes; run until the mesh is quiet."""
        if not 1 <= seeds <= len(self.node_names):
            raise SimulationError("seeds out of range")
        result = GossipResult(
            injected_at=self.sim.now,
            seeds=seeds,
            fanout=self.fanout,
            node_count=len(self.node_names),
        )

        def deliver(node: str, incoming):
            if not self.verifier(incoming):
                result.forged_copies_dropped += 1
                return
            if node in result.delivery_times:
                return  # Already infected; drop the duplicate.
            result.delivery_times[node] = self.sim.now
            peers = [n for n in self.node_names if n != node]
            for peer in self.rng.sample(peers, min(self.fanout, len(peers))):
                delay = self.latency.sample(self.rng)
                result.messages_sent += 1
                if self.metrics is not None:
                    self.metrics.record_message("gossip", size_bytes)
                self.sim.schedule_in(
                    delay, (lambda p=peer: deliver(p, incoming))
                )

        for seed_node in self.rng.sample(self.node_names, seeds):
            # The server's injection — the only messages it ever sends.
            result.messages_sent += 1
            if self.metrics is not None:
                self.metrics.record_message("server-injection", size_bytes)
            self.sim.schedule_in(
                self.latency.sample(self.rng),
                (lambda n=seed_node: deliver(n, payload)),
            )
        self.sim.run()
        return result
