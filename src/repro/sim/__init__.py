"""Discrete-event network simulation substrate.

The paper motivates TRE with distributed scenarios — a sealed-bid
auction and a worldwide programming contest — where the interesting
behaviour is *timing under network jitter*: the big message can be
delivered early and slowly, while the tiny key update arrives at release
time with small jitter (footnote 1).  This package provides:

* :mod:`repro.sim.events` — a deterministic discrete-event engine;
* :mod:`repro.sim.network` — latency models, unicast links and the
  broadcast channel a passive time server uses;
* :mod:`repro.sim.actors` — time-server / sender / receiver nodes that
  run the real cryptography from :mod:`repro.core` inside the simulation;
* :mod:`repro.sim.metrics` — byte/message accounting plus the anonymity
  ledger that records what the server actually observed;
* :mod:`repro.sim.scenarios` — ready-made builders for the paper's two
  motivating applications.
"""

from repro.sim.events import Simulator
from repro.sim.network import (
    BroadcastChannel,
    FixedLatency,
    NormalJitterLatency,
    UniformLatency,
    UnicastLink,
)
from repro.sim.metrics import MetricsCollector

__all__ = [
    "Simulator",
    "FixedLatency",
    "UniformLatency",
    "NormalJitterLatency",
    "UnicastLink",
    "BroadcastChannel",
    "MetricsCollector",
]
