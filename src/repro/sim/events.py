"""A minimal deterministic discrete-event simulator.

Events are ``(time, sequence, callback)`` triples on a heap; the
sequence number breaks ties FIFO so runs are fully reproducible given a
seeded RNG.  Time is a float in seconds (any unit works; the scenarios
use seconds).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError


class Simulator:
    """The event loop: schedule callbacks, then :meth:`run`."""

    def __init__(self):
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self.now}"
            )
        heapq.heappush(self._queue, (when, self._sequence, callback))
        self._sequence += 1

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, callback)

    def run(self, until: float | None = None) -> float:
        """Process events (up to time ``until`` if given); returns now."""
        while self._queue:
            when, _, callback = self._queue[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._queue)
            self.now = when
            self.events_processed += 1
            callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def pending(self) -> int:
        return len(self._queue)
