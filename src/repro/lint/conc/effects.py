"""Per-module state tables and per-function concurrency effect summaries.

The fork-safety pass needs to know, for every function, which pieces of
*process-global* state it touches and how.  Two layers:

* :class:`ModuleState` — one scan per module: which module-level names
  hold mutable containers (or are rebound through ``global``
  statements), which hold cached stateful RNG instances, which
  class-level attributes are mutable, and which globals are covered by
  an ``os.register_at_fork`` reset hook (the sanctioned fix).
* :class:`FunctionEffects` — one scan per function: every touch of
  stdlib ``random`` module state or a cached RNG global (RP301),
  every read/write of a module- or class-level mutable (RP302), every
  first-touch lazy initialization of a process-global (RP304), and
  every nondeterministic merge of parallel results (RP305).

Effects record *where* (the AST node) and *what* (a stable description)
— whether a record becomes a finding is decided by the reachability
analysis in :mod:`repro.lint.conc.analysis`, which knows which
functions run inside worker processes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.conc import registry as creg
from repro.lint.flow.callgraph import FunctionInfo, ModuleImports


# A mutable-container literal or constructor at module/class level.
_CONTAINER_CALLS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque",
     "WeakSet", "WeakValueDictionary", "WeakKeyDictionary"}
)


def _terminal(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_mutable_value(value: ast.expr | None) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return _terminal(value.func) in _CONTAINER_CALLS
    return False


def _is_stateful_rng_value(value: ast.expr | None) -> bool:
    if not isinstance(value, ast.Call):
        return False
    name = _terminal(value.func)
    return (
        name in creg.STATEFUL_RNG_FACTORIES
        and name not in creg.FORK_SAFE_RNG_FACTORIES
    )


@dataclass
class ModuleState:
    """Process-global state declared by one module."""

    path: str
    # Module-level names bound to mutable containers at the top level.
    mutable_globals: set[str] = field(default_factory=set)
    # Module-level names rebound via a `global` statement somewhere —
    # process-global state even when the value itself is immutable.
    rebindable_globals: set[str] = field(default_factory=set)
    # Module-level names caching a stateful (deterministic) RNG.
    cached_rngs: set[str] = field(default_factory=set)
    # class name -> class-level attributes bound to mutable containers.
    class_mutables: dict[str, set[str]] = field(default_factory=dict)
    # Globals reset by a registered at-fork hook (the sanctioned guard).
    fork_guarded: set[str] = field(default_factory=set)

    def is_global_state(self, name: str) -> bool:
        return name in self.mutable_globals or name in self.rebindable_globals


def _collect_global_statements(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


def _handler_reset_globals(tree: ast.Module, handler_name: str) -> set[str]:
    """Globals a named module function rebinds or clears — what an
    at-fork handler written as ``def _reset(): ...`` actually guards."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == handler_name
        ):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Global):
                    out.update(sub.names)
                elif isinstance(sub, ast.Call):
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in creg.MUTATING_METHODS
                        and isinstance(func.value, ast.Name)
                    ):
                        out.add(func.value.id)
    return out


def _collect_fork_guards(tree: ast.Module) -> set[str]:
    """Names mentioned by ``os.register_at_fork(...)`` registrations.

    Two shapes are understood: a bound method of the global itself
    (``after_in_child=_CACHE.clear``) and a module-level handler
    function (``after_in_child=_reset``) whose body rebinds or clears
    globals.
    """
    guarded: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _terminal(node.func) not in creg.AT_FORK_REGISTRARS:
            continue
        values = [kw.value for kw in node.keywords] + list(node.args)
        for value in values:
            if isinstance(value, ast.Attribute) and isinstance(
                value.value, ast.Name
            ):
                guarded.add(value.value.id)
            elif isinstance(value, ast.Name):
                guarded |= _handler_reset_globals(tree, value.id)
            elif isinstance(value, ast.Lambda):
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Attribute) and isinstance(
                        sub.value, ast.Name
                    ):
                        guarded.add(sub.value.id)
    return guarded


def scan_module_state(path: str, tree: ast.Module) -> ModuleState:
    state = ModuleState(path=path)
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_mutable_value(value):
                state.mutable_globals.add(target.id)
            if _is_stateful_rng_value(value):
                state.cached_rngs.add(target.id)
        if isinstance(node, ast.ClassDef):
            attrs: set[str] = set()
            for item in node.body:
                if isinstance(item, ast.Assign):
                    if _is_mutable_value(item.value):
                        attrs.update(
                            t.id for t in item.targets if isinstance(t, ast.Name)
                        )
                elif isinstance(item, ast.AnnAssign):
                    if _is_mutable_value(item.value) and isinstance(
                        item.target, ast.Name
                    ):
                        attrs.add(item.target.id)
            if attrs:
                state.class_mutables[node.name] = attrs
    state.rebindable_globals = _collect_global_statements(tree)
    state.fork_guarded = _collect_fork_guards(tree)
    return state


# ---------------------------------------------------------------------------
# Per-function effects.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Effect:
    """One concurrency-relevant touch of process-global state."""

    kind: str  # "rng" | "global_write" | "global_read" | "lazy_init" | "merge"
    node: ast.AST
    subject: str  # the global / rng / merge construct touched
    detail: str  # human-readable description for the finding message


@dataclass
class FunctionEffects:
    """Everything one function does to process-global state."""

    rng: list[Effect] = field(default_factory=list)
    global_writes: list[Effect] = field(default_factory=list)
    global_reads: list[Effect] = field(default_factory=list)
    lazy_inits: list[Effect] = field(default_factory=list)
    merges: list[Effect] = field(default_factory=list)


class _EffectVisitor(ast.NodeVisitor):
    """Single pass over one function body collecting raw effect records."""

    def __init__(
        self,
        func: FunctionInfo,
        state: ModuleState,
        imports: ModuleImports,
    ):
        self.func = func
        self.state = state
        self.imports = imports
        self.effects = FunctionEffects()
        self.locals: set[str] = set(func.params)
        self.global_decls: set[str] = set()
        # Locals holding a probe of a global container, e.g.
        # ``group = _CACHE.get(spec)`` -> {"group": "_CACHE"}.
        self.probe_locals: dict[str, str] = {}
        # Locals holding the result of a parallel dispatch call.
        self.dispatch_locals: set[str] = set()
        node = func.node
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                self.global_decls.update(sub.names)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if sub is not node:
                    self.locals.add(sub.name)
        self._collect_locals(node)

    # -- local-name bookkeeping ---------------------------------------------

    def _collect_locals(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                if sub.id not in self.global_decls:
                    self.locals.add(sub.id)

    def _is_module_global(self, name: str) -> bool:
        if name in self.global_decls:
            return self.state.is_global_state(name) or True
        return self.state.is_global_state(name) and name not in self.locals

    def _is_mutable_global(self, name: str) -> bool:
        return (
            name in self.state.mutable_globals
            and (name in self.global_decls or name not in self.locals)
        )

    # -- entry point ---------------------------------------------------------

    def run(self) -> FunctionEffects:
        body = getattr(self.func.node, "body", [])
        for stmt in body:
            self._scan_stmt(stmt)
        return self.effects

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If) and self._match_lazy_init(stmt):
            # The branch was recorded as a lazy init; still scan the
            # test and body for RNG/merge effects, but suppress the
            # duplicate read/write records for the same global.
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are indexed as their own functions
        self._scan_node(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_stmt(child)
        # Statements whose children are statements nested deeper
        # (If/For/While/Try/With bodies) are walked by the loop above;
        # expression children were handled by _scan_node.

    # -- lazy-init detection (RP304) -----------------------------------------

    def _globals_in(self, node: ast.AST) -> set[str]:
        found: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                if self._is_module_global(sub.id) and (
                    self.state.is_global_state(sub.id)
                ):
                    found.add(sub.id)
                probe = self.probe_locals.get(sub.id)
                if probe is not None:
                    found.add(probe)
        return found

    def _writes_in(self, stmts: list[ast.stmt]) -> dict[str, ast.AST]:
        """global name -> first write node within ``stmts``."""
        writes: dict[str, ast.AST] = {}
        for stmt in stmts:
            for sub in ast.walk(stmt):
                name_node = self._write_target(sub)
                if name_node is not None:
                    writes.setdefault(name_node[0], name_node[1])
        return writes

    def _write_target(self, sub: ast.AST) -> tuple[str, ast.AST] | None:
        """(global name, node) when ``sub`` writes a process-global."""
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                # Rebinding through a `global` declaration.
                if isinstance(target, ast.Name) and target.id in self.global_decls:
                    return target.id, sub
                # `_CACHE[key] = value` / `_CACHE.attr = value`
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    base = target.value
                    if isinstance(base, ast.Name) and self._is_mutable_global(
                        base.id
                    ):
                        return base.id, sub
                    qual = self._class_attr(target)
                    if qual is not None:
                        return qual, sub
        if isinstance(sub, ast.Call):
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in creg.MUTATING_METHODS
            ):
                base = func.value
                if isinstance(base, ast.Name) and self._is_mutable_global(base.id):
                    return base.id, sub
                qual = self._class_attr(base)
                if qual is not None:
                    return qual, sub
        return None

    def _class_attr(self, node: ast.AST) -> str | None:
        """``Registry.table`` / ``cls.table`` -> "Registry.table" when
        ``table`` is a mutable class-level attribute."""
        target = node
        if isinstance(target, (ast.Subscript,)):
            target = target.value
        if not isinstance(target, ast.Attribute):
            return None
        base, attr = target.value, target.attr
        if not isinstance(base, ast.Name):
            return None
        class_name = base.id
        if class_name == "cls" and self.func.class_name is not None:
            class_name = self.func.class_name
        attrs = self.state.class_mutables.get(class_name, set())
        if attr in attrs:
            return f"{class_name}.{attr}"
        return None

    def _match_lazy_init(self, stmt: ast.If) -> bool:
        """``if <probe of G is unset>: ... G <- value`` — first-touch
        initialization of process-global ``G``."""
        tested = self._globals_in(stmt.test)
        if not tested:
            return False
        writes = self._writes_in(stmt.body)
        hit = False
        for name in sorted(tested):
            plain = name.split(".", 1)[0]
            write_node = writes.get(name) or writes.get(plain)
            if write_node is None:
                continue
            if name.split(".", 1)[0] in self.state.fork_guarded or name in (
                self.state.fork_guarded
            ):
                continue  # an at-fork reset hook covers this global
            self.effects.lazy_inits.append(
                Effect(
                    "lazy_init",
                    write_node,
                    name,
                    f"first-touch initialization of process-global `{name}`",
                )
            )
            hit = True
        if hit:
            # Also scan the statement for RNG and merge effects the
            # lazy-init classification should not hide.
            self._scan_node(stmt, skip_globals=tested)
            for child in stmt.body + stmt.orelse:
                self._scan_stmt_skipping(child, tested)
            return True
        return False

    def _scan_stmt_skipping(self, stmt: ast.stmt, skip: set[str]) -> None:
        self._scan_node(stmt, skip_globals=skip)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_stmt_skipping(child, skip)

    # -- flat per-statement scan ---------------------------------------------

    def _scan_node(self, stmt: ast.AST, skip_globals: set[str] = frozenset()) -> None:
        """Collect rng / read / write / merge effects of one statement
        (without descending into nested *statements*)."""
        nested = {
            id(child)
            for child in ast.iter_child_nodes(stmt)
            if isinstance(child, (ast.stmt,))
        }

        def walk_exprs(node: ast.AST):
            yield node
            for child in ast.iter_child_nodes(node):
                if id(child) in nested or isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                yield from walk_exprs(child)

        reads_seen: set[str] = set()
        for sub in walk_exprs(stmt):
            # Track probe locals and dispatch-result locals.
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name):
                    probed = self._probe_of(sub.value)
                    if probed is not None:
                        self.probe_locals[target.id] = probed
                    if self._is_dispatch_call(sub.value):
                        self.dispatch_locals.add(target.id)
            # Writes.
            written = self._write_target(sub)
            if written is not None and written[0] not in skip_globals:
                name = written[0]
                self.effects.global_writes.append(
                    Effect(
                        "global_write",
                        sub,
                        name,
                        f"write to shared mutable `{name}`",
                    )
                )
            # RNG touches.
            self._scan_rng(sub)
            # Merge hazards.
            self._scan_merge(sub)
            # Reads (one record per global per statement scan).
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                name = sub.id
                if (
                    self._is_mutable_global(name)
                    and name not in skip_globals
                    and name not in reads_seen
                ):
                    reads_seen.add(name)
                    self.effects.global_reads.append(
                        Effect(
                            "global_read",
                            sub,
                            name,
                            f"read of shared mutable `{name}`",
                        )
                    )

    def _probe_of(self, value: ast.expr) -> str | None:
        """``_CACHE.get(k)`` / ``_CACHE[k]`` -> "_CACHE"."""
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            base = value.func.value
            if value.func.attr == "get" and isinstance(base, ast.Name):
                if self._is_mutable_global(base.id):
                    return base.id
        if isinstance(value, ast.Subscript) and isinstance(value.value, ast.Name):
            if self._is_mutable_global(value.value.id):
                return value.value.id
        return None

    def _scan_rng(self, sub: ast.AST) -> None:
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                base, attr = func.value.id, func.attr
                # `random.randrange(...)` on the stdlib module.
                if (
                    self.imports.origin_of(base) == creg.RNG_MODULE
                    and base not in self.locals
                    and attr in creg.RNG_STATE_FUNCTIONS
                ):
                    self.effects.rng.append(
                        Effect(
                            "rng",
                            sub,
                            f"random.{attr}",
                            f"stdlib `random.{attr}()` uses the fork-duplicated "
                            "module-level generator",
                        )
                    )
                # Method call on a cached stateful RNG global.
                elif (
                    base in self.state.cached_rngs
                    and base not in self.locals
                    and base not in self.state.fork_guarded
                ):
                    self.effects.rng.append(
                        Effect(
                            "rng",
                            sub,
                            base,
                            f"cached RNG instance `{base}` carries "
                            "fork-duplicated generator state",
                        )
                    )
            elif isinstance(func, ast.Name):
                # `from random import randrange` then `randrange(...)`.
                if (
                    self.imports.origin_of(func.id) == creg.RNG_MODULE
                    and func.id in creg.RNG_STATE_FUNCTIONS
                    and func.id not in self.locals
                ):
                    self.effects.rng.append(
                        Effect(
                            "rng",
                            sub,
                            f"random.{func.id}",
                            f"stdlib `random.{func.id}()` uses the "
                            "fork-duplicated module-level generator",
                        )
                    )
        # Passing a cached stateful RNG global around also counts: the
        # callee will draw from fork-duplicated state.
        elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if (
                sub.id in self.state.cached_rngs
                and sub.id not in self.locals
                and sub.id not in self.state.fork_guarded
            ):
                self.effects.rng.append(
                    Effect(
                        "rng",
                        sub,
                        sub.id,
                        f"cached RNG instance `{sub.id}` carries "
                        "fork-duplicated generator state",
                    )
                )

    def _is_dispatch_call(self, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Name):
            return func.id in creg.SHARD_BOUNDARY_CALLS
        if isinstance(func, ast.Attribute):
            from repro.lint.flow.registry import name_tokens

            if func.attr in creg.POOL_DISPATCH_METHODS and isinstance(
                func.value, (ast.Name, ast.Attribute)
            ):
                base = _terminal(func.value)
                return base is not None and bool(
                    name_tokens(base) & creg.POOL_RECEIVER_TOKENS
                )
        return False

    def _scan_merge(self, sub: ast.AST) -> None:
        if not isinstance(sub, ast.Call):
            return
        func = sub.func
        name = _terminal(func)
        # set(results) / frozenset(results) over a dispatch result —
        # bound to a local or wrapping the dispatch call directly.
        if (
            isinstance(func, ast.Name)
            and name in ("set", "frozenset")
            and sub.args
            and (
                (
                    isinstance(sub.args[0], ast.Name)
                    and sub.args[0].id in self.dispatch_locals
                )
                or self._is_dispatch_call(sub.args[0])
            )
        ):
            self.effects.merges.append(
                Effect(
                    "merge",
                    sub,
                    name or "",
                    f"worker results merged through `{name}()` iteration "
                    "order",
                )
            )
        # imap_unordered / as_completed: completion-order result streams.
        elif name in creg.UNORDERED_DISPATCH:
            receiver_ok = True
            if isinstance(func, ast.Attribute) and name == "imap_unordered":
                from repro.lint.flow.registry import name_tokens

                base = _terminal(func.value)
                receiver_ok = base is not None and bool(
                    name_tokens(base) & creg.POOL_RECEIVER_TOKENS
                )
            if receiver_ok:
                self.effects.merges.append(
                    Effect(
                        "merge",
                        sub,
                        name or "",
                        f"`{name}()` yields worker results in completion "
                        "order",
                    )
                )


def function_effects(
    func: FunctionInfo, state: ModuleState, imports: ModuleImports
) -> FunctionEffects:
    """Collect the concurrency effect summary of one function."""
    return _EffectVisitor(func, state, imports).run()
