"""The concurrency analyzer's trusted-name tables.

Like ``repro.lint.flow.registry``, this file is the analysis's trusted
computing base: every name the fork-safety pass believes something
about lives here.  Four kinds of declarations:

* **Worker entry markers** — how code becomes *worker-reachable*: the
  :func:`repro.parallel.register_task` decorator, functions handed to a
  pool/executor dispatch method, and ``multiprocessing.Process``
  targets.
* **RNG state** — the stdlib ``random`` module-level functions whose
  shared Mersenne-Twister state a fork duplicates (two children that
  inherit it draw the *same* "random" stream), and the constructors
  whose results are clean (``os.urandom`` and everything
  ``secrets``-backed reads the kernel CSPRNG, which is fork-safe).
* **The read-only whitelist** — module-level registries populated at
  import time and never mutated afterwards; a worker may read them
  without an RP302 finding because fork cannot make them diverge.
* **Shard sanitizers** — the audited bytes-only boundary helpers a
  SECRET value must pass before crossing the pickle/task-shard
  boundary (RP303).  The flow registry's KDF/sanitizer family also
  clears the crossing, because a KDF output is no longer the secret.
"""

from __future__ import annotations

# -- worker entry markers ----------------------------------------------------

# Decorators that register a function as a process-pool task; the
# decorated function and everything it (transitively) calls runs in
# worker processes.
WORKER_DECORATORS = frozenset({"register_task"})

# Attribute calls that ship their first callable argument to worker
# processes, checked against the receiver tokens below so `pool.map`
# and `executor.submit` count while `mapping.map` does not.
POOL_DISPATCH_METHODS = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)
POOL_RECEIVER_TOKENS = frozenset({"pool", "executor"})

# Constructors whose ``target=`` keyword is a new-process entry point.
PROCESS_CLASSES = frozenset({"Process"})

# Event-loop methods/functions whose first argument is a coroutine that
# then runs *concurrently in the parent process* (the asyncio service
# layer: epoch schedulers, announce pumps, parked decrypts).  Async
# tasks are not worker-reachable — no fork is involved — but they are
# parent-reachable: a pool dispatch or shard-boundary crossing buried
# inside one must get the same RP303/RP304 scrutiny as one on the main
# path.
ASYNC_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

# Dispatch methods that yield results in *completion* order rather than
# submission order — merging them without an explicit reorder is RP305.
UNORDERED_DISPATCH = frozenset({"imap_unordered", "as_completed"})

# -- RNG state ---------------------------------------------------------------

# Module-level functions of the stdlib `random` module: all of them
# read/advance the hidden shared Random() instance that fork duplicates.
RNG_MODULE = "random"
RNG_STATE_FUNCTIONS = frozenset(
    {
        "random",
        "randrange",
        "randint",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
        "getstate",
        "setstate",
    }
)

# Constructors whose result carries *no* fork-duplicable state: the OS
# CSPRNG is read per call, so parent and children can never replay each
# other's stream.  A module-level cache of one of these is clean.
FORK_SAFE_RNG_FACTORIES = frozenset({"SystemRandom", "system_rng", "process_rng"})

# Constructors whose result is a deterministic, stateful generator: a
# module-level cache of one of these is exactly the fork-duplicated
# nonce hazard RP301 exists for.
STATEFUL_RNG_FACTORIES = frozenset({"Random", "seeded_rng"})

# -- the read-only whitelist (RP302) ----------------------------------------

# Module-level registries that are write-once at import time.  Reading
# them from worker code is safe: fork copies them, but nothing mutates
# either copy afterwards, so parent and children agree forever.  A
# *write* to one of these from worker-reachable code still fires.
READ_ONLY_GLOBALS = frozenset(
    {
        "_TASKS",  # repro.parallel task registry, populated at import
        "PARAMETER_SETS",  # repro.pairing.params, immutable after import
        # repro.math.backend: the name -> class table is write-once at
        # import; the per-(name, modulus) instance cache is mutable but
        # fork-guarded by its own register_at_fork clear hook.
        "_BACKEND_CLASSES",
        "BACKEND_NAMES",
        "ALL_RULES",  # lint rule registry (self-analysis)
        "FLOW_RULES",
        "CONC_RULES",
    }
)

# Container methods that mutate the receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
    }
)

# -- shard sanitizers (RP303) ------------------------------------------------

# The audited bytes-only boundary helper: wrapping a secret blob in one
# of these declares "this secret is allowed to cross to worker
# processes, and it crosses as raw bytes over the pool's pipe, not as a
# pickled object graph".
SHARD_SANITIZERS = frozenset({"shard_secret"})

# Call names that put their arguments on the task-shard/pickle boundary.
SHARD_BOUNDARY_CALLS = frozenset({"parallel_map"})

# Keyword arguments of boundary calls that carry engine knobs, never
# payloads — their values are not inspected.
BOUNDARY_CONTROL_KWARGS = frozenset(
    {"workers", "chunk_size", "chunksize", "start_method", "timeout"}
)

# -- fork guards -------------------------------------------------------------

# Registering an at-fork hook that resets a process-global makes its
# lazy initialization (RP304) and cached-RNG use (RP301) fork-safe: the
# child's first touch reinitializes instead of inheriting.
AT_FORK_REGISTRARS = frozenset({"register_at_fork"})
