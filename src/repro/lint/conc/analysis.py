"""Worker-reachability and the RP301–RP305 concurrency rules.

The pass runs after the flow fixpoint on the same
:class:`~repro.lint.flow.callgraph.ProgramIndex`:

1. scan every module's process-global state (:mod:`effects`),
2. collect per-function effect summaries,
3. compute *worker-reachability* — a function is worker-reachable when
   it is a registered parallel task, a pool/executor dispatch target, a
   ``multiprocessing.Process`` target, or (transitively) called by one
   over the name-based call graph — and *parent-reachability* (module
   top level plus every function containing a dispatch site, and their
   callees),
4. emit findings:

========  ==========================  =================================
Rule id   Name                        Violation
========  ==========================  =================================
RP301     fork-duplicated-rng         worker-reachable draw from stdlib
                                      ``random`` module state or a
                                      cached deterministic generator
RP302     shared-mutable-in-worker    worker-reachable read or write of
                                      module/class-level mutable state
                                      outside the read-only whitelist
RP303     secret-over-pickle          SECRET value crosses a task-shard
                                      / pickle boundary unsanitized
RP304     fork-unsafe-lazy-init       first-touch init of a process
                                      global on both sides of the fork
RP305     nondeterministic-chunk-order worker results merged through
                                      set/dict/completion order
========  ==========================  =================================

Registering an ``os.register_at_fork`` hook that resets a global is the
sanctioned discipline for per-process caches: it exempts that global
from RP301/RP302/RP304.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.lint.conc import registry as creg
from repro.lint.conc.effects import (
    FunctionEffects,
    ModuleState,
    function_effects,
    scan_module_state,
)
from repro.lint.findings import Finding
from repro.lint.flow.analysis import FlowRuleMeta, ProgramAnalysis
from repro.lint.flow.callgraph import FunctionInfo
from repro.lint.flow.lattice import SECRET
from repro.lint.flow import registry as freg

RP301 = "RP301"
RP302 = "RP302"
RP303 = "RP303"
RP304 = "RP304"
RP305 = "RP305"

CONC_RULES: tuple[FlowRuleMeta, ...] = (
    FlowRuleMeta(
        RP301,
        "fork-duplicated-rng",
        "worker-reachable code draws from the stdlib `random` module "
        "state or a cached deterministic generator — forked children "
        "inherit identical state and replay the same 'random' stream "
        "(duplicate nonces across workers)",
        "draw from os.urandom/secrets (e.g. repro.crypto.rng.process_rng) "
        "inside workers, or guard the cache with an os.register_at_fork "
        "reseed hook",
    ),
    FlowRuleMeta(
        RP302,
        "shared-mutable-in-worker",
        "worker-reachable code reads or writes module/class-level "
        "mutable state — under fork each child gets a divergent copy-"
        "on-write copy, under spawn a freshly imported one, so parent "
        "and workers silently disagree",
        "pass the state through the task payload, make the registry "
        "write-once at import time (read-only whitelist), or register "
        "an os.register_at_fork reset hook",
    ),
    FlowRuleMeta(
        RP303,
        "secret-over-pickle",
        "a secret value crosses a pickle/task-shard boundary to worker "
        "processes without passing the bytes-only shard sanitizer — "
        "pickled object graphs copy secrets into pool pipes and worker "
        "heaps outside the library's zeroization reach",
        "wrap the encoded secret in repro.parallel.shard_secret (bytes "
        "only), or derive a per-shard key first",
    ),
    FlowRuleMeta(
        RP304,
        "fork-unsafe-lazy-init",
        "process-global state is first-touch initialized by code that "
        "runs on both sides of the fork point — a child forked after "
        "the parent's first touch inherits the parent's instance while "
        "a child forked before builds its own",
        "initialize eagerly at import, or register an "
        "os.register_at_fork hook that resets the global in the child",
    ),
    FlowRuleMeta(
        RP305,
        "nondeterministic-chunk-order",
        "worker results are merged through set/dict iteration order or "
        "a completion-order stream (`imap_unordered`/`as_completed`) — "
        "output order then depends on OS scheduling, not input order",
        "collect results in submission order (pool.map / sorted keys) "
        "or reorder by an explicit index before merging",
    ),
)

CONC_RULE_IDS = tuple(meta.id for meta in CONC_RULES)
_CONC_NAMES = {meta.id: meta.name for meta in CONC_RULES}
_CONC_HINTS = {meta.id: meta.hint for meta in CONC_RULES}

# Attribute-call terminals excluded from call-graph edges: generic
# container/codec method names that would otherwise resolve (name-based)
# to unrelated in-tree functions and inflate worker-reachability.
_GENERIC_ATTR_CALLS = creg.MUTATING_METHODS | frozenset(
    {"get", "items", "keys", "values", "copy", "encode", "decode",
     "join", "split", "close", "hexdigest", "digest"}
)

_MAX_EXPR = 60


def _terminal(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _own_nodes(root: ast.AST):
    """The nodes belonging to *this* function (or module top level):
    in source order, never descending into nested def/class bodies —
    those are indexed as their own functions.  Decorator expressions of
    a skipped def still belong to the enclosing scope (they execute
    there)."""
    for child in ast.iter_child_nodes(root):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in child.decorator_list:
                yield dec
                yield from _own_nodes(dec)
            continue
        if isinstance(child, ast.ClassDef):
            # Class bodies execute at definition time in this scope,
            # but their method bodies do not.
            yield from _own_nodes(child)
            continue
        yield child
        yield from _own_nodes(child)


def _is_pool_dispatch(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr not in creg.POOL_DISPATCH_METHODS:
        return False
    base = _terminal(func.value)
    return base is not None and bool(
        freg.name_tokens(base) & creg.POOL_RECEIVER_TOKENS
    )


class ConcurrencyAnalysis:
    """One whole-program fork-safety pass over a solved flow analysis."""

    def __init__(
        self,
        modules: "list[tuple[str, str, ast.Module, list[str]]]",
        program: ProgramAnalysis,
    ):
        self.program = program
        self.index = program.index
        self.states: dict[str, ModuleState] = {
            path: scan_module_state(path, tree)
            for path, _pkg, tree, _lines in modules
        }
        self.effects: dict[int, FunctionEffects] = {}
        self.edges: dict[int, list[FunctionInfo]] = {}
        for func in self.index.all_functions:
            state = self.states.get(func.path) or ModuleState(func.path)
            imports = self.index.imports_of(func.path)
            self.effects[id(func)] = function_effects(func, state, imports)
            self.edges[id(func)] = self._call_edges(func)
        self.findings: list[Finding] = []
        self._seen: set[tuple[str, int, int, str, str]] = set()

    # -- call graph ----------------------------------------------------------

    def _call_edges(self, func: FunctionInfo) -> list[FunctionInfo]:
        edges: list[FunctionInfo] = []
        seen: set[int] = set()
        for node in _own_nodes(func.node):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal(node.func)
            if name is None:
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and name in _GENERIC_ATTR_CALLS
            ):
                continue
            for callee in self._resolve(name):
                if id(callee) not in seen and callee is not func:
                    seen.add(id(callee))
                    edges.append(callee)
        return edges

    def _resolve(self, name: str) -> list[FunctionInfo]:
        if self.index.is_class(name):
            return [
                init
                for init in self.index.resolve_function("__init__")
                if init.class_name == name
            ]
        return self.index.resolve_function(name)

    # -- reachability --------------------------------------------------------

    def _worker_roots(self) -> list[tuple[FunctionInfo, str]]:
        roots: list[tuple[FunctionInfo, str]] = []
        for func in self.index.all_functions:
            node = func.node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for dec in node.decorator_list:
                    target = dec.func if isinstance(dec, ast.Call) else dec
                    if _terminal(target) in creg.WORKER_DECORATORS:
                        roots.append(
                            (func, f"task `{func.name}` registered for the "
                                   "worker pool")
                        )
                        break
        for func in self.index.all_functions:
            for node in _own_nodes(func.node):
                if not isinstance(node, ast.Call):
                    continue
                targets: list[ast.expr] = []
                how = ""
                if _is_pool_dispatch(node) and node.args:
                    targets = [node.args[0]]
                    how = f"dispatched by `{func.name}` via .{node.func.attr}"
                elif (
                    isinstance(node.func, (ast.Name, ast.Attribute))
                    and _terminal(node.func) in creg.PROCESS_CLASSES
                ):
                    targets = [
                        kw.value for kw in node.keywords if kw.arg == "target"
                    ]
                    how = f"Process target in `{func.name}`"
                for target in targets:
                    name = _terminal(target)
                    if name is None:
                        continue
                    for callee in self._resolve(name):
                        roots.append((callee, how))
        return roots

    def _parent_roots(self) -> list[tuple[FunctionInfo, str]]:
        roots: list[tuple[FunctionInfo, str]] = []
        for func in self.index.all_functions:
            if func.name == "<module>":
                roots.append((func, "module import"))
                continue
            for node in _own_nodes(func.node):
                if isinstance(node, ast.Call) and (
                    _is_pool_dispatch(node)
                    or (
                        isinstance(node.func, ast.Name)
                        and node.func.id in creg.SHARD_BOUNDARY_CALLS
                    )
                ):
                    roots.append(
                        (func, f"parent-side dispatch in `{func.name}`")
                    )
                    break
        roots.extend(self._async_task_roots())
        return roots

    def _async_task_roots(self) -> list[tuple[FunctionInfo, str]]:
        """Coroutines handed to ``create_task``/``ensure_future``.

        They run concurrently *in the parent* (no fork), so they join
        parent-reachability: a shard-boundary crossing or lazy global
        init inside an async task is as parent-side as one on the main
        call path.  The spawner's argument is usually a coroutine
        *call* (``loop.create_task(self._scheduler())``); the entry
        point is that call's callee.
        """
        roots: list[tuple[FunctionInfo, str]] = []
        for func in self.index.all_functions:
            for node in _own_nodes(func.node):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                if _terminal(node.func) not in creg.ASYNC_TASK_SPAWNERS:
                    continue
                target = node.args[0]
                if isinstance(target, ast.Call):
                    target = target.func
                name = _terminal(target)
                if name is None:
                    continue
                for callee in self._resolve(name):
                    roots.append(
                        (callee, f"async task spawned in `{func.name}`")
                    )
        return roots

    def _reach(
        self, roots: list[tuple[FunctionInfo, str]]
    ) -> dict[int, tuple[FunctionInfo, str]]:
        reached: dict[int, tuple[FunctionInfo, str]] = {}
        queue: deque[tuple[FunctionInfo, str]] = deque(roots)
        while queue:
            func, why = queue.popleft()
            if id(func) in reached:
                continue
            reached[id(func)] = (func, why)
            for callee in self.edges.get(id(func), []):
                if id(callee) not in reached:
                    queue.append((callee, why))
        return reached

    # -- emission ------------------------------------------------------------

    def _emit(
        self, func: FunctionInfo, node: ast.AST, rule: str, message: str
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (func.path, line, col, rule, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(
                rule=rule,
                name=_CONC_NAMES[rule],
                path=func.path,
                line=line,
                col=col,
                message=message,
                hint=_CONC_HINTS[rule],
            )
        )

    def run(self) -> list[Finding]:
        worker = self._reach(self._worker_roots())
        parent = self._reach(self._parent_roots())
        for func in self.index.all_functions:
            effects = self.effects[id(func)]
            state = self.states.get(func.path) or ModuleState(func.path)
            in_worker = worker.get(id(func))
            if in_worker is not None:
                why = in_worker[1]
                self._rule_301(func, effects, why)
                self._rule_302(func, effects, state, why)
                lazy = {e.subject for e in effects.lazy_inits}
                if lazy and id(func) in parent:
                    self._rule_304(func, effects, why)
            self._rule_303(func)
            self._rule_305(func, effects)
        return self.findings

    def _rule_301(
        self, func: FunctionInfo, effects: FunctionEffects, why: str
    ) -> None:
        seen: set[str] = set()
        for effect in effects.rng:
            if effect.subject in seen:
                continue
            seen.add(effect.subject)
            self._emit(
                func,
                effect.node,
                RP301,
                f"`{func.name}` runs in worker processes ({why}): "
                f"{effect.detail}",
            )

    def _rule_302(
        self,
        func: FunctionInfo,
        effects: FunctionEffects,
        state: ModuleState,
        why: str,
    ) -> None:
        lazy = {e.subject for e in effects.lazy_inits}

        def exempt(subject: str) -> bool:
            base = subject.split(".", 1)[0]
            return (
                subject in lazy
                or base in state.fork_guarded
                or subject in state.fork_guarded
            )

        written: set[str] = set()
        for effect in effects.global_writes:
            if exempt(effect.subject) or effect.subject in written:
                continue
            written.add(effect.subject)
            self._emit(
                func,
                effect.node,
                RP302,
                f"`{func.name}` runs in worker processes ({why}): "
                f"{effect.detail} diverges between parent and workers",
            )
        read: set[str] = set()
        for effect in effects.global_reads:
            subject = effect.subject
            if (
                exempt(subject)
                or subject in written
                or subject in read
                or subject.split(".", 1)[-1] in creg.READ_ONLY_GLOBALS
                or subject in creg.READ_ONLY_GLOBALS
            ):
                continue
            read.add(subject)
            self._emit(
                func,
                effect.node,
                RP302,
                f"`{func.name}` runs in worker processes ({why}): "
                f"{effect.detail} may observe a stale pre-fork copy",
            )

    def _rule_304(
        self, func: FunctionInfo, effects: FunctionEffects, why: str
    ) -> None:
        seen: set[str] = set()
        for effect in effects.lazy_inits:
            if effect.subject in seen:
                continue
            seen.add(effect.subject)
            self._emit(
                func,
                effect.node,
                RP304,
                f"{effect.detail} in `{func.name}` straddles the fork "
                f"point — reachable from workers ({why}) and from the "
                "parent process",
            )

    # -- RP303: the shard boundary ------------------------------------------

    def _rule_303(self, func: FunctionInfo) -> None:
        secret_locals: set[str] = set()
        for node in _own_nodes(func.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and self._expr_secret(node.value, secret_locals)
            ):
                secret_locals.add(node.targets[0].id)
            if not isinstance(node, ast.Call):
                continue
            payloads: list[tuple[str, ast.expr]] = []
            boundary = ""
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in creg.SHARD_BOUNDARY_CALLS
            ):
                boundary = node.func.id
                payloads = [("argument", arg) for arg in node.args] + [
                    (f"argument `{kw.arg}`", kw.value)
                    for kw in node.keywords
                    if kw.arg and kw.arg not in creg.BOUNDARY_CONTROL_KWARGS
                ]
            elif _is_pool_dispatch(node):
                boundary = f".{node.func.attr}"
                payloads = [("argument", arg) for arg in node.args[1:]] + [
                    (f"argument `{kw.arg}`", kw.value)
                    for kw in node.keywords
                    if kw.arg and kw.arg not in creg.BOUNDARY_CONTROL_KWARGS
                ]
            elif (
                _terminal(node.func) in creg.PROCESS_CLASSES
                and node.keywords
            ):
                boundary = "Process"
                payloads = [
                    (f"argument `{kw.arg}`", kw.value)
                    for kw in node.keywords
                    if kw.arg in ("args", "kwargs")
                ]
            if not boundary:
                continue
            for label, expr in payloads:
                if self._expr_secret(expr, secret_locals):
                    rendered = ast.unparse(expr)
                    if len(rendered) > _MAX_EXPR:
                        rendered = rendered[: _MAX_EXPR - 1] + "…"
                    self._emit(
                        func,
                        expr,
                        RP303,
                        f"secret value `{rendered}` crosses the "
                        f"`{boundary}` task-shard boundary in "
                        f"`{func.name}` without the bytes-only shard "
                        "sanitizer",
                    )

    def _expr_secret(self, expr: ast.expr, secret_locals: set[str]) -> bool:
        if isinstance(expr, ast.Constant):
            return False
        if isinstance(expr, ast.Name):
            return expr.id in secret_locals or freg.is_secret_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return freg.is_secret_name(expr.attr) or self._expr_secret(
                expr.value, secret_locals
            )
        if isinstance(expr, ast.Call):
            name = _terminal(expr.func)
            if name in (
                creg.SHARD_SANITIZERS
                | freg.SANITIZER_CALLS
                | freg.DECLASSIFIER_CALLS
            ):
                return False
            if isinstance(expr.func, ast.Attribute) and self._expr_secret(
                expr.func.value, secret_locals
            ):
                return True
            if any(self._expr_secret(a, secret_locals) for a in expr.args):
                return True
            if any(
                self._expr_secret(kw.value, secret_locals)
                for kw in expr.keywords
            ):
                return True
            if name is not None:
                for callee in self._resolve(name):
                    summary = self.program.summary_of(callee)
                    if summary.returns.level >= SECRET:
                        return True
            return False
        return any(
            self._expr_secret(child, secret_locals)
            for child in ast.iter_child_nodes(expr)
            if isinstance(child, ast.expr)
        )

    def _rule_305(self, func: FunctionInfo, effects: FunctionEffects) -> None:
        for effect in effects.merges:
            self._emit(
                func,
                effect.node,
                RP305,
                f"{effect.detail} in `{func.name}` — output order depends "
                "on OS scheduling, not input order",
            )


def analyze_concurrency(
    modules: "list[tuple[str, str, ast.Module, list[str]]]",
    program: ProgramAnalysis,
) -> list[Finding]:
    """Run the fork-safety pass over parsed modules, reusing the solved
    flow analysis (its index and taint summaries).  Returns findings
    without fingerprints — the engine attaches those."""
    return ConcurrencyAnalysis(modules, program).run()
