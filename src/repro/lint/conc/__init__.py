"""repro.lint.conc — whole-program concurrency & fork-safety analysis.

Where :mod:`repro.lint.flow` follows *values*, this package follows
*processes*: which functions run inside :mod:`repro.parallel` workers
(or any pool/executor/``Process`` target), and what process-global
state — RNG streams, module/class-level caches, pickled task shards —
they touch once they do:

========  ===========================  ================================
Rule id   Name                         Violation
========  ===========================  ================================
RP301     fork-duplicated-rng          worker draws from fork-copied
                                       deterministic RNG state
RP302     shared-mutable-in-worker     worker touches module/class
                                       mutable state (divergent copies)
RP303     secret-over-pickle           secret crosses the task-shard
                                       boundary unsanitized
RP304     fork-unsafe-lazy-init        process-global first-touch init
                                       on both sides of the fork
RP305     nondeterministic-chunk-order worker results merged via set/
                                       dict/completion order
========  ===========================  ================================

See ``docs/STATIC_ANALYSIS.md`` ("Concurrency & fork-safety analysis")
for the effect summaries, the worker-reachability definition, and
worked examples.
"""

from __future__ import annotations

from repro.lint.conc.analysis import (
    CONC_RULE_IDS,
    CONC_RULES,
    analyze_concurrency,
)

__all__ = ["CONC_RULES", "CONC_RULE_IDS", "analyze_concurrency"]
