"""Baseline (grandfathered findings) persistence.

The baseline file is a checked-in list of finding fingerprints that are
tolerated — typically pre-existing findings whose fix is deliberate
follow-up work.  Each line is::

    <rule> <path> <snippet-hash> <occurrence>

``#`` starts a comment.  The gate fails on any finding *not* in the
baseline, and also on *stale* entries (baselined findings that no
longer occur), so the file can only shrink silently, never rot.
Regenerate with ``python -m repro.lint --write-baseline <paths>``.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.findings import Finding

_HEADER = """\
# repro.lint baseline — grandfathered findings.
#
# Format: <rule> <path> <snippet-hash> <occurrence>
# Regenerate with: PYTHONPATH=src python -m repro.lint src --write-baseline
# New code must not add entries here; fix the finding or add an inline
# `# lint: allow[rule] justification` waiver instead.
"""


def load_baseline(path: str | Path) -> set[str]:
    """Read a baseline file into a set of fingerprints.

    A missing file is an empty baseline, so fresh checkouts and new
    tools agree on behavior.
    """
    path = Path(path)
    if not path.exists():
        return set()
    fingerprints: set[str] = set()
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(f"malformed baseline line: {raw!r}")
        fingerprints.add("|".join(parts))
    return fingerprints


def format_baseline(findings: list[Finding]) -> str:
    """Render findings as baseline file content."""
    body = "".join(
        " ".join(finding.fingerprint.split("|")) + "\n"
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    )
    return _HEADER + body
