"""Baseline (grandfathered findings) persistence.

The baseline file is a checked-in list of finding fingerprints that are
tolerated — typically pre-existing findings whose fix is deliberate
follow-up work.  Each line is::

    <rule> <path> <snippet-hash> <occurrence>

``#`` starts a comment.  The gate fails on any finding *not* in the
baseline, and also on *stale* entries (baselined findings that no
longer occur), so the file can only shrink silently, never rot.
Regenerate with ``python -m repro.lint --write-baseline <paths>``.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.findings import Finding

_HEADER = """\
# repro.lint baseline — grandfathered findings.
#
# Format: <rule> <path> <snippet-hash> <occurrence>
# Regenerate with: PYTHONPATH=src python -m repro.lint src --write-baseline
# New code must not add entries here; fix the finding or add an inline
# `# lint: allow[rule] justification` waiver instead.
"""


def load_baseline(path: str | Path) -> set[str]:
    """Read a baseline file into a set of fingerprints.

    A missing file is an empty baseline, so fresh checkouts and new
    tools agree on behavior.
    """
    path = Path(path)
    if not path.exists():
        return set()
    fingerprints: set[str] = set()
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(f"malformed baseline line: {raw!r}")
        fingerprints.add("|".join(parts))
    return fingerprints


def format_baseline(findings: list[Finding]) -> str:
    """Render findings as baseline file content."""
    body = "".join(
        " ".join(finding.fingerprint.split("|")) + "\n"
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    )
    return _HEADER + body


def update_baseline(path: str | Path, findings: list[Finding]) -> tuple[int, int]:
    """Regenerate the baseline *in place*, preserving annotations.

    Unlike ``format_baseline`` (which rewrites from scratch), this
    keeps every existing entry line verbatim — including its trailing
    ``# justification`` comment — as long as its fingerprint still
    occurs, drops entries that no longer occur (stale), and appends
    entries for findings not yet baselined.  Returns
    ``(added, removed)`` counts.
    """
    path = Path(path)
    current = {finding.fingerprint for finding in findings}
    kept: list[str] = []
    seen: set[str] = set()
    removed = 0
    header_lines = _HEADER.splitlines()
    if path.exists():
        for raw in path.read_text().splitlines():
            line = raw.split("#", 1)[0].strip()
            if not line:
                if raw.strip() and raw.strip() not in header_lines:
                    kept.append(raw)  # a standalone comment: keep it
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"malformed baseline line: {raw!r}")
            fingerprint = "|".join(parts)
            if fingerprint in current:
                kept.append(raw)
                seen.add(fingerprint)
            else:
                removed += 1
    additions = sorted(
        " ".join(finding.fingerprint.split("|"))
        for finding in findings
        if finding.fingerprint not in seen
    )
    # A finding may repeat across the list (it cannot, per fingerprint,
    # but be safe): dedupe while preserving order.
    unique_additions = list(dict.fromkeys(additions))
    body = "".join(line + "\n" for line in (*kept, *unique_additions))
    path.write_text(_HEADER + body)
    return len(unique_additions), removed
