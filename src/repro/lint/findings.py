"""The findings data model shared by the engine, baseline, and CLI."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``fingerprint`` identifies the finding independently of its line
    *number* (so unrelated edits above it do not invalidate a baseline
    entry): it hashes the rule id, the file path, the stripped text of
    the offending line, and an occurrence index among identical lines.
    """

    rule: str  # "RP102"
    name: str  # "ct-compare"
    path: str  # posix-style path, as reported
    line: int  # 1-based
    col: int  # 0-based
    message: str
    hint: str = ""
    fingerprint: str = field(default="", compare=False)

    def located(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def render(self) -> str:
        text = f"{self.located()}: {self.rule}[{self.name}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def snippet_hash(line_text: str) -> str:
    """A short stable hash of the offending line's stripped text."""
    return hashlib.sha256(line_text.strip().encode()).hexdigest()[:12]


def attach_fingerprints(
    findings: list[Finding], lines: list[str], fingerprint_path: str | None = None
) -> list[Finding]:
    """Return findings with baseline fingerprints filled in.

    ``fingerprint_path`` (usually the *package-relative* path) keeps
    fingerprints stable across checkout locations and working
    directories.  Identical (rule, path, line-text) triples are
    disambiguated by an occurrence counter in source order, so two
    textually identical violations get distinct fingerprints.
    """
    seen: dict[tuple[str, str, str], int] = {}
    out: list[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.line, f.col, f.rule)):
        text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        digest = snippet_hash(text)
        where = fingerprint_path or finding.path
        key = (finding.rule, where, digest)
        index = seen.get(key, 0)
        seen[key] = index + 1
        out.append(
            replace(finding, fingerprint=f"{finding.rule}|{where}|{digest}|{index}")
        )
    return out
