"""Typestate protocol analysis (RP401–RP405).

The fourth analyzer family: object-protocol checking over the shared
program index.  ``analyze_protocols`` is the engine-facing entry point;
the rule metadata rides the same :class:`FlowRuleMeta` shape as the
flow and concurrency families so the CLI, SARIF renderer, and waiver
machinery treat all four uniformly.
"""

from repro.lint.proto.analysis import (
    PROTO_RULE_IDS,
    PROTO_RULES,
    ProtocolAnalysis,
    analyze_protocols,
)

__all__ = [
    "PROTO_RULE_IDS",
    "PROTO_RULES",
    "ProtocolAnalysis",
    "analyze_protocols",
]
