"""The protocol analyzer's trusted-name tables.

Like ``repro.lint.flow.registry`` and ``repro.lint.conc.registry``,
this file is the analysis's trusted computing base: every name the
typestate pass believes something about lives here.  Five kinds of
declarations:

* **Update origins** — how an abstract :class:`TimeBoundKeyUpdate`
  enters a function in the FETCHED (untrusted) state: a ``from_bytes``
  decode on an update-named receiver.  Locally *constructed* updates
  (``TimeBoundKeyUpdate(label, point)``, ``publish_update(...)``) are
  trusted — the typestate protocol governs bytes that crossed a wire.
* **Verification guards** — the transitions FETCHED → VERIFIED.  Three
  shapes: boolean predicates whose result must *guard control flow*
  (``update.verify(...)``, ``pair_ratio_is_one(...)``), raising guards
  that verify-or-throw (``ensure_valid``), and batch guards that
  authenticate a whole collection (``verify_archive``,
  ``batch_verify_updates``).  Declaring a name here asserts "this call
  really performs ê(sG, H1(T)) == ê(G, I_T) (or the generalized product
  form) on its subject" — auditing the analyzer means auditing this
  claim for each entry.
* **Update sinks** — where a FETCHED update must never arrive: decrypt
  calls, inserts into cache/archive-named containers, and
  re-serialization (``to_bytes`` on the update itself).
* **Transport awaits** — the request/response calls whose ``await``
  must sit inside a timeout scope (RP402), and the wrapper calls that
  count as such a scope.
* **The service error taxonomy** — the exception classes a
  ``repro.service`` raise may use directly (RP404), plus the
  contract/harness errors that are classified at their catch sites by
  construction.
"""

from __future__ import annotations

# Shared with the concurrency pass: the spawners whose result is an
# asyncio.Task that must be tracked (RP403).
from repro.lint.conc.registry import ASYNC_TASK_SPAWNERS as TASK_SPAWNERS

__all__ = ["TASK_SPAWNERS"]

# -- update origins (RP401) --------------------------------------------------

# ``X.from_bytes(...)`` is an untrusted decode when the receiver names
# an update type/value: the result is FETCHED until a guard passes.
UPDATE_DECODE_CALLS = frozenset({"from_bytes"})

# The receiver (or a variable/parameter) is update-shaped when its
# lowercased name contains this marker: `TimeBoundKeyUpdate`,
# `ResilientUpdate`, `update`, `pending_updates`, ...
UPDATE_NAME_MARKER = "update"

# -- verification guards (FETCHED -> VERIFIED) -------------------------------

# Boolean predicates: calling one yields a *verdict* for its subject
# (the receiver of ``x.verify(...)``, or the tracked arguments of
# ``pair_ratio_is_one(...)``).  The subject becomes VERIFIED only on
# the path where control flow established the verdict was true
# (``if not x.verify(...): raise`` / ``assert x.verify(...)``); a
# verdict computed but never consumed is RP405.
VERIFY_PREDICATES = frozenset({"verify", "pair_ratio_is_one", "verify_node_key"})

# Raising guards: return None, raise on failure — the subject is
# VERIFIED on the fall-through path unconditionally.
VERIFY_RAISING_GUARDS = frozenset({"ensure_valid"})

# Batch guards: authenticate every element of a collection argument.
# ``verify_archive`` returns the *failed* labels rather than a verdict,
# so the transition applies at the call itself; the obligation to drop
# the reported failures is the caller's (enforced dynamically by the
# chaos suite, not by this pass).
BATCH_VERIFY_CALLS = frozenset({"verify_archive", "batch_verify_updates"})

# Functions *named* like guards are the verifier TCB itself: the pass
# neither looks for sinks inside them nor requires them to guard their
# own subjects (``verify_archive`` serializes updates to shard them —
# that is its job).
GUARD_DEF_NAMES = VERIFY_PREDICATES | VERIFY_RAISING_GUARDS | BATCH_VERIFY_CALLS

# -- update sinks (RP401) ----------------------------------------------------

# Call names that *use* an update for decryption: an unverified update
# here defeats the paper's verify-before-use invariant outright.
UPDATE_USE_CALLS = frozenset({"decrypt", "decrypt_batch"})

# Storing an update into a container whose name carries one of these
# tokens is a cache insert: everything downstream trusts cache contents,
# so the insert is where verification must already have happened.
CACHE_NAME_TOKENS = frozenset({"cache", "caches", "updates", "archive", "store"})

# Re-serializing a fetched update (``update.to_bytes(...)``) forwards
# unauthenticated bytes to someone else under this process's implicit
# endorsement.
UPDATE_SERIALIZE_CALLS = frozenset({"to_bytes"})

# -- transport awaits (RP402) ------------------------------------------------

# Attribute calls that perform one network round-trip / send when their
# receiver is transport-shaped.  ``await``-ing one outside a timeout
# scope can hang a client forever on a stalled peer.
TRANSPORT_AWAIT_METHODS = frozenset({"request", "fetch", "send", "recv"})
TRANSPORT_RECEIVER_TOKENS = frozenset(
    {
        "transport",
        "transports",
        "source",
        "sources",
        "mirror",
        "mirrors",
        "peer",
        "peers",
        "conn",
        "connection",
        "session",
        "socket",
    }
)

# Wrappers that bound the enclosed await: ``asyncio.wait_for(call, t)``
# and deadline-scope helpers.  A transport call appearing as an
# argument of one of these is guarded.
DEADLINE_GUARD_CALLS = frozenset({"wait_for", "timeout_at", "with_deadline"})

# -- task tracking (RP403) ---------------------------------------------------

# Once assigned to a local, any of these uses discharges the tracking
# obligation (beyond the general "stored / awaited / passed on" rules
# in the analysis): explicitly ending or observing the task.
TASK_DISCHARGE_METHODS = frozenset({"cancel", "add_done_callback", "result"})

# -- the service error taxonomy (RP404) --------------------------------------

# Exception classes a `repro.service` raise may construct directly:
# the transient/permanent taxonomy from repro.errors.  Raising the
# bare ServiceError base is NOT allowed — it names neither class.
SERVICE_TAXONOMY_CLASSES = frozenset(
    {
        "TransientServiceError",
        "PermanentServiceError",
        "ServiceTimeoutError",
        "ServiceUnavailableError",
        "CircuitOpenError",
    }
)

# Classified-at-the-catch-site by construction:
# * ParameterError — caller-contract misuse, raised before any I/O;
#   never crosses the wire and retrying cannot help (permanent by
#   nature, kept distinct so misuse is not mistaken for peer failure).
# * DecodingError — the wire boundary's structural error; the client
#   re-wraps it into TransientServiceError (corrupt bytes) and the node
#   answers ERR_BAD_REQUEST, so every raise site has a classifying
#   catcher by design.
# * SimulationError — virtual-time harness misuse (deadlock detection);
#   aborts the test run, never reaches a retry policy.
SERVICE_WRAPPED_ERRORS = frozenset(
    {"ParameterError", "DecodingError", "SimulationError"}
)

# Handler types too broad to classify: catching one of these and not
# re-raising (or re-wrapping into the taxonomy) swallows errors the
# retry policies needed to see.
BROAD_EXCEPT_NAMES = frozenset({"Exception", "BaseException"})

# Package top-dirs each RP404 sub-check patrols.  Raise classification
# is a service-layer discipline; swallowed broad excepts also matter in
# the simulator, where a silent ``except Exception: pass`` voids the
# scenario's metrics.
RAISE_TAXONOMY_SCOPES = ("service",)
BROAD_EXCEPT_SCOPES = ("service", "sim")
