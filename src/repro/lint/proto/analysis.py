"""Typestate protocols and the RP401–RP405 rules.

The pass runs after the flow fixpoint on the same
:class:`~repro.lint.flow.callgraph.ProgramIndex`, adding a third
whole-program family: object *protocols* in the Strom–Yemini typestate
tradition.  Each tracked value carries an abstract state; operations
either transition the state or demand one the value has not reached.

The central protocol is the paper's verify-before-use invariant: a
``TimeBoundKeyUpdate`` decoded from wire bytes is FETCHED, and only the
pairing check ``ê(sG, H1(T)) == ê(G, I_T)`` (``update.verify`` /
``ensure_valid`` / ``verify_archive`` / ``pair_ratio_is_one``) moves it
to VERIFIED — the state every cache insert, decrypt, and
re-serialization requires.  Like the taint pass, the analysis is
interprocedural: per-function summaries record which parameters a
helper verifies, which it sinks, and the state of what it returns, and
a summary fixpoint lets findings fire at the call site that actually
supplies the unverified value.

========  ==========================  =================================
Rule id   Name                        Violation
========  ==========================  =================================
RP401     unverified-update-use       a wire-decoded update reaches a
                                      cache insert, decrypt, or
                                      serialization sink while still
                                      FETCHED on some path
RP402     unguarded-transport-await   ``await`` on a transport/channel
                                      round-trip outside any
                                      ``asyncio.wait_for``/deadline
                                      scope
RP403     untracked-task              ``create_task``/``ensure_future``
                                      result dropped — never stored,
                                      awaited, or cancelled
RP404     unclassified-service-error  a ``repro.service`` raise outside
                                      the transient/permanent taxonomy,
                                      or a broad except that swallows
                                      without re-raising
RP405     verify-result-discarded     the boolean verdict of a
                                      verification call is computed and
                                      thrown away
========  ==========================  =================================

States join pessimistically (a value verified on only one branch stays
FETCHED after the merge), guard verdicts transition their subject only
on the control-flow path where the verdict is known true, and a
``for``-loop that verifies its loop variable on every iteration
promotes the iterated collection.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.conc.analysis import _own_nodes, _terminal
from repro.lint.findings import Finding
from repro.lint.flow.analysis import FlowRuleMeta, ProgramAnalysis
from repro.lint.flow.callgraph import FunctionInfo
from repro.lint.flow import registry as freg
from repro.lint.proto import registry as preg

RP401 = "RP401"
RP402 = "RP402"
RP403 = "RP403"
RP404 = "RP404"
RP405 = "RP405"

PROTO_RULES: tuple[FlowRuleMeta, ...] = (
    FlowRuleMeta(
        RP401,
        "unverified-update-use",
        "an update decoded from wire bytes reaches a cache insert, "
        "decrypt, or serialization sink without passing the pairing "
        "check ê(sG, H1(T)) == ê(G, I_T) on every path — a forged "
        "update accepted here poisons everything downstream that "
        "trusts the cache",
        "guard the value first: `if not update.verify(group, pub): "
        "raise`, `update.ensure_valid(...)`, or batch-verify the "
        "collection with verify_archive(...) and drop the failures",
    ),
    FlowRuleMeta(
        RP402,
        "unguarded-transport-await",
        "an `await` on a transport/channel round-trip is not enclosed "
        "in an asyncio.wait_for/deadline scope — a stalled peer then "
        "parks this coroutine forever, outside every retry policy",
        "wrap the call: `await asyncio.wait_for(transport.request(...), "
        "timeout)` (see service.client for the Deadline idiom)",
    ),
    FlowRuleMeta(
        RP403,
        "untracked-task",
        "the Task returned by create_task/ensure_future is dropped — "
        "an untracked task is garbage-collected mid-flight, its "
        "exceptions are logged to the void, and shutdown cannot cancel "
        "or await it",
        "store the task (e.g. on self), await or cancel it on the "
        "shutdown path, or hand it to a tracked task group",
    ),
    FlowRuleMeta(
        RP404,
        "unclassified-service-error",
        "service-layer error handling outside the transient/permanent "
        "taxonomy: a raise the retry policies cannot classify, or a "
        "broad except that swallows errors they needed to see",
        "raise TransientServiceError/PermanentServiceError (or a "
        "subclass) from repro.errors; catch the specific exception and "
        "record or re-wrap it instead of `except Exception: pass`",
    ),
    FlowRuleMeta(
        RP405,
        "verify-result-discarded",
        "the boolean verdict of a verification call is never consumed "
        "— the pairing check ran, burned the CPU, and protected "
        "nothing",
        "branch on the verdict (`if not ok: raise ...`) or use the "
        "raising form `update.ensure_valid(...)`",
    ),
)

PROTO_RULE_IDS = tuple(meta.id for meta in PROTO_RULES)
_PROTO_NAMES = {meta.id: meta.name for meta in PROTO_RULES}
_PROTO_HINTS = {meta.id: meta.hint for meta in PROTO_RULES}

_MAX_FIXPOINT_PASSES = 12
_MAX_DESC = 90
_MAX_CANDIDATES = 8

# -- the typestate lattice ---------------------------------------------------

# FETCHED < PARAM < VERIFIED; merge joins take the minimum, so a value
# is only as trusted as its least-trusted path.  PARAM is the unknown
# middle: a parameter's real state is the call site's business, so a
# sink reached by a PARAM value records a summary entry instead of a
# finding.
FETCHED = 0
PARAM = 1
VERIFIED = 2

_STATE_NAMES = {FETCHED: "FETCHED", PARAM: "PARAM", VERIFIED: "VERIFIED"}

# Value kinds: one update, a collection of updates, or the boolean
# verdict of a verification call (which remembers whose verdict it is).
UPDATE = "update"
COLL = "coll"
VERDICT = "verdict"


@dataclass(frozen=True)
class Val:
    """One tracked abstract value."""

    kind: str
    state: int = FETCHED
    # Parameter indices this value (directly) derives from; drives the
    # verifies/param_sinks/verdict_of summary entries.
    params: frozenset[int] = frozenset()
    # VERDICT only: env keys (locals, `self.attr`) the verdict vouches
    # for — consumed when control flow branches on the verdict.
    subjects: tuple[str, ...] = ()


def _join_vals(a: Val | None, b: Val | None) -> Val | None:
    if a is None or b is None:
        return None
    if a.kind == VERDICT or b.kind == VERDICT:
        # A verdict merged with anything else is no longer a usable
        # verdict (which branch computed it?).
        return None
    kind = COLL if COLL in (a.kind, b.kind) else UPDATE
    return Val(kind, min(a.state, b.state), a.params | b.params)


@dataclass
class ProtoSummary:
    """One function's protocol contract."""

    # State of the returned update value, None when no update returned.
    returns_update: int | None = None
    # Parameter indices VERIFIED on every normal (non-raising) exit.
    verifies: frozenset[int] = frozenset()
    # Nonempty: the return value is a verify verdict for these params.
    verdict_of: frozenset[int] = frozenset()
    # Parameter index -> description of the update sink it reaches.
    # Descriptions are the original sink's, never re-composed, so
    # entries are stable and the fixpoint terminates.
    param_sinks: dict[int, str] = field(default_factory=dict)


def _clip(desc: str) -> str:
    return desc if len(desc) <= _MAX_DESC else desc[: _MAX_DESC - 1] + "…"


def _is_update_name(identifier: str) -> bool:
    return preg.UPDATE_NAME_MARKER in identifier.lower()


def _receiver_name(expr: ast.expr) -> str | None:
    """Terminal name of a call/store receiver, looking through
    subscripts: ``self.transports[source]`` -> ``transports``."""
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    return _terminal(node)


def _env_key(expr: ast.expr) -> str | None:
    """The environment key an expression reads/writes, if trackable."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        return f"{expr.value.id}.{expr.attr}"
    return None


class ProtoTransfer:
    """Abstract interpretation of one function body over Val states."""

    def __init__(
        self, func: FunctionInfo, analysis: "ProtocolAnalysis", report: bool
    ):
        self.func = func
        self.analysis = analysis
        self.report = report
        self.env: dict[str, Val] = {}
        self.param_index = {name: i for i, name in enumerate(func.params)}
        for i, name in enumerate(func.params):
            if _is_update_name(name):
                kind = COLL if name.lower().rstrip("_").endswith("s") else UPDATE
                self.env[name] = Val(kind, PARAM, frozenset((i,)))
        self.returns_update: int | None = None
        self.verdict_params: frozenset[int] = frozenset()
        self.param_sinks: dict[int, str] = {}
        # Intersection of VERIFIED params over all normal exits; None
        # until the first exit is seen.
        self._exit_verified: frozenset[int] | None = None

    # -- driver -------------------------------------------------------------

    def run(self) -> ProtoSummary:
        # Functions named like guards are the verifier TCB: their
        # bodies implement verification (serializing updates to shard
        # them, pairing on raw fields) and are exempt from their own
        # protocol.
        if self.func.name in preg.GUARD_DEF_NAMES:
            return ProtoSummary()
        body = getattr(self.func.node, "body", [])
        terminated = self.exec_block(body, self.env)
        if not terminated:
            self._note_exit(self.env)
        return ProtoSummary(
            returns_update=self.returns_update,
            verifies=self._exit_verified or frozenset(),
            verdict_of=self.verdict_params,
            param_sinks=dict(self.param_sinks),
        )

    def _note_exit(self, env: dict[str, Val]) -> None:
        verified = frozenset(
            i
            for name, i in self.param_index.items()
            if (val := env.get(name)) is not None
            and val.kind in (UPDATE, COLL)
            and val.state == VERIFIED
        )
        if self._exit_verified is None:
            self._exit_verified = verified
        else:
            self._exit_verified &= verified

    # -- findings and summary entries ---------------------------------------

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if self.report:
            self.analysis.emit(self.func, node, rule, message)

    def _sink(self, node: ast.AST, val: Val | None, happened: str) -> None:
        """A tracked update value reached an RP401 sink."""
        if val is None or val.kind not in (UPDATE, COLL):
            return
        if val.state == FETCHED:
            self._emit(
                node,
                RP401,
                f"unverified update (state FETCHED) {happened} in "
                f"`{self.func.name}` — ê(sG, H1(T)) == ê(G, I_T) was "
                "never checked on this path",
            )
        elif val.state == PARAM:
            desc = _clip(f"{happened} in `{self.func.name}`")
            for i in val.params:
                self.param_sinks.setdefault(i, desc)

    # -- statements ---------------------------------------------------------

    def exec_block(self, stmts: list[ast.stmt], env: dict[str, Val]) -> bool:
        """Execute statements in order; True when the block definitely
        terminates (return/raise/break/continue on every path)."""
        for stmt in stmts:
            if self.exec_stmt(stmt, env):
                return True
        return False

    def exec_stmt(self, stmt: ast.stmt, env: dict[str, Val]) -> bool:
        if isinstance(
            stmt,
            (
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
                ast.Import,
                ast.ImportFrom,
                ast.Global,
                ast.Nonlocal,
                ast.Pass,
            ),
        ):
            return False
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.Return):
            val = self.eval(stmt.value, env) if stmt.value is not None else None
            if val is not None:
                if val.kind in (UPDATE, COLL):
                    self.returns_update = (
                        val.state
                        if self.returns_update is None
                        else min(self.returns_update, val.state)
                    )
                elif val.kind == VERDICT:
                    self.verdict_params |= val.params
            self._note_exit(env)
            return True
        if isinstance(stmt, ast.Raise):
            return True
        if isinstance(stmt, ast.Assign):
            val = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.bind(target, val, env)
            return False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value, env), env)
            return False
        if isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value, env)
            return False
        if isinstance(stmt, ast.Expr):
            self._expr_statement(stmt, env)
            return False
        if isinstance(stmt, ast.If):
            return self._exec_if(stmt, env)
        if isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            loop_env = dict(env)
            self.exec_block(stmt.body, loop_env)
            self.exec_block(stmt.body, loop_env)
            self.exec_block(stmt.orelse, loop_env)
            self._merge_into(env, loop_env)
            return False
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exec_for(stmt, env)
            return False
        if isinstance(stmt, ast.Try):
            terminated = self.exec_block(stmt.body, env)
            survivors: list[dict[str, Val]] = [] if terminated else [env.copy()]
            for handler in stmt.handlers:
                handler_env = dict(env)
                if not self.exec_block(handler.body, handler_env):
                    survivors.append(handler_env)
            if not survivors:
                return True
            env.clear()
            env.update(survivors[0])
            for branch in survivors[1:]:
                self._merge_into(env, branch)
            self.exec_block(stmt.orelse, env)
            self.exec_block(stmt.finalbody, env)
            return False
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
            return self.exec_block(stmt.body, env)
        if isinstance(stmt, ast.Assert):
            for key in self._true_subjects(stmt.test, env):
                self._verify_key(key, env)
            return False
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return False
        if isinstance(stmt, ast.Match):
            self.eval(stmt.subject, env)
            for case in stmt.cases:
                case_env = dict(env)
                self.exec_block(case.body, case_env)
                self._merge_into(env, case_env)
            return False
        return False

    def _expr_statement(self, stmt: ast.Expr, env: dict[str, Val]) -> None:
        value = stmt.value
        call = value.value if isinstance(value, ast.Await) else value
        if isinstance(call, ast.Call):
            name = _terminal(call.func)
            if name in preg.VERIFY_PREDICATES:
                rendered = _clip(ast.unparse(call))
                self._emit(
                    call,
                    RP405,
                    f"verdict of `{rendered}` is discarded in "
                    f"`{self.func.name}` — the check constrains nothing",
                )
        self.eval(value, env)

    def _exec_if(self, stmt: ast.If, env: dict[str, Val]) -> bool:
        then_env, else_env = dict(env), dict(env)
        for key in self._true_subjects(stmt.test, then_env):
            self._verify_key(key, then_env)
        for key in self._false_subjects(stmt.test, else_env):
            self._verify_key(key, else_env)
        then_terminated = self.exec_block(stmt.body, then_env)
        else_terminated = self.exec_block(stmt.orelse, else_env)
        survivors = [
            branch
            for branch, terminated in (
                (then_env, then_terminated),
                (else_env, else_terminated),
            )
            if not terminated
        ]
        if not survivors:
            return True
        env.clear()
        env.update(survivors[0])
        if len(survivors) == 2:
            self._merge_into(env, survivors[1])
        return False

    def _exec_for(self, stmt: ast.For | ast.AsyncFor, env: dict[str, Val]) -> None:
        iter_val = self.eval(stmt.iter, env)
        loop_env = dict(env)
        target_name = stmt.target.id if isinstance(stmt.target, ast.Name) else None
        if (
            iter_val is not None
            and iter_val.kind in (UPDATE, COLL)
            and target_name is not None
        ):
            loop_env[target_name] = Val(UPDATE, iter_val.state, iter_val.params)
        self.exec_block(stmt.body, loop_env)
        self.exec_block(stmt.body, loop_env)
        self.exec_block(stmt.orelse, loop_env)
        # Loop promotion: verifying the loop variable on every
        # iteration verifies the iterated collection (`for u in coll:
        # u.ensure_valid(...)` leaves coll VERIFIED).  Vacuous for an
        # empty collection, which is also vacuously safe.
        promoted = (
            target_name is not None
            and iter_val is not None
            and iter_val.kind in (UPDATE, COLL)
            and (loop_val := loop_env.get(target_name)) is not None
            and loop_val.kind == UPDATE
            and loop_val.state == VERIFIED
        )
        iter_key = _env_key(stmt.iter)
        self._merge_into(env, loop_env)
        if promoted and iter_key is not None:
            env[iter_key] = Val(iter_val.kind, VERIFIED, iter_val.params)

    def _merge_into(self, into: dict[str, Val], branch: dict[str, Val]) -> None:
        for key in set(into) | set(branch):
            if key in into and key in branch:
                joined = _join_vals(into[key], branch[key])
                if joined is None:
                    into.pop(key, None)
                else:
                    into[key] = joined
            elif key in branch:
                into[key] = branch[key]

    # -- verdict consumption -------------------------------------------------

    def _verify_key(self, key: str, env: dict[str, Val]) -> None:
        val = env.get(key)
        if val is not None and val.kind in (UPDATE, COLL):
            env[key] = Val(val.kind, VERIFIED, val.params)

    def _true_subjects(self, test: ast.expr, env: dict[str, Val]) -> tuple[str, ...]:
        """Subjects verified on the branch where ``test`` is true."""
        val = self.eval(test, env)
        if val is not None and val.kind == VERDICT:
            return val.subjects
        return ()

    def _false_subjects(self, test: ast.expr, env: dict[str, Val]) -> tuple[str, ...]:
        """Subjects verified on the branch where ``test`` is false
        (``if not update.verify(...): raise`` verifies the else path)."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._true_subjects(test.operand, env)
        return ()

    # -- expressions --------------------------------------------------------

    def eval(self, node: ast.expr | None, env: dict[str, Val]) -> Val | None:
        if node is None or isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            key = _env_key(node)
            if key is not None and key in env:
                return env[key]
            self.eval(node.value, env)
            return None
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, ast.Await):
            return self.eval(node.value, env)
        if isinstance(node, ast.NamedExpr):
            val = self.eval(node.value, env)
            self.bind(node.target, val, env)
            return val
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            self.eval(node.slice, env)
            if base is not None and base.kind in (UPDATE, COLL):
                return Val(UPDATE, base.state, base.params)
            return None
        if isinstance(node, ast.UnaryOp):
            val = self.eval(node.operand, env)
            if (
                isinstance(node.op, ast.Not)
                and val is not None
                and val.kind == VERDICT
            ):
                # `not verdict` stays a verdict expression; consumption
                # logic resolves polarity at the branch.
                return None
            return None
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out: Val | None = None
            for elt in node.elts:
                val = self.eval(elt, env)
                if val is not None and val.kind in (UPDATE, COLL):
                    elt_coll = Val(COLL, val.state, val.params)
                    out = elt_coll if out is None else _join_vals(out, elt_coll)
            return out
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            then = self.eval(node.body, env)
            other = self.eval(node.orelse, env)
            if then is not None and other is not None:
                return _join_vals(then, other)
            return then if other is None else other
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_env = dict(env)
            for gen in node.generators:
                gen_val = self.eval(gen.iter, comp_env)
                if (
                    gen_val is not None
                    and gen_val.kind in (UPDATE, COLL)
                    and isinstance(gen.target, ast.Name)
                ):
                    comp_env[gen.target.id] = Val(
                        UPDATE, gen_val.state, gen_val.params
                    )
                for cond in gen.ifs:
                    self.eval(cond, comp_env)
            elt_val = self.eval(node.elt, comp_env)
            if elt_val is not None and elt_val.kind in (UPDATE, COLL):
                return Val(COLL, elt_val.state, elt_val.params)
            return None
        if isinstance(node, ast.DictComp):
            comp_env = dict(env)
            for gen in node.generators:
                self.eval(gen.iter, comp_env)
            self.eval(node.key, comp_env)
            self.eval(node.value, comp_env)
            return None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.eval(value, env)
            return None
        if isinstance(node, (ast.BinOp, ast.Compare)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
            return None
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.eval(node.value, env)
            return None
        return None

    # -- binding ------------------------------------------------------------

    def bind(
        self, target: ast.expr, val: Val | None, env: dict[str, Val]
    ) -> None:
        if isinstance(target, ast.Name):
            if val is None:
                env.pop(target.id, None)
            else:
                env[target.id] = val
            return
        if isinstance(target, ast.Starred):
            self.bind(target.value, val, env)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind(elt, val, env)
            return
        if isinstance(target, ast.Attribute):
            key = _env_key(target)
            if key is not None and val is not None:
                env[key] = val
            return
        if isinstance(target, ast.Subscript):
            # `container[k] = v`: a cache-named container is an RP401
            # sink; any other container becomes a tracked collection
            # holding v's state.
            receiver = _receiver_name(target.value)
            if receiver is None:
                return
            if freg.name_tokens(receiver) & preg.CACHE_NAME_TOKENS:
                rendered = _clip(ast.unparse(target))
                self._sink(target, val, f"stored into cache `{rendered}`")
                return
            if val is not None and val.kind in (UPDATE, COLL):
                key = _env_key(target.value)
                if key is not None:
                    joined = _join_vals(
                        env.get(key, Val(COLL, val.state, val.params)),
                        Val(COLL, val.state, val.params),
                    )
                    if joined is not None:
                        env[key] = joined

    # -- calls --------------------------------------------------------------

    def eval_call(self, node: ast.Call, env: dict[str, Val]) -> Val | None:
        func = node.func
        fname = _terminal(func)
        is_attr = isinstance(func, ast.Attribute)
        receiver_key = _env_key(func.value) if is_attr else None
        receiver_val = self.eval(func.value, env) if is_attr else None
        arg_vals = [self.eval(arg, env) for arg in node.args]
        kw_vals = {kw.arg: self.eval(kw.value, env) for kw in node.keywords}

        # Origin: `UpdateType.from_bytes(...)` decodes untrusted bytes.
        if (
            is_attr
            and fname in preg.UPDATE_DECODE_CALLS
            and (rname := _terminal(func.value)) is not None
            and _is_update_name(rname)
        ):
            return Val(UPDATE, FETCHED)

        # Guards --------------------------------------------------------
        if fname in preg.VERIFY_RAISING_GUARDS and is_attr:
            if receiver_key is not None:
                self._verify_key(receiver_key, env)
            return None
        if fname in preg.BATCH_VERIFY_CALLS:
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                key = _env_key(arg)
                if key is not None:
                    self._verify_key(key, env)
            return None
        if fname in preg.VERIFY_PREDICATES:
            subjects: list[str] = []
            params: frozenset[int] = frozenset()
            candidates = [func.value] if is_attr else list(node.args)
            for expr in candidates:
                key = _env_key(expr)
                if key is None:
                    continue
                val = env.get(key)
                if val is not None and val.kind in (UPDATE, COLL):
                    subjects.append(key)
                    params |= val.params
            return Val(VERDICT, params=params, subjects=tuple(subjects))

        # Sinks ---------------------------------------------------------
        if fname in preg.UPDATE_USE_CALLS:
            for arg, val in zip(node.args, arg_vals):
                self._sink(arg, val, f"passed to `{fname}()`")
            for kw, val in zip(node.keywords, kw_vals.values()):
                self._sink(kw.value, val, f"passed to `{fname}()`")
            return None
        if (
            fname in preg.UPDATE_SERIALIZE_CALLS
            and is_attr
            and receiver_val is not None
        ):
            self._sink(
                func.value, receiver_val, "re-serialized via `.to_bytes()`"
            )
            return None
        if fname in ("append", "add") and is_attr and node.args:
            arg_val = arg_vals[0] if arg_vals else None
            rname = _receiver_name(func.value)
            if rname is not None and (
                freg.name_tokens(rname) & preg.CACHE_NAME_TOKENS
            ):
                self._sink(
                    node.args[0],
                    arg_val,
                    f"appended to cache `{_clip(ast.unparse(func.value))}`",
                )
            elif (
                arg_val is not None
                and arg_val.kind in (UPDATE, COLL)
                and receiver_key is not None
            ):
                joined = _join_vals(
                    env.get(receiver_key, Val(COLL, arg_val.state, arg_val.params)),
                    Val(COLL, arg_val.state, arg_val.params),
                )
                if joined is not None:
                    env[receiver_key] = joined
            return None

        # Pass-through builtins keep the element state.
        if not is_attr and fname in ("list", "sorted", "tuple", "set", "reversed"):
            for val in arg_vals:
                if val is not None and val.kind in (UPDATE, COLL):
                    return Val(COLL, val.state, val.params)
            return None

        # Calls resolved inside the analyzed program ---------------------
        return self._apply_program_call(
            node, fname, is_attr, arg_vals, kw_vals, env
        )

    def _apply_program_call(
        self,
        node: ast.Call,
        fname: str | None,
        is_attr: bool,
        arg_vals: list[Val | None],
        kw_vals: dict[str | None, Val | None],
        env: dict[str, Val],
    ) -> Val | None:
        if fname is None:
            return None
        if not is_attr and self.analysis.index.is_class(fname):
            # Constructors build *trusted* local values: the typestate
            # protocol governs bytes that crossed a wire, and those
            # enter through from_bytes, not __init__.
            return None
        candidates = self.analysis.index.resolve_function(fname)
        if is_attr:
            usable = candidates
        else:
            usable = [c for c in candidates if not c.is_method] or candidates
        if not usable:
            return None
        out: Val | None = None
        arg_exprs: dict[int, ast.expr] = {}
        param_vals: dict[int, Val | None] = {}
        for cand in usable[:_MAX_CANDIDATES]:
            offset = 1 if cand.is_method else 0
            arg_exprs = {offset + i: arg for i, arg in enumerate(node.args)}
            param_vals = {offset + i: val for i, val in enumerate(arg_vals)}
            index = {name: j for j, name in enumerate(cand.params)}
            for kw in node.keywords:
                if kw.arg is not None and kw.arg in index:
                    arg_exprs[index[kw.arg]] = kw.value
                    param_vals[index[kw.arg]] = kw_vals.get(kw.arg)
            summary = self.analysis.summary_of(cand)
            for pidx, desc in sorted(summary.param_sinks.items()):
                val = param_vals.get(pidx)
                if val is None or val.kind not in (UPDATE, COLL):
                    continue
                if val.state == FETCHED:
                    pname = (
                        cand.params[pidx]
                        if pidx < len(cand.params)
                        else f"#{pidx}"
                    )
                    self._emit(
                        node,
                        RP401,
                        f"unverified update passed as `{pname}` to "
                        f"`{cand.name}()`, which {desc}",
                    )
                elif val.state == PARAM:
                    for i in val.params:
                        self.param_sinks.setdefault(i, desc)
            for pidx in summary.verifies:
                expr = arg_exprs.get(pidx)
                if expr is not None:
                    key = _env_key(expr)
                    if key is not None:
                        self._verify_key(key, env)
            if summary.verdict_of:
                subjects: list[str] = []
                params: frozenset[int] = frozenset()
                for pidx in sorted(summary.verdict_of):
                    expr = arg_exprs.get(pidx)
                    key = _env_key(expr) if expr is not None else None
                    if key is None:
                        continue
                    val = env.get(key)
                    if val is not None and val.kind in (UPDATE, COLL):
                        subjects.append(key)
                        params |= val.params
                verdict = Val(VERDICT, params=params, subjects=tuple(subjects))
                out = verdict if out is None else None
            elif summary.returns_update is not None:
                returned = Val(UPDATE, summary.returns_update)
                out = returned if out is None else _join_vals(out, returned)
        return out


class ProtocolAnalysis:
    """One whole-program typestate pass over a solved flow analysis."""

    def __init__(
        self,
        modules: "list[tuple[str, str, ast.Module, list[str]]]",
        program: ProgramAnalysis,
    ):
        self.program = program
        self.index = program.index
        self.summaries: dict[int, ProtoSummary] = {}
        self.findings: list[Finding] = []
        self._seen: set[tuple[str, int, int, str, str]] = set()

    def summary_of(self, func: FunctionInfo) -> ProtoSummary:
        return self.summaries.get(id(func), ProtoSummary())

    def emit(
        self, func: FunctionInfo, node: ast.AST, rule: str, message: str
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (func.path, line, col, rule, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(
                rule=rule,
                name=_PROTO_NAMES[rule],
                path=func.path,
                line=line,
                col=col,
                message=message,
                hint=_PROTO_HINTS[rule],
            )
        )

    # -- driver --------------------------------------------------------------

    def solve(self) -> None:
        for _ in range(_MAX_FIXPOINT_PASSES):
            changed = False
            for func in self.index.all_functions:
                summary = ProtoTransfer(func, self, report=False).run()
                previous = self.summaries.get(id(func))
                if previous is None or summary != previous:
                    self.summaries[id(func)] = summary
                    changed = True
            if not changed:
                return

    def run(self) -> list[Finding]:
        self.solve()
        for func in self.index.all_functions:
            ProtoTransfer(func, self, report=True).run()
            self._rule_402(func)
            self._rule_403(func)
            self._rule_404(func)
        return self.findings

    # -- RP402: unguarded transport awaits -----------------------------------

    def _rule_402(self, func: FunctionInfo) -> None:
        guarded: set[int] = set()
        for node in _own_nodes(func.node):
            if (
                isinstance(node, ast.Call)
                and _terminal(node.func) in preg.DEADLINE_GUARD_CALLS
            ):
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    for inner in ast.walk(arg):
                        guarded.add(id(inner))
        for node in _own_nodes(func.node):
            if not isinstance(node, ast.Await):
                continue
            call = node.value
            if not isinstance(call, ast.Call) or id(call) in guarded:
                continue
            if not isinstance(call.func, ast.Attribute):
                continue
            if call.func.attr not in preg.TRANSPORT_AWAIT_METHODS:
                continue
            rname = _receiver_name(call.func.value)
            if rname is None or not (
                freg.name_tokens(rname) & preg.TRANSPORT_RECEIVER_TOKENS
            ):
                continue
            self.emit(
                func,
                node,
                RP402,
                f"`await {_clip(ast.unparse(call))}` in `{func.name}` is "
                "not bounded by asyncio.wait_for or a deadline scope — a "
                "stalled peer parks this coroutine forever",
            )

    # -- RP403: dropped asyncio tasks ----------------------------------------

    def _rule_403(self, func: FunctionInfo) -> None:
        spawners: list[tuple[ast.stmt, ast.Call, str | None]] = []
        own = list(_own_nodes(func.node))
        for node in own:
            if isinstance(node, ast.Expr) and self._spawner_call(node.value):
                spawners.append((node, node.value, None))
            elif (
                isinstance(node, ast.Assign)
                and self._spawner_call(node.value)
                and all(isinstance(t, ast.Name) for t in node.targets)
            ):
                for target in node.targets:
                    spawners.append((node, node.value, target.id))
        if not spawners:
            return
        loads: set[str] = {
            node.id
            for node in own
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }
        for stmt, call, name in spawners:
            fname = _terminal(call.func)
            if name is None:
                self.emit(
                    func,
                    stmt,
                    RP403,
                    f"task spawned by `{fname}(...)` in `{func.name}` is "
                    "dropped — never stored, awaited, or cancelled",
                )
            elif name not in loads:
                self.emit(
                    func,
                    stmt,
                    RP403,
                    f"task `{name}` spawned in `{func.name}` is never "
                    "read again — not awaited, cancelled, or stored",
                )

    @staticmethod
    def _spawner_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and _terminal(node.func) in preg.TASK_SPAWNERS
        )

    # -- RP404: the service error taxonomy -----------------------------------

    def _rule_404(self, func: FunctionInfo) -> None:
        if func.top_dir in preg.RAISE_TAXONOMY_SCOPES:
            allowed = preg.SERVICE_TAXONOMY_CLASSES | preg.SERVICE_WRAPPED_ERRORS
            for node in _own_nodes(func.node):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                target = exc.func if isinstance(exc, ast.Call) else exc
                name = _terminal(target)
                # Only class-looking names are judged: re-raising a
                # caught variable (`raise exc`) is classification done
                # elsewhere.
                if name is None or not name[:1].isupper():
                    continue
                if name in allowed:
                    continue
                self.emit(
                    func,
                    node,
                    RP404,
                    f"`raise {name}(...)` in `{func.name}` is outside the "
                    "transient/permanent service-error taxonomy — retry "
                    "policies cannot classify it",
                )
        if func.top_dir in preg.BROAD_EXCEPT_SCOPES:
            for node in _own_nodes(func.node):
                if not isinstance(node, ast.Try):
                    continue
                for handler in node.handlers:
                    if not self._broad_handler(handler):
                        continue
                    if any(
                        isinstance(inner, ast.Raise)
                        for stmt in handler.body
                        for inner in ast.walk(stmt)
                    ):
                        continue
                    caught = (
                        _terminal(handler.type)
                        if handler.type is not None
                        else "everything"
                    )
                    self.emit(
                        func,
                        handler,
                        RP404,
                        f"broad `except {caught}` in `{func.name}` swallows "
                        "the error without re-raising or classifying it — "
                        "transient faults and real bugs become silence",
                    )

    @staticmethod
    def _broad_handler(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        return any(_terminal(t) in preg.BROAD_EXCEPT_NAMES for t in types)


def analyze_protocols(
    modules: "list[tuple[str, str, ast.Module, list[str]]]",
    program: ProgramAnalysis,
) -> list[Finding]:
    """Run the typestate pass over parsed modules, reusing the solved
    flow analysis (its index; summaries here are the protocol family's
    own fixpoint).  Returns findings without fingerprints — the engine
    attaches those."""
    return ProtocolAnalysis(modules, program).run()
