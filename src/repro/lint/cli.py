"""Command-line entry point: ``python -m repro.lint [paths...]``.

Exit status: 0 when the tree is clean (no unsuppressed findings and no
stale baseline entries), 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import format_baseline, load_baseline
from repro.lint.engine import lint_paths, run
from repro.lint.rules import ALL_RULES

DEFAULT_BASELINE = "lint-baseline.txt"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Crypto-hygiene static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file to grandfather all current findings",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe the rules and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id} {rule.name}: {rule.rationale}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro.lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.write_baseline:
        findings, _, _ = lint_paths(args.paths)
        Path(args.baseline).write_text(format_baseline(findings))
        print(
            f"wrote {len(findings)} grandfathered finding(s) to {args.baseline}"
        )
        return 0

    try:
        baseline = set() if args.no_baseline else load_baseline(args.baseline)
    except ValueError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2
    report = run(args.paths, baseline)

    if args.format == "json":
        payload = {
            "findings": [
                {
                    "rule": f.rule,
                    "name": f.name,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "hint": f.hint,
                    "fingerprint": f.fingerprint,
                }
                for f in report.new
            ],
            "baselined": len(report.baselined),
            "stale_baseline": report.stale_baseline,
            "waived": report.waived,
            "files_checked": report.files_checked,
        }
        print(json.dumps(payload, indent=2))
        return 0 if report.clean else 1

    for finding in report.new:
        print(finding.render())
    for stale in report.stale_baseline:
        print(
            f"stale baseline entry (finding fixed — regenerate with "
            f"--write-baseline): {stale}"
        )
    status = "clean" if report.clean else "FAILED"
    print(
        f"repro.lint: {status} — {report.files_checked} file(s), "
        f"{len(report.new)} new finding(s), {len(report.baselined)} baselined, "
        f"{report.waived} waived, {len(report.stale_baseline)} stale baseline entr(ies)"
    )
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
