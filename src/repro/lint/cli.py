"""Command-line entry point: ``python -m repro.lint [paths...]``.

Exit status: 0 when the tree is clean (no unsuppressed findings and no
stale baseline entries — plus, under ``--check-baseline``, no unused
waiver comments; and within budget under ``--self-time-budget``),
1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import format_baseline, load_baseline, update_baseline
from repro.lint.conc import CONC_RULES
from repro.lint.engine import LintReport, lint_paths, run
from repro.lint.flow import FLOW_RULES
from repro.lint.proto import PROTO_RULES
from repro.lint.rules import ALL_RULES
from repro.lint.sarif import render_sarif

DEFAULT_BASELINE = "lint-baseline.txt"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Crypto-hygiene static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file to grandfather all current findings",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="regenerate the baseline file in place: keep entries (and "
        "their trailing justification comments) whose findings still "
        "occur, drop stale ones, append new ones",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule-id prefixes to report (e.g. "
        "'RP3' or 'RP301,RP302'); the baseline is scoped the same way",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="also fail on unused inline waivers (stale baseline entries "
        "always fail); keeps suppressions from outliving their findings",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout (text summary "
        "still goes to stdout so CI logs stay readable)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse/index modules with N worker processes (default: 1); "
        "output is byte-identical to a sequential run",
    )
    parser.add_argument(
        "--self-time-budget",
        type=float,
        metavar="SECONDS",
        help="fail if the analysis itself takes longer than SECONDS "
        "(keeps the analyzer fast enough to stay in the gate)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe the rules and exit"
    )
    return parser


def _json_payload(report: LintReport) -> dict:
    return {
        "findings": [
            {
                "rule": f.rule,
                "name": f.name,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "hint": f.hint,
                "fingerprint": f.fingerprint,
            }
            for f in report.new
        ],
        "baselined": len(report.baselined),
        "stale_baseline": report.stale_baseline,
        "unused_waivers": report.unused_waivers,
        "waived": report.waived,
        "files_checked": report.files_checked,
        "elapsed_seconds": round(report.elapsed, 3),
    }


def _render_text(report: LintReport, status_ok: bool, notes: list[str]) -> str:
    parts = [finding.render() for finding in report.new]
    parts.extend(
        f"stale baseline entry (finding fixed — regenerate with "
        f"--write-baseline): {stale}"
        for stale in report.stale_baseline
    )
    parts.extend(notes)
    status = "clean" if status_ok else "FAILED"
    parts.append(
        f"repro.lint: {status} — {report.files_checked} file(s), "
        f"{len(report.new)} new finding(s), {len(report.baselined)} baselined, "
        f"{report.waived} waived, {len(report.stale_baseline)} stale baseline "
        f"entr(ies), {len(report.unused_waivers)} unused waiver(s) "
        f"[{report.elapsed:.2f}s]"
    )
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in (*ALL_RULES, *FLOW_RULES, *CONC_RULES, *PROTO_RULES):
            print(f"{rule.id} {rule.name}: {rule.rationale}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro.lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    select: tuple[str, ...] | None = None
    if args.select:
        select = tuple(
            part.strip() for part in args.select.split(",") if part.strip()
        )
        if not select:
            print("repro.lint: --select given but names no rules", file=sys.stderr)
            return 2

    if args.write_baseline:
        findings, _, _ = lint_paths(args.paths, jobs=max(1, args.jobs))
        Path(args.baseline).write_text(format_baseline(findings))
        print(f"wrote {len(findings)} grandfathered finding(s) to {args.baseline}")
        return 0

    if args.update_baseline:
        findings, _, _ = lint_paths(args.paths, jobs=max(1, args.jobs))
        try:
            added, removed = update_baseline(args.baseline, findings)
        except ValueError as exc:
            print(f"repro.lint: {exc}", file=sys.stderr)
            return 2
        print(
            f"updated {args.baseline}: {added} entr(ies) added, "
            f"{removed} stale entr(ies) removed"
        )
        return 0

    try:
        baseline = set() if args.no_baseline else load_baseline(args.baseline)
    except ValueError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2
    report = run(args.paths, baseline, select=select, jobs=max(1, args.jobs))

    over_budget = (
        args.self_time_budget is not None and report.elapsed > args.self_time_budget
    )
    waiver_failure = args.check_baseline and bool(report.unused_waivers)
    status_ok = report.clean and not waiver_failure and not over_budget

    notes: list[str] = []
    severity = "unused waiver" if not args.check_baseline else "UNUSED WAIVER"
    notes.extend(f"{severity}: {message}" for message in report.unused_waivers)
    if over_budget:
        notes.append(
            f"self-time budget exceeded: {report.elapsed:.2f}s > "
            f"{args.self_time_budget:.2f}s — profile the analyzer before shipping"
        )

    if args.format == "json":
        rendered = json.dumps(_json_payload(report), indent=2)
    elif args.format == "sarif":
        rendered = render_sarif(report)
    else:
        rendered = _render_text(report, status_ok, notes)

    if args.output:
        Path(args.output).write_text(rendered + "\n")
        # Keep a human-readable trace on stdout for CI logs.
        print(_render_text(report, status_ok, notes))
    else:
        print(rendered)
        if args.format != "text" and (notes or not status_ok):
            for note in notes:
                print(note, file=sys.stderr)

    return 0 if status_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
