"""repro.lint.flow — interprocedural secret-taint dataflow analysis.

Where the RP1xx rules check single AST nodes, this package follows
*values*: a small taint lattice (CLEAN < DERIVED < SECRET), per-function
transfer functions, and whole-program summaries joined over a
name-based call graph.  Taint is seeded at declared sources (secret key
fields, scalar sampling, raw pairing results), cleared at declared
sanitizers (the KDF family, hashes/MACs, ``ct.bytes_eq``) and
declassifiers (group one-way operations), and reported when it reaches
a sink:

========  ===============  ===================================================
Rule id   Name             Violation
========  ===============  ===================================================
RP201     secret-flow-sink secret reaches logging / print / f-string / repr /
                           exception text, possibly through helper calls;
                           also: secret dataclass fields in a generated repr
RP202     secret-branch    branch, loop or assert condition depends on a
                           secret (variable-time control flow)
RP203     secret-serialize secret or pre-KDF pairing value serialized or
                           persisted without a KDF
RP204     taint-escape     secret passed to an untracked third-party call
========  ===============  ===================================================

See ``docs/STATIC_ANALYSIS.md`` for the lattice, the registry contract,
and how to declare new sources/sinks/sanitizers.
"""

from __future__ import annotations

from repro.lint.flow.analysis import (
    FLOW_RULE_IDS,
    FLOW_RULES,
    FlowRuleMeta,
    analyze_program,
    solve_program,
)
from repro.lint.flow.lattice import CLEAN, DERIVED, SECRET, Taint

__all__ = [
    "CLEAN",
    "DERIVED",
    "FLOW_RULES",
    "FLOW_RULE_IDS",
    "FlowRuleMeta",
    "SECRET",
    "Taint",
    "analyze_program",
    "solve_program",
]
