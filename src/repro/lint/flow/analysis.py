"""Whole-program driver: summary fixpoint, reporting, RP201–RP204.

``analyze_program`` takes every parsed module at once, builds the
program index, iterates per-function summaries to a fixpoint (the
lattice is finite and summaries grow monotonically, so this
terminates; in practice two or three passes suffice for the tree's
call-chain depth), and then runs a reporting pass that emits findings
wherever *concretely* secret values reach sinks — including call sites
whose taint disappears into a helper that leaks several hops later.

Module top-level code is analyzed as a parameterless pseudo-function,
so scripts under ``examples/`` and ``benchmarks/`` are covered too.

A separate structural scan flags secret-named fields of ``@dataclass``
definitions whose generated ``__repr__`` would render them (the
``repr(key_pair)``-in-a-traceback leak that no expression-level
analysis can see), unless the field or class opts out of repr or the
class installs a redacted one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import FunctionInfo, ProgramIndex
from repro.lint.flow.transfer import (
    RP201,
    RP202,
    RP203,
    RP204,
    FunctionTransfer,
    Summary,
)
from repro.lint.flow import registry as reg

_MAX_FIXPOINT_PASSES = 12

# Which package top-dirs each flow rule patrols; None = everywhere.
# "" is the top_dir of files outside the repro package (examples,
# benchmarks, scripts) — rendering and third-party escapes matter
# there, branch timing and serialization discipline do not.
_CRYPTO_DIRS = ("core", "crypto", "ec", "pairing", "math", "baselines")
FLOW_RULE_SCOPES: dict[str, tuple[str, ...] | None] = {
    RP201: None,
    RP202: _CRYPTO_DIRS,
    RP203: _CRYPTO_DIRS,
    RP204: (*_CRYPTO_DIRS, ""),
}


@dataclass(frozen=True)
class FlowRuleMeta:
    """CLI/SARIF-facing metadata for one flow rule family."""

    id: str
    name: str
    rationale: str
    hint: str


FLOW_RULES: tuple[FlowRuleMeta, ...] = (
    FlowRuleMeta(
        RP201,
        "secret-flow-sink",
        "a secret (or pre-KDF derived) value flows — possibly through "
        "helper calls — into logging, printing, f-strings, repr, or "
        "exception text",
        "log a length/placeholder instead, or KDF the value first; for "
        "dataclasses holding keys, redact with repro.crypto.redacted_repr",
    ),
    FlowRuleMeta(
        RP202,
        "secret-branch",
        "control flow (if/while/assert/ternary) depends on a secret "
        "value — variable-time execution observable over the network",
        "restructure to constant-time selection, or waive with a "
        "justification when the branch reveals only negligible information",
    ),
    FlowRuleMeta(
        RP203,
        "secret-serialize",
        "a secret or pre-KDF pairing value is serialized or persisted "
        "without passing a KDF",
        "pass the value through repro.crypto.kdf.derive_key or "
        "PairingGroup.mask_bytes before it leaves the process",
    ),
    FlowRuleMeta(
        RP204,
        "taint-escape",
        "a secret value is passed to an untracked third-party callable "
        "the analysis cannot follow",
        "wrap the boundary in an audited in-tree helper, or sanitize "
        "the value before it crosses",
    ),
)

FLOW_RULE_IDS = tuple(meta.id for meta in FLOW_RULES)
_FLOW_NAMES = {meta.id: meta.name for meta in FLOW_RULES}
_FLOW_HINTS = {meta.id: meta.hint for meta in FLOW_RULES}


class ProgramAnalysis:
    """The object handed to transfer functions: index + summaries + emit."""

    def __init__(self, index: ProgramIndex):
        self.index = index
        self.summaries: dict[int, Summary] = {}
        self.findings: list[Finding] = []
        self._seen: set[tuple[str, int, int, str, str]] = set()
        # (pseudo FunctionInfo, module tree) pairs, filled by
        # solve_program — kept so reporting passes (flow *and* conc)
        # can revisit module top-level code.
        self.pseudo_functions: list[tuple[FunctionInfo, ast.Module]] = []

    # -- transfer-facing API ------------------------------------------------

    def resolve_function(self, name: str) -> list[FunctionInfo]:
        return self.index.resolve_function(name)

    def is_class(self, name: str) -> bool:
        return self.index.is_class(name)

    def imports_of(self, path: str):
        return self.index.imports_of(path)

    def summary_of(self, func: FunctionInfo) -> Summary:
        return self.summaries.get(id(func), Summary())

    def emit(self, func: FunctionInfo, node: ast.AST, rule: str, message: str) -> None:
        scopes = FLOW_RULE_SCOPES.get(rule)
        if scopes is not None and func.top_dir not in scopes:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (func.path, line, col, rule, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(
                rule=rule,
                name=_FLOW_NAMES[rule],
                path=func.path,
                line=line,
                col=col,
                message=message,
                hint=_FLOW_HINTS[rule],
            )
        )

    # -- driver -------------------------------------------------------------

    def solve(self) -> None:
        """Iterate summaries to a fixpoint."""
        for _ in range(_MAX_FIXPOINT_PASSES):
            changed = False
            for func in self.index.all_functions:
                summary = FunctionTransfer(func, self, report=False).run()
                if summary != self.summaries.get(id(func)):
                    self.summaries[id(func)] = summary
                    changed = True
            if not changed:
                return

    def report(self) -> None:
        for func in self.index.all_functions:
            FunctionTransfer(func, self, report=True).run()


def _module_pseudo_function(
    path: str, package_path: str, tree: ast.Module, lines: list[str]
) -> FunctionInfo:
    return FunctionInfo(
        name="<module>",
        qualname=f"{package_path or path}::<module>",
        path=path,
        package_path=package_path,
        node=tree,
        lines=lines,
    )


def _dataclass_call_suppresses_repr(decorator: ast.expr) -> tuple[bool, bool]:
    """(is_dataclass_decorator, repr_suppressed) for one decorator node."""
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    name = target.attr if isinstance(target, ast.Attribute) else (
        target.id if isinstance(target, ast.Name) else None
    )
    if name != "dataclass":
        return False, False
    if isinstance(decorator, ast.Call):
        for kw in decorator.keywords:
            if kw.arg == "repr" and isinstance(kw.value, ast.Constant):
                return True, kw.value.value is False
    return True, False


def _is_redacted_repr_decorator(decorator: ast.expr) -> bool:
    """True for ``@redacted_repr(...)`` (the repro.crypto helper)."""
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    name = target.attr if isinstance(target, ast.Attribute) else (
        target.id if isinstance(target, ast.Name) else None
    )
    return name == "redacted_repr"


def _field_repr_suppressed(value: ast.expr | None) -> bool:
    if not isinstance(value, ast.Call):
        return False
    target = value.func
    name = target.attr if isinstance(target, ast.Attribute) else (
        target.id if isinstance(target, ast.Name) else None
    )
    if name != "field":
        return False
    for kw in value.keywords:
        if kw.arg == "repr" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


def _check_dataclass_reprs(
    analysis: ProgramAnalysis, pseudo: FunctionInfo, tree: ast.Module
) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        is_dataclass = repr_suppressed = False
        for decorator in node.decorator_list:
            found, suppressed = _dataclass_call_suppresses_repr(decorator)
            is_dataclass = is_dataclass or found
            repr_suppressed = (
                repr_suppressed
                or suppressed
                or _is_redacted_repr_decorator(decorator)
            )
        if not is_dataclass:
            continue
        defines_repr = any(
            (isinstance(item, ast.FunctionDef) and item.name == "__repr__")
            or (
                isinstance(item, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__repr__"
                    for t in item.targets
                )
            )
            for item in node.body
        )
        if defines_repr:
            continue
        for item in node.body:
            if not isinstance(item, ast.AnnAssign) or not isinstance(
                item.target, ast.Name
            ):
                continue
            field_name = item.target.id
            if not reg.is_secret_name(field_name):
                continue
            if repr_suppressed or _field_repr_suppressed(item.value):
                continue
            analysis.emit(
                pseudo,
                item,
                RP201,
                f"secret field `{field_name}` of dataclass `{node.name}` is "
                "rendered by the generated __repr__",
            )


def solve_program(
    modules: "list[tuple[str, str, ast.Module, list[str]]]",
) -> ProgramAnalysis:
    """Index the modules and iterate summaries to a fixpoint.

    ``modules`` is a list of ``(path, package_path, tree, lines)``.
    The returned analysis carries the solved summary table but no
    findings yet; hand it to :func:`analyze_program` for the flow
    report, or to ``repro.lint.conc.analyze_concurrency`` — both reuse
    the one index and fixpoint instead of recomputing them.
    """
    index = ProgramIndex()
    analysis = ProgramAnalysis(index)
    for path, package_path, tree, lines in modules:
        index.add_module(path, package_path, tree, lines)
        pseudo = _module_pseudo_function(path, package_path, tree, lines)
        index.all_functions.append(pseudo)
        analysis.pseudo_functions.append((pseudo, tree))
    analysis.solve()
    return analysis


def analyze_program(
    modules: "list[tuple[str, str, ast.Module, list[str]]]",
    program: ProgramAnalysis | None = None,
) -> list[Finding]:
    """Run the interprocedural taint analysis over parsed modules.

    Returns flow findings (without fingerprints — the engine attaches
    those alongside the per-module rule findings).  ``program`` may be
    a pre-solved analysis from :func:`solve_program`; omitted, one is
    solved here.
    """
    analysis = program or solve_program(modules)
    analysis.report()
    for pseudo, tree in analysis.pseudo_functions:
        _check_dataclass_reprs(analysis, pseudo, tree)
    return analysis.findings
