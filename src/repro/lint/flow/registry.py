"""The source / sink / sanitizer / declassifier registry.

This file is the analysis's trusted computing base: everything the flow
engine believes about names lives here, so auditing the analyzer means
auditing this table.  Four kinds of declarations:

* **Sources** introduce taint: secret-named identifiers (the same token
  heuristic RP103 uses), scalar-sampling calls (``random_scalar``,
  ``secrets.token_bytes``), and raw pairing outputs (``pair`` /
  ``pair_with_precomp``), which are DERIVED — a pre-KDF pairing value
  must reach a KDF before it may escape.
* **Sanitizers** clear taint: the KDF family, ``mask_bytes`` (the
  paper's H2), hashes/HMAC, MACs, the DEM (its outputs are
  ciphertexts), and ``ct.bytes_eq`` (a constant-time boolean).
* **Declassifiers** clear taint for a *structural* reason: group scalar
  multiplication and modexp are the scheme's one-way functions — ``aG``
  is public even though ``a`` is not.
* **Sinks** are where taint must not arrive: rendering (RP201),
  persistence/serialization (RP203).  Branch tests (RP202) and
  untracked third-party calls (RP204) are positional, not named, so
  they live in the transfer functions.

To declare a new source/sanitizer/declassifier, add its terminal call
name to the matching frozenset below (see docs/STATIC_ANALYSIS.md for
the contract each table entry asserts).
"""

from __future__ import annotations

from repro.lint.flow.lattice import DERIVED, SECRET

# -- name heuristics (shared vocabulary with RP102/RP103) -------------------

# Unlike RP103's token list this omits "seed": in this tree seeds name
# deterministic *test* rng inputs (benchmarks, fixtures), and the flow
# engine would propagate that taint through every benchmark harness.
SECRET_NAME_TOKENS = frozenset(
    {"sk", "secret", "private", "password", "passphrase"}
)
PUBLIC_NAME_TOKENS = frozenset(
    {"public", "pub", "label", "path", "name", "id", "bytes", "len", "hash"}
)

# -- sources ----------------------------------------------------------------

# Call name -> taint level of the result, regardless of arguments.
SOURCE_CALLS: dict[str, int] = {
    # Scalar sampling: every secret scalar in the scheme (s, a, r) is
    # born here.  Generic rng draws (`rng.random()` etc.) are *not*
    # sources — simulations and Miller–Rabin draw public randomness.
    "random_scalar": SECRET,
    "token_bytes": SECRET,
}

# Raw pairing results: DERIVED at minimum, even on public arguments —
# they are exactly the "pre-KDF pairing value" of the scheme and must
# pass mask_bytes/derive_key before leaving the crypto layer.
PAIRING_CALLS = frozenset({"pair", "pair_with_precomp"})
PAIRING_LEVEL = DERIVED

# -- sanitizers -------------------------------------------------------------

SANITIZER_CALLS = frozenset(
    {
        # KDF family / the paper's H2.
        "derive_key",
        "derive_subkeys",
        "mask_bytes",
        "hash_to_scalar",
        "hash_to_bytes",
        # Hashes and MACs.
        "sha256",
        "sha512",
        "blake2b",
        "blake2s",
        "compute_mac",
        "verify_mac",
        # Constant-time comparison: a sanctioned one-bit output.
        "bytes_eq",
        "compare_digest",
        # The DEM: outputs are ciphertexts / authenticated plaintexts.
        "keystream",
        "stream_xor",
        "aead_encrypt",
        "aead_decrypt",
    }
)

# Attribute receivers whose entire API is sanitizing (`hmac.new(...)`,
# `hashlib.sha256(...)`).
SANITIZER_MODULES = frozenset({"hashlib", "hmac"})

# -- declassifiers ----------------------------------------------------------

DECLASSIFIER_CALLS = frozenset(
    {
        # Group one-way operations: aG reveals a only via discrete log.
        "mul",
        "multi_scalar_mult",
        "negate",
        "hash_to_g1",
        "pow",  # 3-arg modexp idiom; `**` on scalars still propagates
        # Rng constructors return generator *handles*, not secret
        # material — secrets enter through `random_scalar`, not here.
        "seeded_rng",
        "system_rng",
        # Predicates / metadata: reveal membership or size, not value.
        "in_group",
        "is_identity",
        "len",
        "type",
        "bool",
        "id",
        "isinstance",
        "issubclass",
    }
)

# -- sinks ------------------------------------------------------------------

# RP201 rendering sinks (plain-name calls).
RENDER_CALLS = frozenset({"print", "repr", "ascii", "format"})
# RP201 rendering sinks (attribute calls), keyed by method name.
LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)
LOG_RECEIVER_TOKENS = frozenset({"logging", "logger", "log"})
WARN_CALLS = frozenset({"warn"})
STDIO_RECEIVERS = frozenset({"stdout", "stderr"})

# RP203 persistence sinks: attribute calls that put bytes somewhere
# durable, and the stdlib serializers.
PERSIST_METHODS = frozenset({"write", "write_bytes", "write_text"})
SERIALIZE_MODULE_CALLS = frozenset({"dumps", "dump"})  # json./pickle./marshal.
SERIALIZER_MODULES = frozenset({"json", "pickle", "marshal"})

# Function *definitions* with these names are serialization boundaries:
# returning a concretely tainted value from one is RP203 (the secret
# left the process without a KDF).
SERIALIZER_DEF_NAMES = frozenset(
    {"to_bytes", "to_json", "to_dict", "serialize", "export", "hex", "__bytes__"}
)


def is_serializer_name(name: str) -> bool:
    return name in SERIALIZER_DEF_NAMES or name.endswith("_to_bytes")


# -- RP204: the tracked world ----------------------------------------------

# Imports from these roots are tracked (stdlib we model or know to be
# inert) — anything else imported and then called with a SECRET argument
# is an untracked third-party boundary.
TRACKED_MODULE_ROOTS = frozenset(
    {
        "repro",
        "abc",
        "argparse",
        "ast",
        "base64",
        "binascii",
        "collections",
        "contextlib",
        "copy",
        "dataclasses",
        "enum",
        "functools",
        "hashlib",
        "heapq",
        "hmac",
        "io",
        "itertools",
        "json",
        "math",
        "operator",
        "os",
        "pathlib",
        "pickle",
        "random",
        "re",
        "secrets",
        "statistics",
        "struct",
        "sys",
        "textwrap",
        "time",
        "typing",
        "unittest",
        "warnings",
    }
)


def module_root(module: str | None) -> str:
    return (module or "").split(".", 1)[0]


def is_tracked_module(module: str | None) -> bool:
    return module_root(module) in TRACKED_MODULE_ROOTS


# -- shared token helpers ---------------------------------------------------


def name_tokens(identifier: str) -> set[str]:
    return {tok for tok in identifier.strip("_").lower().split("_") if tok}


def is_secret_name(identifier: str) -> bool:
    tokens = name_tokens(identifier)
    return bool(tokens & SECRET_NAME_TOKENS) and not tokens & PUBLIC_NAME_TOKENS


def is_public_name(identifier: str) -> bool:
    return bool(name_tokens(identifier) & PUBLIC_NAME_TOKENS)
