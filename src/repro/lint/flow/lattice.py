"""The taint lattice: CLEAN < DERIVED < SECRET, plus parameter symbols.

An abstract value carries two things:

* a **level** — the concrete taint known inside the current function:
  ``SECRET`` for declared secret material itself (key scalars, rng
  draws), ``DERIVED`` for values computed from secrets (or raw pairing
  outputs) that have not passed a sanitizer, ``CLEAN`` otherwise;
* **deps** — the formal parameters whose *caller-side* taint joins into
  the value.  Deps are what make the analysis interprocedural: a
  function's summary says "the return value is at least as tainted as
  parameters {i, j}", and call sites substitute actual argument taints.

Each dep edge also records whether the flow is **direct** (the value
*is* the parameter, or a secret-named projection of it) or a neutral
attribute projection (``self.policy`` on an object that also holds a
key).  Only direct flows count at sinks — a server object is not
leaked by rendering its epoch counter — which is the cheap stand-in
for field sensitivity that keeps container objects from poisoning
every method call on them.

Join is pointwise (max level, union of deps), so the lattice is finite
and the summary fixpoint terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

CLEAN = 0
DERIVED = 1
SECRET = 2

_LEVEL_NAMES = {CLEAN: "clean", DERIVED: "derived", SECRET: "secret"}

# A dep edge is (param_index, direct).
Dep = "tuple[int, bool]"


@dataclass(frozen=True)
class Taint:
    """One abstract value: concrete level + symbolic parameter deps."""

    level: int = CLEAN
    deps: frozenset = field(default_factory=frozenset)  # of (int, bool)

    def join(self, other: "Taint") -> "Taint":
        if other is TAINT_CLEAN:
            return self
        if self is TAINT_CLEAN:
            return other
        return Taint(max(self.level, other.level), self.deps | other.deps)

    def with_level(self, level: int) -> "Taint":
        """The same deps at a different concrete level."""
        return Taint(level, self.deps)

    def demoted(self) -> "Taint":
        """A neutral projection: same level, dep edges no longer direct."""
        if not self.deps:
            return self
        return Taint(self.level, frozenset((i, False) for i, _ in self.deps))

    def direct_deps(self) -> "frozenset[int]":
        return frozenset(i for i, direct in self.deps if direct)

    @property
    def tainted(self) -> bool:
        """Concretely tainted or symbolically dependent on a parameter."""
        return self.level > CLEAN or bool(self.deps)

    @property
    def level_name(self) -> str:
        return _LEVEL_NAMES[self.level]


TAINT_CLEAN = Taint()
TAINT_DERIVED = Taint(DERIVED)
TAINT_SECRET = Taint(SECRET)


def join_all(values: "list[Taint] | tuple[Taint, ...]") -> Taint:
    out = TAINT_CLEAN
    for value in values:
        out = out.join(value)
    return out


def param(index: int, level: int = CLEAN) -> Taint:
    """The symbolic taint of formal parameter ``index`` (a direct flow)."""
    return Taint(level, frozenset(((index, True),)))
