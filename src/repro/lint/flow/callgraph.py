"""Whole-program indexing: functions, classes, imports, call resolution.

The program index is deliberately *name-based*: Python's dynamism makes
a sound points-to analysis impossible without types, so a call
``obj.refresh(...)`` resolves to every function named ``refresh``
anywhere in the analyzed tree, and their summaries are joined.  That is
conservative in the direction a security lint wants — a taint flow is
reported if *any* candidate would leak — and cheap enough to run on
every lint invocation.

Each module also records where its imported names come from, which is
what RP204 uses to tell a tracked call (defined in-tree or in modeled
stdlib) from an untracked third-party boundary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.flow.registry import is_tracked_module, module_root


@dataclass
class FunctionInfo:
    """One function or method definition, ready for transfer analysis."""

    name: str
    qualname: str  # "module_path::Class.method" for diagnostics
    path: str  # reported path of the defining module
    package_path: str  # package-relative path ("" outside the package)
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    lines: list[str]
    params: list[str] = field(default_factory=list)
    is_method: bool = False  # first parameter is self/cls
    class_name: str | None = None

    @property
    def top_dir(self) -> str:
        if "/" in self.package_path:
            return self.package_path.split("/", 1)[0]
        return ""


@dataclass
class ClassInfo:
    name: str
    path: str
    node: ast.ClassDef


@dataclass
class ModuleImports:
    """name-as-bound-in-module -> module it came from."""

    origins: dict[str, str] = field(default_factory=dict)

    def origin_of(self, name: str) -> str | None:
        return self.origins.get(name)

    def is_untracked(self, name: str) -> bool:
        origin = self.origins.get(name)
        return origin is not None and not is_tracked_module(origin)


def collect_imports(tree: ast.Module) -> ModuleImports:
    imports = ModuleImports()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or module_root(alias.name)
                imports.origins[bound] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: in-tree by construction
                continue
            for alias in node.names:
                imports.origins[alias.asname or alias.name] = node.module or ""
    return imports


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = node.args
    return [a.arg for a in [*args.posonlyargs, *args.args]]


class ProgramIndex:
    """Functions and classes of the analyzed tree, indexed by name."""

    def __init__(self) -> None:
        self.functions: dict[str, list[FunctionInfo]] = {}
        self.classes: dict[str, list[ClassInfo]] = {}
        self.imports: dict[str, ModuleImports] = {}  # keyed by module path
        self.all_functions: list[FunctionInfo] = []

    def add_module(
        self, path: str, package_path: str, tree: ast.Module, lines: list[str]
    ) -> None:
        self.imports[path] = collect_imports(tree)
        self._walk(path, package_path, tree, lines, class_name=None)

    def _walk(
        self,
        path: str,
        package_path: str,
        node: ast.AST,
        lines: list[str],
        class_name: str | None,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = _param_names(child)
                is_method = (
                    class_name is not None
                    and "staticmethod" not in _decorator_names(child)
                    and bool(params)
                )
                qual = f"{class_name}.{child.name}" if class_name else child.name
                info = FunctionInfo(
                    name=child.name,
                    qualname=f"{package_path or path}::{qual}",
                    path=path,
                    package_path=package_path,
                    node=child,
                    lines=lines,
                    params=params,
                    is_method=is_method,
                    class_name=class_name,
                )
                self.functions.setdefault(child.name, []).append(info)
                self.all_functions.append(info)
                # Nested defs are analyzed too (closures are opaque to
                # them, which under-taints at worst one level).
                self._walk(path, package_path, child, lines, class_name=None)
            elif isinstance(child, ast.ClassDef):
                self.classes.setdefault(child.name, []).append(
                    ClassInfo(child.name, path, child)
                )
                self._walk(path, package_path, child, lines, class_name=child.name)
            else:
                self._walk(path, package_path, child, lines, class_name=class_name)

    # -- resolution ---------------------------------------------------------

    def resolve_function(self, name: str) -> list[FunctionInfo]:
        return self.functions.get(name, [])

    def is_class(self, name: str) -> bool:
        return name in self.classes

    def imports_of(self, path: str) -> ModuleImports:
        return self.imports.get(path) or ModuleImports()
