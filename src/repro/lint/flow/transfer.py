"""Per-function transfer: abstract interpretation of one function body.

The analyzer walks a function's statements in order, mapping local
names to :class:`~repro.lint.flow.lattice.Taint` values.  Branches are
analyzed on copies of the environment and joined; loop bodies run twice
(enough for a join-lattice of height 2).  The output is a
:class:`Summary` — the function's interprocedural contract:

* ``returns`` — taint of the return value, with the parameter indices
  that flow into it;
* ``param_sinks`` — parameters that reach a sink *inside* the function
  (directly or through further calls), so a call site passing a secret
  argument is reported even when the leak is several hops away.

Findings are emitted only on the reporting pass (after the summary
fixpoint), and only when a value is *concretely* tainted — a parameter
that merely might be secret records a summary entry instead, and the
call site that actually supplies a secret gets the finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.lint.flow.callgraph import FunctionInfo

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.flow.analysis import ProgramAnalysis
from repro.lint.flow.lattice import (
    CLEAN,
    DERIVED,
    SECRET,
    TAINT_CLEAN,
    Taint,
    join_all,
)
from repro.lint.flow import registry as reg

RP201 = "RP201"
RP202 = "RP202"
RP203 = "RP203"
RP204 = "RP204"

# Minimum concrete taint level at which each rule fires.  RP201/RP203
# include DERIVED: pre-KDF pairing values must not be rendered or
# serialized.  RP202/RP204 demand SECRET to keep verification-pairing
# branches and generic helper calls quiet.
RULE_THRESHOLD = {RP201: DERIVED, RP202: SECRET, RP203: DERIVED, RP204: SECRET}

_MAX_DESC = 90


@dataclass
class Summary:
    """A function's interprocedural contract."""

    returns: Taint = TAINT_CLEAN
    # (param index, rule id) -> (call depth to the sink, description).
    # The description is the *original* sink's, never re-composed, so
    # summary entries are stable and the fixpoint terminates.
    param_sinks: dict[tuple[int, str], tuple[int, str]] = field(default_factory=dict)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Summary)
            and self.returns == other.returns
            and self.param_sinks == other.param_sinks
        )


def _clip(desc: str) -> str:
    return desc if len(desc) <= _MAX_DESC else desc[: _MAX_DESC - 1] + "…"


def _qualify(level: int) -> str:
    return "secret" if level >= SECRET else "secret-derived"


class FunctionTransfer:
    """Analyze one function body against the current summary table."""

    def __init__(self, func: FunctionInfo, program: "ProgramAnalysis", report: bool):
        self.func = func
        self.program = program
        self.report = report
        self.env: dict[str, Taint] = {}
        self.returns = TAINT_CLEAN
        self.param_sinks: dict[tuple[int, str], tuple[int, str]] = {}
        self.param_index = {name: i for i, name in enumerate(func.params)}
        for i, name in enumerate(func.params):
            level = SECRET if reg.is_secret_name(name) else CLEAN
            self.env[name] = Taint(level, frozenset(((i, True),)))

    # -- driver -------------------------------------------------------------

    def run(self) -> Summary:
        body = getattr(self.func.node, "body", [])
        self.exec_block(body, self.env)
        return Summary(self.returns, dict(self.param_sinks))

    # -- findings and summary entries ---------------------------------------

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if self.report:
            self.program.emit(self.func, node, rule, message)

    def _sink(
        self, node: ast.AST, rule: str, taint: Taint, happened: str
    ) -> None:
        """A tainted value reached a sink described by ``happened``."""
        threshold = RULE_THRESHOLD[rule]
        if taint.level >= threshold:
            self._emit(node, rule, f"{_qualify(taint.level)} value {happened}")
        elif taint.direct_deps():
            # Only *direct* flows become summary entries: rendering a
            # neutral field of an object that also holds a key is not a
            # leak of the key.
            desc = _clip(f"{happened} in `{self.func.name}`")
            for dep in taint.direct_deps():
                self.param_sinks.setdefault((dep, rule), (0, desc))

    # -- statements ---------------------------------------------------------

    def exec_block(self, stmts: list[ast.stmt], env: dict[str, Taint]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: dict[str, Taint]) -> None:
        if isinstance(
            stmt,
            (
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
                ast.Import,
                ast.ImportFrom,
                ast.Global,
                ast.Nonlocal,
                ast.Pass,
                ast.Break,
                ast.Continue,
            ),
        ):
            return
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.bind(target, taint, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value, env).join(
                self.eval(stmt.target, env, as_load=True)
            )
            self.bind(stmt.target, taint, env)
        elif isinstance(stmt, ast.Return):
            taint = self.eval(stmt.value, env) if stmt.value is not None else TAINT_CLEAN
            self.returns = self.returns.join(taint)
            if reg.is_serializer_name(self.func.name):
                self._sink(
                    stmt,
                    RP203,
                    taint,
                    f"returned from serializer `{self.func.name}` without a KDF",
                )
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._branch_check(stmt.test, env)
            then_env, else_env = dict(env), dict(env)
            self.exec_block(stmt.body, then_env)
            self.exec_block(stmt.orelse, else_env)
            self._merge(env, then_env, else_env)
        elif isinstance(stmt, ast.While):
            self._branch_check(stmt.test, env)
            loop_env = dict(env)
            self.exec_block(stmt.body, loop_env)
            self.exec_block(stmt.body, loop_env)
            self.exec_block(stmt.orelse, loop_env)
            self._merge(env, loop_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taint = self.eval(stmt.iter, env)
            loop_env = dict(env)
            self.bind(stmt.target, iter_taint, loop_env)
            self.exec_block(stmt.body, loop_env)
            self.exec_block(stmt.body, loop_env)
            self.exec_block(stmt.orelse, loop_env)
            self._merge(env, loop_env)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body, env)
            for handler in stmt.handlers:
                if handler.name:
                    env[handler.name] = TAINT_CLEAN
                self.exec_block(handler.body, env)
            self.exec_block(stmt.orelse, env)
            self.exec_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, taint, env)
            self.exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Raise):
            self._check_raise(stmt, env)
        elif isinstance(stmt, ast.Assert):
            self._branch_check(stmt.test, env)
            if stmt.msg is not None:
                self._sink(
                    stmt.msg,
                    RP201,
                    self.eval(stmt.msg, env),
                    "rendered in an assert message",
                )
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject, env)
            for case in stmt.cases:
                case_env = dict(env)
                self.exec_block(case.body, case_env)
                self._merge(env, case_env)

    def _merge(self, into: dict[str, Taint], *branches: dict[str, Taint]) -> None:
        for branch in branches:
            for key, value in branch.items():
                into[key] = into.get(key, TAINT_CLEAN).join(value)

    def _branch_check(self, test: ast.expr, env: dict[str, Taint]) -> None:
        taint = self.eval(test, env)
        self._sink(
            test,
            RP202,
            taint,
            "decides a branch (variable-time control flow on a secret)",
        )

    def _check_raise(self, stmt: ast.Raise, env: dict[str, Taint]) -> None:
        exc = stmt.exc
        if exc is None:
            return
        args = (
            [*exc.args, *[kw.value for kw in exc.keywords]]
            if isinstance(exc, ast.Call)
            else [exc]
        )
        for arg in args:
            self._sink(
                arg,
                RP201,
                self.eval(arg, env),
                "rendered into a raised exception message",
            )

    # -- binding ------------------------------------------------------------

    def bind(self, target: ast.expr, taint: Taint, env: dict[str, Taint]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = taint
        elif isinstance(target, ast.Starred):
            self.bind(target.value, taint, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind(elt, taint, env)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name):
                env[f"{target.value.id}.{target.attr}"] = taint
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Name):
                base = target.value.id
                env[base] = env.get(base, TAINT_CLEAN).join(taint)

    # -- expressions --------------------------------------------------------

    def eval(
        self,
        node: ast.expr | None,
        env: dict[str, Taint],
        *,
        as_load: bool = False,
        no_serialize_sinks: bool = False,
    ) -> Taint:
        if node is None:
            return TAINT_CLEAN
        if isinstance(node, ast.Constant):
            return TAINT_CLEAN
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return Taint(SECRET) if reg.is_secret_name(node.id) else TAINT_CLEAN
        if isinstance(node, ast.Attribute):
            key = (
                f"{node.value.id}.{node.attr}"
                if isinstance(node.value, ast.Name)
                else None
            )
            if key is not None and key in env:
                return env[key]
            base = self.eval(node.value, env)
            if reg.is_secret_name(node.attr):
                return Taint(SECRET, base.deps)
            if reg.is_public_name(node.attr):
                return TAINT_CLEAN
            return base.demoted()
        if isinstance(node, ast.Call):
            return self.eval_call(node, env, no_serialize_sinks=no_serialize_sinks)
        if isinstance(node, ast.JoinedStr):
            out = TAINT_CLEAN
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    taint = self.eval(part.value, env)
                    self._sink(part.value, RP201, taint, "formatted into an f-string")
                    out = out.join(taint)
            return out
        if isinstance(node, ast.BinOp):
            return self.eval(node.left, env).join(self.eval(node.right, env))
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.BoolOp):
            return join_all([self.eval(v, env) for v in node.values])
        if isinstance(node, ast.Compare):
            return join_all(
                [self.eval(node.left, env)]
                + [self.eval(c, env) for c in node.comparators]
            )
        if isinstance(node, ast.IfExp):
            self._branch_check(node.test, env)
            return self.eval(node.body, env).join(self.eval(node.orelse, env))
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return join_all([self.eval(e, env) for e in node.elts])
        if isinstance(node, ast.Dict):
            return join_all(
                [self.eval(k, env) for k in node.keys if k is not None]
                + [self.eval(v, env) for v in node.values]
            )
        if isinstance(node, ast.Subscript):
            return self.eval(node.value, env)
        if isinstance(node, ast.Slice):
            return join_all(
                [self.eval(p, env) for p in (node.lower, node.upper, node.step) if p]
            )
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, ast.Await):
            return self.eval(node.value, env)
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value, env)
            self.bind(node.target, taint, env)
            return taint
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            taint = self.eval(node.value, env) if node.value is not None else TAINT_CLEAN
            self.returns = self.returns.join(taint)
            return TAINT_CLEAN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            comp_env = dict(env)
            for gen in node.generators:
                self.bind(gen.target, self.eval(gen.iter, comp_env), comp_env)
                for cond in gen.ifs:
                    self.eval(cond, comp_env)
            if isinstance(node, ast.DictComp):
                return self.eval(node.key, comp_env).join(
                    self.eval(node.value, comp_env)
                )
            return self.eval(node.elt, comp_env)
        if isinstance(node, ast.Lambda):
            return TAINT_CLEAN
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value, env)
        return TAINT_CLEAN

    # -- calls --------------------------------------------------------------

    def eval_call(
        self,
        node: ast.Call,
        env: dict[str, Taint],
        *,
        no_serialize_sinks: bool = False,
    ) -> Taint:
        func = node.func
        fname = None
        base_name = None
        is_attr = isinstance(func, ast.Attribute)
        if isinstance(func, ast.Name):
            fname = func.id
        elif is_attr:
            fname = func.attr
            if isinstance(func.value, ast.Name):
                base_name = func.value.id

        sanitizing = fname in reg.SANITIZER_CALLS or (
            is_attr and base_name in reg.SANITIZER_MODULES
        )

        # Serializing a value directly *into* a sanitizer
        # (`derive_key(k.to_bytes(), ...)`) is the sanctioned idiom, so
        # serialization sinks are suppressed inside sanitizer arguments.
        suppress = no_serialize_sinks or sanitizing
        pos_taints = [
            self.eval(arg, env, no_serialize_sinks=suppress) for arg in node.args
        ]
        kw_taints = {
            kw.arg: self.eval(kw.value, env, no_serialize_sinks=suppress)
            for kw in node.keywords
        }
        all_args = pos_taints + list(kw_taints.values())
        args_join = join_all(all_args)

        if sanitizing:
            return TAINT_CLEAN
        if fname in reg.DECLASSIFIER_CALLS:
            return TAINT_CLEAN
        if fname in reg.SOURCE_CALLS:
            return Taint(reg.SOURCE_CALLS[fname])
        if fname in reg.PAIRING_CALLS:
            base = self.eval(func.value, env) if is_attr else TAINT_CLEAN
            return Taint(reg.PAIRING_LEVEL, args_join.deps | base.deps)

        # -- rendering sinks (RP201) ----------------------------------------
        sink_label = self._render_sink_label(func, fname, base_name)
        if sink_label is not None:
            for arg, taint in zip(node.args, pos_taints):
                self._sink(arg, RP201, taint, f"passed to {sink_label}")
            for kw, taint in zip(node.keywords, list(kw_taints.values())):
                self._sink(kw.value, RP201, taint, f"passed to {sink_label}")
            return TAINT_CLEAN

        # -- persistence sinks (RP203) --------------------------------------
        if not no_serialize_sinks and is_attr:
            persist_label = None
            if fname in reg.SERIALIZE_MODULE_CALLS and base_name in reg.SERIALIZER_MODULES:
                persist_label = f"{base_name}.{fname}()"
            elif fname in reg.PERSIST_METHODS and base_name not in reg.STDIO_RECEIVERS:
                persist_label = f".{fname}()"
            if persist_label is not None:
                for arg, taint in zip(node.args, pos_taints):
                    self._sink(
                        arg,
                        RP203,
                        taint,
                        f"serialized via {persist_label} without a KDF",
                    )
                return TAINT_CLEAN

        # -- calls resolved inside the analyzed program ---------------------
        base_taint = self.eval(func.value, env) if is_attr else None
        resolved = self._apply_program_call(
            node, fname, is_attr, base_taint, pos_taints, kw_taints, no_serialize_sinks
        )
        if resolved is not None:
            return resolved

        # -- untracked third-party boundary (RP204) -------------------------
        imports = self.program.imports_of(self.func.path)
        external = (
            (not is_attr and fname is not None and imports.is_untracked(fname))
            or (is_attr and base_name is not None and imports.is_untracked(base_name))
        )
        if external:
            for arg, taint in zip(node.args, pos_taints):
                self._sink(
                    arg,
                    RP204,
                    taint,
                    f"passed to untracked third-party call `{fname}()`",
                )
            for kw in node.keywords:
                self._sink(
                    kw.value,
                    RP204,
                    kw_taints[kw.arg],
                    f"passed to untracked third-party call `{fname}()`",
                )
            return args_join

        # Unresolved in-tree/builtin call: propagate argument taint (and
        # the receiver's for method calls — `secret.hex()` stays secret;
        # demoted because the result of an unknown method is a neutral
        # projection of the receiver, not the receiver itself).
        if base_taint is not None:
            return args_join.join(base_taint.demoted())
        return args_join

    def _render_sink_label(
        self, func: ast.expr, fname: str | None, base_name: str | None
    ) -> str | None:
        if isinstance(func, ast.Name) and fname in reg.RENDER_CALLS:
            return f"{fname}()"
        if isinstance(func, ast.Attribute):
            if fname in reg.LOG_METHODS and base_name is not None:
                if reg.name_tokens(base_name) & reg.LOG_RECEIVER_TOKENS:
                    return f"{base_name}.{fname}()"
            if fname in reg.WARN_CALLS:
                return f"{fname}()"
            if fname == "format":
                return "str.format()"
            if fname == "write" and base_name in reg.STDIO_RECEIVERS:
                return f"{base_name}.write()"
        return None

    def _apply_program_call(
        self,
        node: ast.Call,
        fname: str | None,
        is_attr: bool,
        base_taint: Taint | None,
        pos_taints: list[Taint],
        kw_taints: dict[str | None, Taint],
        no_serialize_sinks: bool,
    ) -> Taint | None:
        """Apply summaries of in-program candidates; None when unresolved."""
        if fname is None:
            return None
        if not is_attr and (self.program.is_class(fname) or fname == "cls"):
            # Constructor: the instance is a *container*, tracked
            # symbolically (non-direct deps) but not concretely — the
            # object is not the secret it holds.  Secrets are recovered
            # at field extraction (`kp.private`) by the name heuristics,
            # and unredacted reprs by the structural dataclass check.
            joined = join_all(pos_taints + list(kw_taints.values()))
            return joined.with_level(CLEAN).demoted()
        candidates = self.program.resolve_function(fname)
        if is_attr:
            usable = candidates
        else:
            usable = [c for c in candidates if not c.is_method] or candidates
        if not usable:
            return None
        out = TAINT_CLEAN
        for cand in usable[:8]:
            param_taints: dict[int, Taint] = {}
            offset = 0
            if cand.is_method:
                if is_attr and base_taint is not None:
                    param_taints[0] = base_taint
                offset = 1
            for i, taint in enumerate(pos_taints):
                param_taints[offset + i] = taint
            index = {name: j for j, name in enumerate(cand.params)}
            for kw_name, taint in kw_taints.items():
                if kw_name is not None and kw_name in index:
                    param_taints[index[kw_name]] = taint
            summary = self.program.summary_of(cand)
            for (pidx, rule), (depth, desc) in summary.param_sinks.items():
                if no_serialize_sinks and rule == RP203:
                    continue
                arg_taint = param_taints.get(pidx)
                if arg_taint is None:
                    continue
                if arg_taint.level >= RULE_THRESHOLD[rule]:
                    pname = (
                        cand.params[pidx] if pidx < len(cand.params) else f"#{pidx}"
                    )
                    self._emit(
                        node,
                        rule,
                        f"{_qualify(arg_taint.level)} argument `{pname}` to "
                        f"`{cand.name}()` reaches a sink {depth + 1} call(s) "
                        f"deep in: {desc}",
                    )
                elif arg_taint.direct_deps():
                    for dep in arg_taint.direct_deps():
                        self.param_sinks.setdefault((dep, rule), (depth + 1, desc))
            ret = Taint(summary.returns.level)
            for pidx, direct in summary.returns.deps:
                arg_taint = param_taints.get(pidx, TAINT_CLEAN)
                if not direct:
                    # Returning a neutral projection of the argument
                    # forwards only symbolic (non-direct) flow, not the
                    # argument's concrete taint.
                    arg_taint = arg_taint.with_level(CLEAN).demoted()
                ret = ret.join(arg_taint)
            out = out.join(ret)
        return out
