"""repro.lint — a crypto-hygiene static analyzer for this repository.

The paper's security argument assumes implementation hygiene that no
test can fully enforce: secret scalars drawn from a CSPRNG, secrets
compared in constant time, group elements validated at deserialization
boundaries, and domain-separated hashing.  This package walks the
source tree with :mod:`ast` (stdlib only, no third-party dependency)
and enforces those invariants as machine-checkable rules:

========  ================  ====================================================
Rule id   Name              Invariant
========  ================  ====================================================
RP101     rng-discipline    no ambient ``random.*`` in crypto modules; secret
                            randomness flows from an injected rng or
                            ``repro.crypto.rng.system_rng``
RP102     ct-compare        no ``==``/``!=`` on secret-named values; use
                            ``repro.crypto.ct.bytes_eq``
RP103     secret-leak       secret-named values never reach f-strings, ``repr``,
                            ``print``, logging, or exception messages
RP104     point-validation  decoded group elements are validated (on-curve +
                            subgroup) before they escape the decoder
RP105     hash-domain       no raw ``a + b`` concatenation fed to a hash; core
                            code uses the domain-separated helpers
RP201     secret-flow-sink  no interprocedural dataflow path from a secret to
                            a rendering sink (f-string, ``print``, logging,
                            exception message, dataclass ``__repr__``)
RP202     secret-branch     no branch or loop condition decided by a secret
                            (variable-time control flow)
RP203     secret-serialize  no secret or raw pairing output serialized or
                            persisted without first passing a KDF
RP204     taint-escape      no secret passed into an untracked third-party
                            call
RP301     fork-duplicated-rng       no worker-reachable draw from stdlib
                            ``random`` module state or a cached
                            deterministic generator
RP302     shared-mutable-in-worker  no worker-reachable touch of module/
                            class-level mutable state outside the
                            read-only whitelist
RP303     secret-over-pickle        no secret crossing the task-shard /
                            pickle boundary without the bytes-only
                            shard sanitizer
RP304     fork-unsafe-lazy-init     no process-global first-touch init
                            reachable from both sides of the fork
RP305     nondeterministic-chunk-order  no worker-result merge through
                            set/dict/completion order
RP401     unverified-update-use     no wire-decoded update reaches a
                            cache insert, decrypt, or serialization
                            sink before the pairing check
                            ê(sG, H1(T)) == ê(G, I_T) passes
RP402     unguarded-transport-await no ``await`` on a transport
                            round-trip outside an asyncio.wait_for /
                            deadline scope
RP403     untracked-task    no dropped ``create_task``/``ensure_future``
                            result — tasks are stored, awaited, or
                            cancelled
RP404     unclassified-service-error  service raises use the transient/
                            permanent taxonomy; broad excepts must
                            re-raise or classify
RP405     verify-result-discarded   no verification verdict computed
                            and thrown away
========  ================  ====================================================

RP1xx are single-node pattern rules (:mod:`repro.lint.rules`); RP2xx
come from the whole-program taint analysis (:mod:`repro.lint.flow`),
which propagates a CLEAN < DERIVED < SECRET lattice through function
summaries to a fixpoint and reports at the call site that supplies the
secret, however many calls separate it from the sink; RP3xx come from
the concurrency/fork-safety pass (:mod:`repro.lint.conc`), which
reuses the same call graph to decide what runs inside worker processes
and checks the process-global state it touches; RP4xx come from the
typestate protocol pass (:mod:`repro.lint.proto`), which tracks
per-variable abstract states (FETCHED < PARAM < VERIFIED for wire-
decoded updates) through assignments, branches, and interprocedural
summaries, plus the async-discipline and error-taxonomy checks.

Suppression is explicit and reviewable: an inline
``# lint: allow[rule-name] justification`` waiver on (or directly
above) the offending line, or an entry in the checked-in baseline file
for grandfathered findings.  ``python -m repro.lint src/`` runs the
analyzer; ``tests/lint/test_tree_is_clean.py`` gates the pytest suite.

See ``docs/STATIC_ANALYSIS.md`` for the rule-by-rule rationale.
"""

from __future__ import annotations

from repro.lint.baseline import format_baseline, load_baseline, update_baseline
from repro.lint.conc import CONC_RULES
from repro.lint.engine import (
    LintReport,
    lint_paths,
    lint_source,
    split_by_baseline,
)
from repro.lint.findings import Finding
from repro.lint.flow import FLOW_RULES
from repro.lint.proto import PROTO_RULES
from repro.lint.rules import ALL_RULES, all_rule_ids, get_rule

__all__ = [
    "ALL_RULES",
    "CONC_RULES",
    "FLOW_RULES",
    "PROTO_RULES",
    "Finding",
    "LintReport",
    "all_rule_ids",
    "format_baseline",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "split_by_baseline",
    "update_baseline",
]
