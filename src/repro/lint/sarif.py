"""SARIF 2.1.0 export for lint reports.

Static Analysis Results Interchange Format output lets CI surfaces
(code-scanning dashboards, editor SARIF viewers) ingest repro.lint
findings without bespoke glue.  One run, one tool (``repro.lint``),
every RP1xx/RP2xx/RP3xx/RP4xx rule declared in the driver; new findings are
plain results, baselined findings are included but marked suppressed so
dashboards show them greyed-out rather than resurfacing them.
"""

from __future__ import annotations

import json

from repro.lint.conc import CONC_RULES
from repro.lint.engine import LintReport
from repro.lint.findings import Finding
from repro.lint.flow import FLOW_RULES
from repro.lint.proto import PROTO_RULES
from repro.lint.rules import ALL_RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_INFO_URI = "https://example.invalid/repro/docs/STATIC_ANALYSIS.md"


def _rule_descriptors() -> list[dict]:
    descriptors = []
    for rule in ALL_RULES:
        descriptors.append(
            {
                "id": rule.id,
                "name": rule.name,
                "shortDescription": {"text": rule.rationale},
                "help": {"text": rule.hint},
                "defaultConfiguration": {"level": "error"},
            }
        )
    for meta in (*FLOW_RULES, *CONC_RULES, *PROTO_RULES):
        descriptors.append(
            {
                "id": meta.id,
                "name": meta.name,
                "shortDescription": {"text": meta.rationale},
                "help": {"text": meta.hint},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def _result(finding: Finding, suppressed: bool) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
    }
    if suppressed:
        result["suppressions"] = [
            {"kind": "external", "justification": "grandfathered in lint-baseline.txt"}
        ]
    return result


def report_to_sarif(report: LintReport) -> dict:
    """Build the SARIF log object for one lint run."""
    results = [_result(finding, suppressed=False) for finding in report.new]
    results.extend(_result(finding, suppressed=True) for finding in report.baselined)
    invocation = {
        "executionSuccessful": report.clean,
        "toolExecutionNotifications": [
            {
                "level": "warning",
                "message": {"text": f"stale baseline entry: {entry}"},
            }
            for entry in report.stale_baseline
        ]
        + [
            {"level": "warning", "message": {"text": message}}
            for message in report.unused_waivers
        ],
    }
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": _INFO_URI,
                        "rules": _rule_descriptors(),
                    }
                },
                "invocations": [invocation],
                "results": results,
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    return json.dumps(report_to_sarif(report), indent=2, sort_keys=True)
