"""Shared infrastructure for lint rules: context, name tokens, scoping."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.findings import Finding

# Package-top-level directories that hold security-relevant code.  A
# rule lists the subset it patrols; ``None`` means the whole tree.
CRYPTO_DIRS = ("core", "crypto", "ec", "pairing", "math", "baselines")


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str  # as reported in findings (posix style)
    package_path: str  # path relative to the `repro` package, "" if unknown
    tree: ast.Module
    lines: list[str]
    # Names under which the stdlib modules of interest are imported,
    # e.g. {"random": {"random"}, "hashlib": {"hashlib"}}.
    module_aliases: dict[str, set[str]] = field(default_factory=dict)
    # Names imported *from* those modules: {"random": {"randrange"}}.
    from_imports: dict[str, set[str]] = field(default_factory=dict)

    @property
    def top_dir(self) -> str:
        """First directory of the package-relative path ("core", ...)."""
        if "/" in self.package_path:
            return self.package_path.split("/", 1)[0]
        return ""

    def aliases_of(self, module: str) -> set[str]:
        return self.module_aliases.get(module, set())

    def names_from(self, module: str) -> set[str]:
        return self.from_imports.get(module, set())


def collect_imports(context: ModuleContext, modules: tuple[str, ...]) -> None:
    """Populate ``module_aliases`` / ``from_imports`` for ``modules``."""
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in modules:
                    context.module_aliases.setdefault(alias.name, set()).add(
                        alias.asname or alias.name
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module in modules:
                for alias in node.names:
                    context.from_imports.setdefault(node.module, set()).add(
                        alias.asname or alias.name
                    )


def terminal_name(node: ast.AST) -> str | None:
    """The identifier a human would say is being used.

    ``tag`` -> "tag"; ``self.mac_key`` -> "mac_key"; anything without a
    meaningful trailing identifier (calls, literals, subscripts) -> None.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def name_tokens(identifier: str) -> set[str]:
    """Split ``an_identifier`` into lowercase ``_``-separated tokens."""
    return {tok for tok in identifier.strip("_").lower().split("_") if tok}


def call_name(node: ast.Call) -> str | None:
    """Terminal name of the called function, e.g. ``curve.point`` -> "point"."""
    return terminal_name(node.func)


def contains_add(node: ast.AST) -> bool:
    """Whether the expression tree contains a ``+`` anywhere."""
    return any(
        isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Add)
        for sub in ast.walk(node)
    )


class Rule:
    """Base class: subclasses set the metadata and implement ``check``."""

    id = "RP000"
    name = "base"
    rationale = ""
    hint = ""
    # Package-relative top dirs this rule patrols; None = everywhere.
    scopes: tuple[str, ...] | None = None

    def applies_to(self, context: ModuleContext) -> bool:
        if self.scopes is None:
            return True
        return context.top_dir in self.scopes

    def check(self, context: ModuleContext):  # pragma: no cover - interface
        raise NotImplementedError

    def finding(
        self, context: ModuleContext, node: ast.AST, message: str, hint: str = ""
    ) -> Finding:
        return Finding(
            rule=self.id,
            name=self.name,
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=hint or self.hint,
        )
