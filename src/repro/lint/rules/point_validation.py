"""RP104 — validate group elements at deserialization boundaries.

Invalid-curve and small-subgroup attacks work by feeding a decoder
coordinates that satisfy *no* equation (or the equation of a weaker
curve/subgroup) and letting the scheme's arithmetic leak the secret
scalar against them.  The defense is purely procedural — every decode
path must establish on-curve + subgroup membership before the element
escapes — so it is exactly the kind of invariant a linter can hold.

Two checks inside the patrolled packages:

* a *decoder* (function named ``*from_bytes*``, ``*decode*``,
  ``*deserialize*``, ``*parse*``, ``*load*``) that constructs a group
  element (``CurvePoint(...)``, ``unchecked_point(...)``,
  ``GTElement(...)``) must also call a validator in the same function;
* any *public* function that calls ``unchecked_point``/``CurvePoint``
  without a validator is flagged — internal helpers (name starting
  with ``_``) are trusted, public surface is not.
"""

from __future__ import annotations

import ast
import re

from repro.lint.rules.base import Rule, call_name

DECODER_NAME = re.compile(r"(from_bytes|from_hex|decode|deserialize|parse|load)")

CONSTRUCTORS = frozenset({"unchecked_point", "CurvePoint"})
DECODED_CONSTRUCTORS = CONSTRUCTORS | {"GTElement"}
VALIDATORS = frozenset(
    {
        "point",  # EllipticCurve.point validates on-curve
        "contains",
        "point_from_x",
        "point_from_bytes",
        "point_from_bytes_compressed",
        "ensure_in_subgroup",
        "in_subgroup",
        "in_group",
        "in_g1",
        "in_g2",
        "ensure_in_gt",
        "clear_cofactor",  # projects into the prime-order subgroup
        "ensure_well_formed",
        "verify_well_formed",
    }
)


class PointValidationRule(Rule):
    id = "RP104"
    name = "point-validation"
    rationale = (
        "deserialized points must pass on-curve + subgroup checks before "
        "use, or invalid-curve / small-subgroup attacks recover secrets"
    )
    hint = (
        "route through a validating decoder (curve.point, "
        "group.point_from_bytes, ensure_in_subgroup) before the element escapes"
    )
    scopes = ("core", "crypto", "pairing", "baselines")

    def check(self, context):
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            is_decoder = bool(DECODER_NAME.search(node.name))
            is_public = not node.name.startswith("_")
            if not (is_decoder or is_public):
                continue
            calls = [sub for sub in ast.walk(node) if isinstance(sub, ast.Call)]
            called = {call_name(sub) for sub in calls}
            if called & VALIDATORS:
                continue
            watched = DECODED_CONSTRUCTORS if is_decoder else CONSTRUCTORS
            for sub in calls:
                constructor = call_name(sub)
                if constructor in watched:
                    what = (
                        "decoder constructs" if is_decoder else "public function constructs"
                    )
                    yield self.finding(
                        context,
                        sub,
                        f"{what} `{constructor}` result without on-curve/"
                        f"subgroup validation in `{node.name}`",
                    )
