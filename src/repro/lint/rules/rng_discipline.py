"""RP101 — RNG discipline.

Secret scalars (user secrets ``a``, server secrets ``s``, blinding
factors ``r``) must come from a CSPRNG.  The library's convention is
dependency injection: every key-generating function takes an ``rng``
argument, production callers pass ``repro.crypto.rng.system_rng()``,
and tests pass ``seeded_rng(...)``.  This rule keeps the convention
honest inside the crypto tree:

* no calls into the ambient ``random`` module (``random.Random()``,
  ``random.randrange(...)``, names imported ``from random import ...``)
  — the Mersenne Twister is predictable from output and its ambient
  global is shared, seedable state;
* no ``seeded_rng(...)`` calls — deterministic randomness belongs in
  ``tests/``, ``benchmarks/``, ``sim/`` and ``examples/`` only.

Using ``random.Random`` as a *type annotation* stays legal: the
injected-rng protocol is typed against it on purpose.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, call_name, collect_imports


class RngDisciplineRule(Rule):
    id = "RP101"
    name = "rng-discipline"
    rationale = (
        "secret randomness must be injected or come from "
        "repro.crypto.rng.system_rng(); ambient random.* is predictable"
    )
    hint = (
        "take an rng parameter, or call repro.crypto.rng.system_rng(); "
        "seeded_rng belongs in tests/benchmarks/sim/examples"
    )
    scopes = ("core", "crypto", "ec", "pairing", "math", "baselines", "service")

    def check(self, context):
        collect_imports(context, ("random",))
        random_aliases = context.aliases_of("random")
        random_from = context.names_from("random")
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in random_aliases
            ):
                yield self.finding(
                    context,
                    node,
                    f"call into the ambient `random` module (random.{func.attr})",
                )
            elif isinstance(func, ast.Name) and func.id in random_from:
                yield self.finding(
                    context,
                    node,
                    f"call to `{func.id}` imported from the `random` module",
                )
            elif call_name(node) == "seeded_rng":
                yield self.finding(
                    context,
                    node,
                    "deterministic seeded_rng() in a production code path",
                )
