"""Rule registry.

To add a rule: subclass :class:`repro.lint.rules.base.Rule` in a new
module here, give it a fresh ``RPxxx`` id and a kebab-case ``name``,
append an instance to ``ALL_RULES``, document it in
``docs/STATIC_ANALYSIS.md``, and add positive/negative fixtures under
``tests/lint/fixtures/``.
"""

from __future__ import annotations

from repro.lint.rules.base import CRYPTO_DIRS, ModuleContext, Rule
from repro.lint.rules.constant_time import ConstantTimeRule
from repro.lint.rules.hash_domain import HashDomainRule
from repro.lint.rules.point_validation import PointValidationRule
from repro.lint.rules.rng_discipline import RngDisciplineRule
from repro.lint.rules.secret_leak import SecretLeakRule

ALL_RULES: tuple[Rule, ...] = (
    RngDisciplineRule(),
    ConstantTimeRule(),
    SecretLeakRule(),
    PointValidationRule(),
    HashDomainRule(),
)


def all_rule_ids() -> tuple[str, ...]:
    """Every rule id the engine can report: AST rules + whole-program
    families (flow RP2xx, concurrency RP3xx, protocol RP4xx)."""
    from repro.lint.conc import CONC_RULE_IDS
    from repro.lint.flow import FLOW_RULE_IDS
    from repro.lint.proto import PROTO_RULE_IDS

    return (
        tuple(rule.id for rule in ALL_RULES)
        + tuple(FLOW_RULE_IDS)
        + tuple(CONC_RULE_IDS)
        + tuple(PROTO_RULE_IDS)
    )


def get_rule(identifier: str):
    """Look a rule up by id ("RP101"/"RP302") or name ("rng-discipline").

    Returns a :class:`Rule` for the AST rules or a
    :class:`repro.lint.flow.FlowRuleMeta` for the flow and concurrency
    families — both carry ``id``, ``name``, ``rationale`` and ``hint``.
    """
    from repro.lint.conc import CONC_RULES
    from repro.lint.flow import FLOW_RULES
    from repro.lint.proto import PROTO_RULES

    for rule in (*ALL_RULES, *FLOW_RULES, *CONC_RULES, *PROTO_RULES):
        if identifier in (rule.id, rule.name):
            return rule
    raise KeyError(f"unknown lint rule {identifier!r}")


__all__ = [
    "ALL_RULES",
    "CRYPTO_DIRS",
    "ModuleContext",
    "Rule",
    "all_rule_ids",
    "get_rule",
]
