"""RP105 — domain-separated, unambiguously framed hashing.

``H(a + b)`` is ambiguous: ``H("ab" + "c") == H("a" + "bc")``, so two
different logical inputs collide and a MAC/oracle built on the hash can
be confused across contexts.  The repo's sanctioned pattern is the one
``crypto/mac.py`` and ``pairing/hashing.py`` already use: an explicit
ASCII domain tag plus length-framing of every variable-length part.

Checks inside ``core``, ``crypto`` and ``pairing``:

* in ``core/``: *any* direct ``hashlib.*``/``hmac.new`` call is flagged
  — scheme-level code must use the domain-separated helpers
  (``pairing.hashing.hash_bytes``, ``crypto.kdf.derive_key``,
  ``crypto.mac.compute_mac``) so tags stay centralized;
* elsewhere: a hash constructor or ``.update()`` whose argument
  contains raw ``+`` concatenation is flagged.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, collect_imports, contains_add


class HashDomainRule(Rule):
    id = "RP105"
    name = "hash-domain"
    rationale = (
        "raw concatenation fed to a hash is ambiguous across inputs and "
        "contexts; inputs must be length-framed and domain-tagged"
    )
    hint = (
        "use pairing.hashing.hash_bytes / crypto.kdf.derive_key / "
        "crypto.mac.compute_mac, or length-frame each variable-length part"
    )
    scopes = ("core", "crypto", "pairing")

    def check(self, context):
        collect_imports(context, ("hashlib", "hmac"))
        hashlib_aliases = context.aliases_of("hashlib")
        hmac_aliases = context.aliases_of("hmac")
        in_core = context.top_dir == "core"
        uses_hashing = bool(hashlib_aliases or hmac_aliases)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_hash_call = (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and (
                    func.value.id in hashlib_aliases
                    or (func.value.id in hmac_aliases and func.attr in ("new", "digest"))
                )
            )
            if is_hash_call:
                if in_core:
                    yield self.finding(
                        context,
                        node,
                        f"direct `{func.value.id}.{func.attr}` call in core/ — "
                        "use the domain-separated helpers",
                    )
                    continue
                if any(contains_add(arg) for arg in node.args):
                    yield self.finding(
                        context,
                        node,
                        "raw `+` concatenation fed to a hash function",
                    )
            elif (
                uses_hashing
                and isinstance(func, ast.Attribute)
                and func.attr == "update"
                and any(contains_add(arg) for arg in node.args)
            ):
                yield self.finding(
                    context,
                    node,
                    "raw `+` concatenation fed to a hash .update()",
                )
