"""RP102 — constant-time comparison of secrets.

``==`` on ``bytes`` short-circuits at the first mismatching byte, so
comparing an attacker-supplied tag against a computed MAC leaks the
length of the matching prefix through timing — the classic oracle that
forged Flickr and Xbox 360 API signatures.  Any equality test where
either operand is *named like* a secret (tag, mac, key, digest, ...)
must go through ``repro.crypto.ct.bytes_eq`` (a thin wrapper over
``hmac.compare_digest``).

Heuristics to stay quiet on legitimate code:

* operands named with a clearly public token (``public_key``,
  ``point_bytes``, ``key_path``...) are exempt;
* comparisons against int/bool/None literals (length and sentinel
  checks) are exempt.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, name_tokens, terminal_name

SECRET_TOKENS = frozenset(
    {"tag", "mac", "key", "sk", "secret", "digest", "kappa", "seed", "password"}
)
PUBLIC_TOKENS = frozenset(
    {
        "public",
        "pub",
        "label",
        "path",
        "name",
        "len",
        "length",
        "size",
        "bytes",
        "index",
        "id",
        "count",
        "rate",
    }
)


def _is_exempt_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, (bool, int))
    )


def secretish(node: ast.AST) -> str | None:
    """The offending identifier if ``node`` looks secret-named."""
    identifier = terminal_name(node)
    if identifier is None:
        return None
    tokens = name_tokens(identifier)
    if tokens & SECRET_TOKENS and not tokens & PUBLIC_TOKENS:
        return identifier
    return None


class ConstantTimeRule(Rule):
    id = "RP102"
    name = "ct-compare"
    rationale = (
        "== / != on secrets short-circuits and leaks a timing oracle; "
        "secret comparisons must use hmac.compare_digest"
    )
    hint = "use repro.crypto.ct.bytes_eq (wraps hmac.compare_digest)"
    scopes = ("core", "crypto", "ec", "pairing", "baselines")

    def check(self, context):
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_exempt_literal(operand) for operand in operands):
                continue
            for operand in operands:
                identifier = secretish(operand)
                if identifier is not None:
                    yield self.finding(
                        context,
                        node,
                        f"variable-time comparison involving `{identifier}`",
                    )
                    break
