"""RP103 — no secret material in human-readable output.

Secrets that reach f-strings, ``repr``/``print``, loggers, or exception
messages end up in logs, tracebacks, and crash reports — places with
weaker access control than the process memory the scheme's proofs
assume.  The rule flags any *secret-named* value (``sk``, ``secret``,
``private``, ``password``, ``seed``...) appearing in one of those
rendering contexts, anywhere in the tree.
"""

from __future__ import annotations

import ast

from repro.lint.rules.base import Rule, name_tokens, terminal_name

SECRET_TOKENS = frozenset(
    {"sk", "secret", "private", "password", "passphrase", "seed"}
)
PUBLIC_TOKENS = frozenset({"public", "pub", "label", "path", "name", "id", "bytes"})

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)


# Rendering the *result* of these builtins reveals nothing about the
# secret's value, so their argument subtrees are not scanned.
_SAFE_WRAPPERS = frozenset({"len", "type", "bool", "id"})


def _secret_uses(node: ast.AST):
    stack = [node]
    while stack:
        sub = stack.pop()
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id in _SAFE_WRAPPERS
        ):
            continue
        identifier = terminal_name(sub)
        if identifier is not None:
            tokens = name_tokens(identifier)
            if tokens & SECRET_TOKENS and not tokens & PUBLIC_TOKENS:
                yield sub, identifier
        stack.extend(ast.iter_child_nodes(sub))


class SecretLeakRule(Rule):
    id = "RP103"
    name = "secret-leak"
    rationale = (
        "secrets rendered into f-strings, repr, print, logging or "
        "exceptions escape into logs and tracebacks"
    )
    hint = (
        "log a length, hash or placeholder instead; never interpolate "
        "the secret value itself"
    )
    scopes = None  # everywhere

    def check(self, context):
        for node in ast.walk(context.tree):
            if isinstance(node, ast.JoinedStr):
                for part in node.values:
                    if isinstance(part, ast.FormattedValue):
                        for sub, identifier in _secret_uses(part.value):
                            yield self.finding(
                                context,
                                sub,
                                f"secret-named `{identifier}` formatted into an f-string",
                            )
            elif isinstance(node, ast.Call):
                yield from self._check_call(context, node)
            elif isinstance(node, ast.Raise) and node.exc is not None:
                # f-strings inside the raise are caught by the JoinedStr
                # branch; this catches secrets passed as plain args.
                exc = node.exc
                args = exc.args if isinstance(exc, ast.Call) else [exc]
                for arg in args:
                    if isinstance(arg, (ast.Name, ast.Attribute)):
                        for sub, identifier in _secret_uses(arg):
                            yield self.finding(
                                context,
                                sub,
                                f"secret-named `{identifier}` passed to a raised exception",
                            )

    def _check_call(self, context, node: ast.Call):
        func = node.func
        sink = None
        if isinstance(func, ast.Name) and func.id in ("repr", "print"):
            sink = func.id
        elif isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
            receiver = terminal_name(func.value)
            if receiver and name_tokens(receiver) & {"logging", "logger", "log"}:
                sink = f"{receiver}.{func.attr}"
        elif isinstance(func, ast.Attribute) and func.attr == "format":
            sink = "str.format"
        if sink is None:
            return
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            for sub, identifier in _secret_uses(arg):
                yield self.finding(
                    context,
                    sub,
                    f"secret-named `{identifier}` passed to {sink}()",
                )
