"""The lint engine: file discovery, parsing, rule dispatch, waivers.

Waivers are inline comments of the form::

    risky_call()  # lint: allow[rule-name] why this is sound here

naming the rule by id (``RP104``) or name (``point-validation``),
optionally several separated by commas.  A waiver applies to its own
line or, when placed alone on a line, to the line directly below (for
statements that do not fit on one line).  Waivers are expected to carry
a justification; the gate counts them so reviews can watch the trend.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import Finding, attach_fingerprints
from repro.lint.rules import ALL_RULES, ModuleContext, Rule

_WAIVER = re.compile(r"#\s*lint:\s*allow\[([^\]]+)\]")


@dataclass
class LintReport:
    """Outcome of a lint run, split for gating."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    waived: int = 0
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale_baseline


def package_relative(path: str) -> str:
    """Path relative to the ``repro`` package, "" when not inside it.

    ``src/repro/core/tre.py`` -> ``core/tre.py``; used for rule scoping
    so results do not depend on where the tree is checked out.
    """
    parts = Path(path).as_posix().split("/")
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index + 1 :])
    return ""


def _waived_rules(lines: list[str], line: int) -> set[str]:
    """Rule ids/names waived for 1-based source line ``line``.

    A waiver counts when it sits on the offending line itself or in the
    contiguous block of comment-only lines directly above it (waiver
    comments may wrap across several lines).
    """
    waived: set[str] = set()

    def collect(text: str) -> None:
        match = _WAIVER.search(text)
        if match:
            waived.update(part.strip() for part in match.group(1).split(","))

    if 0 < line <= len(lines):
        collect(lines[line - 1])
    candidate = line - 1
    while 0 < candidate <= len(lines):
        text = lines[candidate - 1]
        if not text.strip() or not text.lstrip().startswith("#"):
            break
        collect(text)
        candidate -= 1
    return waived


def lint_source(
    source: str,
    path: str,
    rules: tuple[Rule, ...] = ALL_RULES,
    package_path: str | None = None,
) -> tuple[list[Finding], int]:
    """Lint one module's text; returns (findings, waived_count).

    ``path`` is what findings report; ``package_path`` overrides scope
    resolution (used by fixture tests to pretend a snippet lives in,
    say, ``core/``).
    """
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    if package_path is None:
        package_path = package_relative(path)
    findings: list[Finding] = []
    waived = 0
    for rule in rules:
        context = ModuleContext(
            path=path,
            package_path=package_path,
            tree=tree,
            lines=lines,
        )
        if not rule.applies_to(context):
            continue
        for finding in rule.check(context):
            allowed = _waived_rules(lines, finding.line)
            if finding.rule in allowed or finding.name in allowed:
                waived += 1
            else:
                findings.append(finding)
    # Fingerprint against the package-relative path so baselines survive
    # both checkout moves and linting from a different working directory.
    return attach_fingerprints(findings, lines, package_path or path), waived


def iter_python_files(paths: list[str | Path]):
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: list[str | Path], rules: tuple[Rule, ...] = ALL_RULES
) -> tuple[list[Finding], int, int]:
    """Lint files/trees; returns (findings, waived_count, files_checked)."""
    findings: list[Finding] = []
    waived = 0
    checked = 0
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        file_findings, file_waived = lint_source(source, file_path.as_posix())
        findings.extend(file_findings)
        waived += file_waived
        checked += 1
    return findings, waived, checked


def split_by_baseline(
    findings: list[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Partition findings against a baseline.

    Returns (new, baselined, stale_entries) where stale entries are
    baseline fingerprints that matched nothing — evidence the finding
    was fixed and the baseline needs regenerating.
    """
    new: list[Finding] = []
    matched: list[Finding] = []
    remaining = set(baseline)
    for finding in findings:
        if finding.fingerprint in remaining:
            remaining.discard(finding.fingerprint)
            matched.append(finding)
        else:
            new.append(finding)
    return new, matched, sorted(remaining)


def run(paths: list[str | Path], baseline: set[str] | None = None) -> LintReport:
    """Full pipeline used by the CLI and the pytest gate."""
    findings, waived, checked = lint_paths(paths)
    new, matched, stale = split_by_baseline(findings, baseline or set())
    return LintReport(
        new=new,
        baselined=matched,
        stale_baseline=stale,
        waived=waived,
        files_checked=checked,
    )
