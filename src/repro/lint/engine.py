"""The lint engine: file discovery, parsing, rule dispatch, waivers.

Since the interprocedural flow pass (``repro.lint.flow``) landed, a
lint run is two-phase: every requested file is parsed up front, the
single-node RP1xx rules run per module, then the whole-program taint
analysis runs once over all parsed modules and its RP2xx findings are
merged back onto the module they report against.  Waivers, baselining
and fingerprints apply uniformly to both families.

Waivers are inline comments of the form::

    risky_call()  # lint: allow[rule-name] why this is sound here

naming the rule by id (``RP104``) or name (``point-validation``),
optionally several separated by commas.  A waiver applies to its own
line or, when placed alone on a line, to the line directly below (for
statements that do not fit on one line).  Waivers are expected to carry
a justification; the gate counts them so reviews can watch the trend,
and a waiver that suppresses nothing is itself reported (a hard error
under ``--check-baseline``) so stale suppressions cannot linger.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.conc import analyze_concurrency
from repro.lint.findings import Finding, attach_fingerprints
from repro.lint.flow import analyze_program, solve_program
from repro.lint.proto import analyze_protocols
from repro.lint.rules import ALL_RULES, ModuleContext, Rule

_WAIVER = re.compile(r"#\s*lint:\s*allow\[([^\]]+)\]")

# A flow finding duplicating a single-node finding of the paired legacy
# rule on the same line is dropped — one leak, one report.
_FLOW_SHADOWS = {"RP201": "RP103", "RP202": "RP102"}


@dataclass
class ParsedModule:
    """One file, parsed once and shared by both analysis phases."""

    path: str
    package_path: str
    tree: ast.Module
    lines: list[str]


@dataclass
class LintReport:
    """Outcome of a lint run, split for gating."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    unused_waivers: list[str] = field(default_factory=list)
    waived: int = 0
    files_checked: int = 0
    elapsed: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale_baseline


def package_relative(path: str) -> str:
    """Path relative to the ``repro`` package, "" when not inside it.

    ``src/repro/core/tre.py`` -> ``core/tre.py``; used for rule scoping
    so results do not depend on where the tree is checked out.
    """
    parts = Path(path).as_posix().split("/")
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index + 1 :])
    return ""


def _waiver_providers(lines: list[str], line: int) -> dict[str, int]:
    """token -> comment line that waives it, for 1-based source ``line``.

    A waiver counts when it sits on the offending line itself or in the
    contiguous block of comment-only lines directly above it (waiver
    comments may wrap across several lines).
    """
    providers: dict[str, int] = {}

    def collect(number: int) -> None:
        match = _WAIVER.search(lines[number - 1])
        if match:
            for part in match.group(1).split(","):
                providers.setdefault(part.strip(), number)

    if 0 < line <= len(lines):
        collect(line)
    candidate = line - 1
    while 0 < candidate <= len(lines):
        text = lines[candidate - 1]
        if not text.strip() or not text.lstrip().startswith("#"):
            break
        collect(candidate)
        candidate -= 1
    return providers


def _all_waiver_tokens(lines: list[str]) -> list[tuple[int, str]]:
    """Every (comment_line, token) waiver declaration in a module.

    Only tokens naming a *known* rule are tracked for unused-waiver
    reporting: the waiver syntax appears in docstrings and docs with
    placeholder tokens (``allow[rule-name]``), and a placeholder is not
    a stale suppression.
    """
    from repro.lint.rules import ALL_RULES
    from repro.lint.flow import FLOW_RULES
    from repro.lint.conc import CONC_RULES
    from repro.lint.proto import PROTO_RULES

    families = (*ALL_RULES, *FLOW_RULES, *CONC_RULES, *PROTO_RULES)
    known = {rule.id for rule in families} | {rule.name for rule in families}
    out: list[tuple[int, str]] = []
    for number, text in enumerate(lines, start=1):
        match = _WAIVER.search(text)
        if match:
            out.extend(
                (number, token)
                for token in (part.strip() for part in match.group(1).split(","))
                if token in known
            )
    return out


def parse_module(source: str, path: str, package_path: str | None = None) -> ParsedModule:
    if package_path is None:
        package_path = package_relative(path)
    return ParsedModule(
        path=path,
        package_path=package_path,
        tree=ast.parse(source, filename=path),
        lines=source.splitlines(),
    )


def _module_rule_findings(
    module: ParsedModule, rules: tuple[Rule, ...]
) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules:
        context = ModuleContext(
            path=module.path,
            package_path=module.package_path,
            tree=module.tree,
            lines=module.lines,
        )
        if not rule.applies_to(context):
            continue
        findings.extend(rule.check(context))
    return findings


def _drop_shadowed(findings: list[Finding]) -> list[Finding]:
    legacy_lines = {
        (finding.rule, finding.line) for finding in findings if finding.rule < "RP2"
    }
    return [
        finding
        for finding in findings
        if finding.rule not in _FLOW_SHADOWS
        or (_FLOW_SHADOWS[finding.rule], finding.line) not in legacy_lines
    ]


def analyze_modules(
    modules: list[ParsedModule],
    rules: tuple[Rule, ...] = ALL_RULES,
    flow: bool = True,
) -> tuple[list[Finding], int, list[str]]:
    """Both analysis phases plus waiver/fingerprint bookkeeping.

    Returns ``(findings, waived_count, unused_waiver_messages)``.
    """
    by_path: dict[str, list[Finding]] = {module.path: [] for module in modules}
    for module in modules:
        by_path[module.path].extend(_module_rule_findings(module, rules))
    if flow:
        parsed = [(m.path, m.package_path, m.tree, m.lines) for m in modules]
        # One index + one summary fixpoint feeds all whole-program
        # passes: the taint report (RP2xx), the fork-safety /
        # concurrency report (RP3xx), and the typestate protocol
        # report (RP4xx).
        program = solve_program(parsed)
        whole_program = analyze_program(parsed, program)
        whole_program += analyze_concurrency(parsed, program)
        whole_program += analyze_protocols(parsed, program)
        for finding in whole_program:
            by_path.setdefault(finding.path, []).append(finding)

    findings: list[Finding] = []
    waived = 0
    unused: list[str] = []
    module_by_path = {module.path: module for module in modules}
    for path, raw in by_path.items():
        module = module_by_path[path]
        kept: list[Finding] = []
        used: set[tuple[int, str]] = set()
        for finding in _drop_shadowed(raw):
            providers = _waiver_providers(module.lines, finding.line)
            provider_line = providers.get(finding.rule, providers.get(finding.name))
            if provider_line is not None:
                waived += 1
                token = finding.rule if finding.rule in providers else finding.name
                used.add((provider_line, token))
            else:
                kept.append(finding)
        for number, token in _all_waiver_tokens(module.lines):
            if (number, token) not in used:
                unused.append(
                    f"{path}:{number}: unused waiver `# lint: allow[{token}]` "
                    "(suppresses nothing — remove it or fix the tag)"
                )
        # Fingerprint against the package-relative path so baselines
        # survive checkout moves and out-of-tree working directories.
        findings.extend(
            attach_fingerprints(kept, module.lines, module.package_path or path)
        )
    # Deterministic report order regardless of discovery or analysis
    # phase ordering: two runs over the same tree must be byte-identical.
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return findings, waived, sorted(unused)


def lint_source(
    source: str,
    path: str,
    rules: tuple[Rule, ...] = ALL_RULES,
    package_path: str | None = None,
    flow: bool = True,
) -> tuple[list[Finding], int]:
    """Lint one module's text; returns (findings, waived_count).

    ``path`` is what findings report; ``package_path`` overrides scope
    resolution (used by fixture tests to pretend a snippet lives in,
    say, ``core/``).  The flow analysis sees just this one module, so
    intra-module interprocedural flows are still found.
    """
    module = parse_module(source, path, package_path)
    findings, waived, _ = analyze_modules([module], rules, flow=flow)
    return findings, waived


def iter_python_files(paths: list[str | Path]):
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _parse_one(posix_path: str) -> ParsedModule:
    """Top-level (picklable) parse worker for the ``jobs`` pool."""
    return parse_module(
        Path(posix_path).read_text(encoding="utf-8"), posix_path
    )


def parse_paths(paths: list[str | Path], jobs: int = 1) -> list[ParsedModule]:
    """Discover and parse every requested file.

    ``jobs > 1`` parses in a process pool: parsing dominates a lint
    run's startup on wide trees, trees are embarrassingly parallel, and
    ``executor.map`` preserves submission order, so the module list —
    and therefore every downstream report — is byte-identical to the
    sequential one.  Any pool failure (sandboxed CI without semaphores,
    interpreter shutdown races) falls back to sequential parsing rather
    than failing the gate.
    """
    files = [file_path.as_posix() for file_path in iter_python_files(paths)]
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(files))
            ) as executor:
                return list(executor.map(_parse_one, files, chunksize=8))
        except OSError:
            pass
    return [_parse_one(file_path) for file_path in files]


def lint_paths(
    paths: list[str | Path],
    rules: tuple[Rule, ...] = ALL_RULES,
    jobs: int = 1,
) -> tuple[list[Finding], int, int]:
    """Lint files/trees; returns (findings, waived_count, files_checked)."""
    modules = parse_paths(paths, jobs=jobs)
    findings, waived, _ = analyze_modules(modules, rules)
    return findings, waived, len(modules)


def split_by_baseline(
    findings: list[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Partition findings against a baseline.

    Returns (new, baselined, stale_entries) where stale entries are
    baseline fingerprints that matched nothing — evidence the finding
    was fixed and the baseline needs regenerating.
    """
    new: list[Finding] = []
    matched: list[Finding] = []
    remaining = set(baseline)
    for finding in findings:
        if finding.fingerprint in remaining:
            remaining.discard(finding.fingerprint)
            matched.append(finding)
        else:
            new.append(finding)
    return new, matched, sorted(remaining)


def run(
    paths: list[str | Path],
    baseline: set[str] | None = None,
    select: tuple[str, ...] | None = None,
    jobs: int = 1,
) -> LintReport:
    """Full pipeline used by the CLI and the pytest gate.

    ``select`` restricts the report to rule ids matching any of the
    given prefixes (``("RP3",)`` keeps just the concurrency family);
    the baseline is filtered the same way so entries for unselected
    rules are neither matched nor reported stale.  Waiver bookkeeping
    is not filtered — an unused waiver is stale regardless of scope.
    """
    import time

    started = time.perf_counter()
    modules = parse_paths(paths, jobs=jobs)
    findings, waived, unused = analyze_modules(modules)
    baseline = set(baseline or set())
    if select:
        findings = [
            f for f in findings if any(f.rule.startswith(p) for p in select)
        ]
        baseline = {
            fp
            for fp in baseline
            if any(fp.split("|", 1)[0].startswith(p) for p in select)
        }
    new, matched, stale = split_by_baseline(findings, baseline)
    return LintReport(
        new=new,
        baselined=matched,
        stale_baseline=stale,
        unused_waivers=unused,
        waived=waived,
        files_checked=len(modules),
        elapsed=time.perf_counter() - started,
    )
