"""Reusable resilience primitives: deadlines, backoff, circuit breaking.

Everything here is *pure policy*: no wall clock, no sleeping, no I/O.
Time comes from an injected ``clock()`` callable (the asyncio loop's
``time`` in production, a :class:`~repro.service.virtualtime
.VirtualTimeLoop` in tests) and jitter from an injected
``random.Random``, so retry schedules are deterministic given a seed.
The client composes these with its own sleeper; nothing in this module
ever blocks.

The taxonomy contract: policies decide *whether* to retry from the
exception type alone — :class:`~repro.errors.TransientServiceError`
retries, anything else propagates (see :func:`is_retryable`).
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

from repro.errors import (
    CircuitOpenError,
    ParameterError,
    ServiceTimeoutError,
    TransientServiceError,
)

Clock = Callable[[], float]


def is_retryable(exc: BaseException) -> bool:
    """Retry exactly the transient family — never string-match messages."""
    return isinstance(exc, TransientServiceError)


class Deadline:
    """An absolute point on an injected clock, shared across attempts.

    A retry loop carries one deadline through every attempt and
    failover so the *total* time is bounded no matter how the
    per-attempt timeouts fall.  ``None``-like unbounded behaviour is
    spelled ``Deadline.never(clock)``.
    """

    def __init__(self, clock: Clock, at: float):
        self._clock = clock
        self.at = at

    @classmethod
    def after(cls, clock: Clock, seconds: float) -> "Deadline":
        if seconds < 0:
            raise ParameterError("deadline must be in the future")
        return cls(clock, clock() + seconds)

    @classmethod
    def never(cls, clock: Clock) -> "Deadline":
        return cls(clock, float("inf"))

    def remaining(self) -> float:
        return max(0.0, self.at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self.at

    def require(self, doing: str = "request") -> None:
        if self.expired:
            raise ServiceTimeoutError(f"deadline expired while {doing}")

    def clamp(self, timeout: float) -> float:
        """``timeout`` shortened so the attempt cannot outlive the deadline."""
        return min(timeout, self.remaining())


class ExponentialBackoff:
    """Exponential backoff with *full jitter* from an injected RNG.

    Attempt ``n`` (0-based) sleeps ``rng.uniform(0, min(cap, base *
    factor**n))`` — the full-jitter variant, which decorrelates a
    thundering herd of recovering clients better than equal jitter.
    With a seeded RNG the schedule is exactly reproducible; no call
    reads the wall clock.
    """

    def __init__(
        self,
        rng: random.Random,
        base: float = 0.1,
        factor: float = 2.0,
        max_delay: float = 30.0,
    ):
        if base <= 0 or factor < 1 or max_delay < base:
            raise ParameterError(
                "need base > 0, factor >= 1 and max_delay >= base"
            )
        self._rng = rng
        self.base = base
        self.factor = factor
        self.max_delay = max_delay

    def ceiling(self, attempt: int) -> float:
        """The jitter-free cap for ``attempt`` (useful in tests/docs)."""
        if attempt < 0:
            raise ParameterError("attempts count from 0")
        return min(self.max_delay, self.base * self.factor**attempt)

    def delay(self, attempt: int) -> float:
        return self._rng.uniform(0.0, self.ceiling(attempt))

    def delays(self, attempts: int) -> Iterator[float]:
        for attempt in range(attempts):
            yield self.delay(attempt)


# Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """A per-source circuit breaker with half-open probing.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip the breaker.
    * **open** — :meth:`check` raises :class:`~repro.errors
      .CircuitOpenError` without touching the source, until
      ``reset_timeout`` has elapsed on the injected clock.
    * **half-open** — up to ``half_open_probes`` trial requests are let
      through; a success closes the breaker, a failure re-opens it and
      restarts the timeout.

    The breaker never sleeps or schedules anything: state transitions
    happen lazily inside :meth:`check`/:meth:`record_failure`, driven
    entirely by ``clock()``.
    """

    def __init__(
        self,
        clock: Clock,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        half_open_probes: int = 1,
    ):
        if failure_threshold < 1 or half_open_probes < 1 or reset_timeout <= 0:
            raise ParameterError(
                "need failure_threshold >= 1, half_open_probes >= 1 and "
                "reset_timeout > 0"
            )
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.trips = 0  # diagnostics: how often the breaker opened

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
            self._probes_in_flight = 0

    def allows(self) -> bool:
        """Non-raising :meth:`check` (does not reserve a probe slot)."""
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN:
            return self._probes_in_flight < self.half_open_probes
        return False

    def check(self) -> None:
        """Gate one request; raises :class:`CircuitOpenError` when open.

        In the half-open state the call *reserves* a probe slot, so at
        most ``half_open_probes`` concurrent trials reach the source.
        """
        self._maybe_half_open()
        if self._state == CLOSED:
            return
        if self._state == HALF_OPEN:
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return
            raise CircuitOpenError(
                "circuit half-open and all probe slots taken"
            )
        raise CircuitOpenError(
            f"circuit open for another "
            f"{self.reset_timeout - (self._clock() - self._opened_at):.3f}s"
        )

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self._state = CLOSED

    def record_failure(self) -> None:
        self._maybe_half_open()
        if self._state == HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self.trips += 1
