"""A deterministic virtual-time asyncio event loop.

The service layer is asyncio all the way down, but its tests (and the
chaos property suite) must be byte-reproducible from a seed — which
rules out the wall clock.  :class:`VirtualTimeLoop` is a standard
:class:`asyncio.SelectorEventLoop` whose clock is a plain float:

* ``loop.time()`` returns virtual seconds, starting at 0.0;
* whenever the loop would *block* waiting for the next timer, it
  instead advances the virtual clock to that timer's deadline and runs
  it immediately — a simulated hour of backoff costs microseconds of
  real time;
* callback ordering is exactly asyncio's own (the timer heap plus FIFO
  ready queue), so a run is fully deterministic given seeded RNGs.

The loop supports in-process transports only (queues, futures, tasks —
everything :mod:`repro.service` uses).  Real sockets would need real
waiting, which is exactly what this loop refuses to do; a coroutine
that blocks with *nothing* scheduled is a deadlock and raises
:class:`~repro.errors.SimulationError` instead of hanging the test
suite.

Usage::

    from repro.service.virtualtime import run_virtual

    async def scenario():
        ...
        await asyncio.sleep(3600)   # returns instantly, clock += 3600

    run_virtual(scenario())
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Any, Coroutine

from repro.errors import SimulationError


class _InstantSelector:
    """Delegates registration to a real selector but never waits.

    ``select(timeout)`` advances the owning loop's virtual clock by
    ``timeout`` instead of sleeping and always reports "no I/O ready" —
    correct for in-process transports, which wake the loop through the
    ready queue, never through file descriptors.
    """

    def __init__(self) -> None:
        self._real = selectors.SelectSelector()
        self.loop: "VirtualTimeLoop | None" = None

    def register(self, fileobj, events, data=None):
        return self._real.register(fileobj, events, data)

    def unregister(self, fileobj):
        return self._real.unregister(fileobj)

    def modify(self, fileobj, events, data=None):
        return self._real.modify(fileobj, events, data)

    def get_map(self):
        return self._real.get_map()

    def get_key(self, fileobj):
        return self._real.get_key(fileobj)

    def close(self) -> None:
        self._real.close()

    def select(self, timeout: float | None = None):
        if timeout is None:
            # Nothing ready, no timers: every task is waiting on a
            # future no event can ever resolve.
            raise SimulationError(
                "virtual-time deadlock: all tasks are blocked and no "
                "timer is scheduled"
            )
        if timeout > 0 and self.loop is not None:
            self.loop.advance(timeout)
        return []


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """An asyncio event loop running on simulated time (see module doc)."""

    def __init__(self) -> None:
        selector = _InstantSelector()
        super().__init__(selector)
        selector.loop = self
        self._virtual_now = 0.0

    def time(self) -> float:
        return self._virtual_now

    def advance(self, seconds: float) -> None:
        """Jump the virtual clock forward (the selector's idle path)."""
        if seconds < 0:
            raise SimulationError(f"cannot advance time by {seconds}")
        self._virtual_now += seconds


def run_virtual(coro: Coroutine[Any, Any, Any]) -> Any:
    """Run ``coro`` to completion on a fresh :class:`VirtualTimeLoop`.

    Background tasks still pending when the scenario finishes (epoch
    schedulers, announce pumps, chaos drivers) are cancelled and
    awaited so the loop closes silently.
    """
    loop = VirtualTimeLoop()
    try:
        return loop.run_until_complete(coro)
    finally:
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        loop.close()
