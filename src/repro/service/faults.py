"""Deterministic, seed-driven fault injection for the service layer.

Three composable injectors, all drawing every decision from one seeded
``random.Random`` so a whole chaos scenario replays byte-for-byte:

* :class:`FaultyTransport` wraps any request/response transport and
  perturbs individual exchanges — dropped requests (a long stall the
  client's per-request timeout converts into a retry), extra delay,
  duplicate delivery (the idempotent node sees the request twice), and
  bit-flipped *response* bytes.  Corrupted requests are modeled as
  drops: on a real network a frame that fails its checksum never
  reaches the peer, and modeling it as delivered would punish the
  client with a ``bad-request`` error for bytes it never sent.
* :class:`FaultyChannel` perturbs a push stream (the node's announce
  queue): drop, delay, duplicate, one-deep reorder, and corruption —
  corrupt announces must be *discarded by verification*, never
  accepted, which is exactly what the chaos property asserts.
* :class:`NodeChaos` drives crash/restart cycles (optionally losing
  the archive snapshot) and re-draws the node's clock skew each
  restart.

:class:`FaultPlan` owns the probabilities and the RNG; transports and
channels share one plan when their faults should come from one seeded
stream.  Latency modeling stays in :mod:`repro.sim.network` — wrap a
:class:`~repro.service.node.LocalNodeTransport` carrying a latency
model inside a :class:`FaultyTransport` to get both.
"""

from __future__ import annotations

import asyncio
import random

from repro.errors import ParameterError, ServiceTimeoutError
from repro.service.node import TimeServerNode


class FaultPlan:
    """Probabilities plus the seeded RNG that rolls them.

    Rates are independent per-event probabilities in ``[0, 1]``.
    ``stall`` is how long a "dropped" packet hangs before the injector
    gives up on its own (the client's timeout almost always fires
    first); ``delay_scale`` bounds injected extra latency.
    """

    RATE_FIELDS = ("drop", "delay", "duplicate", "reorder", "corrupt")

    def __init__(
        self,
        rng: random.Random,
        drop: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        delay_scale: float = 0.25,
        stall: float = 3600.0,
    ):
        for name, rate in zip(
            self.RATE_FIELDS, (drop, delay, duplicate, reorder, corrupt)
        ):
            if not 0.0 <= rate <= 1.0:
                raise ParameterError(f"{name} rate must be in [0, 1]")
        if delay_scale < 0 or stall <= 0:
            raise ParameterError("need delay_scale >= 0 and stall > 0")
        self.rng = rng
        self.drop = drop
        self.delay = delay
        self.duplicate = duplicate
        self.reorder = reorder
        self.corrupt = corrupt
        self.delay_scale = delay_scale
        self.stall = stall

    @classmethod
    def from_seed(cls, seed: int, **rates) -> "FaultPlan":
        """One seeded plan; same seed + rates → same fault schedule."""
        from repro.crypto.rng import seeded_rng

        # lint: allow[rng-discipline] fault injection must replay
        # byte-for-byte from its seed; this RNG never touches key or
        # nonce material, only fault-schedule coin flips.
        return cls(seeded_rng(seed), **rates)

    def coin(self, rate: float) -> bool:
        return self.rng.random() < rate

    def delay_amount(self) -> float:
        return self.rng.uniform(0.0, self.delay_scale)

    def corrupt_bytes(self, data: bytes) -> bytes:
        """Flip one bit — the smallest corruption verification must catch."""
        if not data:
            return data
        index = self.rng.randrange(len(data))
        bit = 1 << self.rng.randrange(8)
        return data[:index] + bytes([data[index] ^ bit]) + data[index + 1 :]


class FaultyTransport:
    """A request/response transport with a :class:`FaultPlan` in the path."""

    def __init__(self, inner, plan: FaultPlan, name: str | None = None):
        self.inner = inner
        self.plan = plan
        self.name = name or f"faulty:{getattr(inner, 'name', 'transport')}"
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self.corrupted = 0

    async def request(self, payload: bytes) -> bytes:
        plan = self.plan
        if plan.coin(plan.drop):
            self.dropped += 1
            await asyncio.sleep(plan.stall)
            raise ServiceTimeoutError(f"{self.name}: request lost in transit")
        if plan.coin(plan.delay):
            self.delayed += 1
            await asyncio.sleep(plan.delay_amount())
        if plan.coin(plan.duplicate):
            # Duplicate *delivery*: the node answers twice, the network
            # hands the client one copy.  Exercises handler idempotency.
            self.duplicated += 1
            await self.inner.request(payload)
        response = await self.inner.request(payload)
        if plan.coin(plan.corrupt):
            self.corrupted += 1
            response = plan.corrupt_bytes(response)
        return response

    def subscribe(self) -> asyncio.Queue:
        return self.inner.subscribe()


class FaultyChannel:
    """A push stream (announce queue) with faults injected in transit.

    Pull frames from ``upstream``, perturb them, and deliver into
    :attr:`queue`; run :meth:`pump` as a background task.  Reordering is
    one-deep: a held-back frame is released right after its successor —
    enough to violate FIFO without unbounded buffering.
    """

    def __init__(self, upstream: asyncio.Queue, plan: FaultPlan):
        self.upstream = upstream
        self.plan = plan
        self.queue: asyncio.Queue = asyncio.Queue()
        self._held: bytes | None = None
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self.reordered = 0
        self.corrupted = 0

    async def pump(self) -> None:
        while True:
            await self.deliver(await self.upstream.get())

    async def deliver(self, frame: bytes) -> None:
        """Apply the plan to one frame (public for step-by-step tests)."""
        plan = self.plan
        if plan.coin(plan.drop):
            self.dropped += 1
            self._flush_held()
            return
        if plan.coin(plan.corrupt):
            self.corrupted += 1
            frame = plan.corrupt_bytes(frame)
        if plan.coin(plan.delay):
            self.delayed += 1
            await asyncio.sleep(plan.delay_amount())
        if self._held is None and plan.coin(plan.reorder):
            self.reordered += 1
            self._held = frame
            return
        self.queue.put_nowait(frame)
        if plan.coin(plan.duplicate):
            self.duplicated += 1
            self.queue.put_nowait(frame)
        self._flush_held()

    def _flush_held(self) -> None:
        if self._held is not None:
            self.queue.put_nowait(self._held)
            self._held = None


class NodeChaos:
    """Seeded crash/restart (and clock-skew) schedule for one node.

    Each cycle: let the node run for a drawn uptime, snapshot (unless
    ``lose_snapshot``), crash, wait out a drawn outage, re-draw the
    clock skew, restart from the snapshot.  The epoch scheduler then
    republishes everything the outage missed, so chaos tests can assert
    the archive ends up gap-free either way.
    """

    def __init__(
        self,
        node: TimeServerNode,
        rng: random.Random,
        uptime: tuple[float, float] = (5.0, 15.0),
        outage: tuple[float, float] = (0.5, 3.0),
        lose_snapshot: bool = False,
        skew_range: tuple[float, float] = (0.0, 0.0),
    ):
        self.node = node
        self.rng = rng
        self.uptime = uptime
        self.outage = outage
        self.lose_snapshot = lose_snapshot
        self.skew_range = skew_range
        self.cycles = 0

    async def run(self, cycles: int) -> None:
        for _ in range(cycles):
            await asyncio.sleep(self.rng.uniform(*self.uptime))
            snapshot = None if self.lose_snapshot else self.node.snapshot()
            self.node.crash()
            await asyncio.sleep(self.rng.uniform(*self.outage))
            self.node.clock_skew = self.rng.uniform(*self.skew_range)
            await self.node.restart(snapshot)
            self.cycles += 1
