"""The fault-tolerant time-server service layer.

The paper's server is *completely passive* — it broadcasts
``I_T = s·H1(T)`` on schedule and keeps a public archive — so all
real-world robustness lives around that passive core:

* :mod:`repro.service.node` — :class:`TimeServerNode`, a supervised
  asyncio node wrapping :class:`~repro.core.timeserver.PassiveTimeServer`
  with an epoch scheduler, an archive/catch-up request handler,
  health/readiness probes and crash/restart recovery from serialized
  archive state.
* :mod:`repro.service.retry` — reusable resilience primitives:
  :class:`Deadline`, :class:`ExponentialBackoff` (full jitter from an
  injected RNG) and :class:`CircuitBreaker` with half-open probing.
* :mod:`repro.service.client` — :class:`ResilientTimeClient`:
  per-request timeouts, retry/backoff, multi-source failover across a
  primary and mirrors, authenticated archive catch-up, and a decrypt
  queue that parks ciphertexts until the verified update arrives.
* :mod:`repro.service.faults` — a deterministic, seed-driven
  fault-injection proxy (drop, delay, duplicate, reorder, corruption,
  crash/restart, clock skew) composable with the
  :mod:`repro.sim.network` latency models.
* :mod:`repro.service.wire` — the length-framed message protocol the
  node and client speak.
* :mod:`repro.service.virtualtime` — a deterministic virtual-time
  asyncio event loop so none of the above ever touches the wall clock
  in tests.

Every component takes its clock, sleeper and RNG by injection; under
:class:`~repro.service.virtualtime.VirtualTimeLoop` a whole
node-plus-faulty-network scenario is byte-reproducible from its seed.
"""

from repro.service.client import ResilientTimeClient
from repro.service.faults import (
    FaultPlan,
    FaultyChannel,
    FaultyTransport,
    NodeChaos,
)
from repro.service.node import LocalNodeTransport, TimeServerNode
from repro.service.retry import CircuitBreaker, Deadline, ExponentialBackoff
from repro.service.virtualtime import VirtualTimeLoop, run_virtual

__all__ = [
    "TimeServerNode",
    "LocalNodeTransport",
    "ResilientTimeClient",
    "Deadline",
    "ExponentialBackoff",
    "CircuitBreaker",
    "FaultPlan",
    "FaultyTransport",
    "FaultyChannel",
    "NodeChaos",
    "VirtualTimeLoop",
    "run_virtual",
]
