"""The service wire protocol: length-framed request/response messages.

Everything the node and client exchange is one :func:`~repro.encoding
.pack_chunks` frame whose first chunk is a one-byte message type.  The
payloads reuse the library's own wire encodings (update bytes travel
exactly as ``TimeBoundKeyUpdate.to_bytes`` produced them), so the
client's authenticity check operates on the same bytes the archive
stores.

Malformed input **never** crashes a peer: every structural violation —
unknown type byte, wrong chunk count, bad framing — raises
:class:`~repro.errors.DecodingError` from :func:`decode_message`, which
the client treats as a transient transport failure (corrupt bytes on
the wire) and the node answers with an ``error`` response.

Message catalogue:

=============  ==========================  ==============================
Type           Fields                      Meaning
=============  ==========================  ==============================
get_update     label                       fetch ``I_T`` for one label
get_archive    after                       catch-up: all updates with
                                           label > ``after``
health         —                           liveness/readiness probe
update         update_bytes                one ``I_T``
archive        update_bytes...             the requested backlog
health_ok      key=value pairs             probe answer
error          code, detail                failure; ``code`` selects the
                                           transient/permanent class
announce       update_bytes                push broadcast of a fresh
                                           ``I_T``
=============  ==========================  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding import pack_chunks, unpack_chunks
from repro.errors import (
    DecodingError,
    PermanentServiceError,
    ServiceUnavailableError,
)

# Type bytes.  Requests are < 0x40, pushes 0x40-0x7f, responses >= 0x80.
GET_UPDATE = 0x01
GET_ARCHIVE = 0x02
HEALTH = 0x03
ANNOUNCE = 0x41
UPDATE = 0x81
ARCHIVE = 0x82
HEALTH_OK = 0x83
ERROR = 0xFF

# Error codes carried by `error` responses.  The code — not the detail
# string — decides which exception class the client raises.
ERR_UNAVAILABLE = b"unavailable"  # not published yet / node restarting
ERR_BAD_REQUEST = b"bad-request"  # malformed or unknown request

_ERROR_CLASSES = {
    ERR_UNAVAILABLE: ServiceUnavailableError,
    ERR_BAD_REQUEST: PermanentServiceError,
}


@dataclass(frozen=True)
class GetUpdate:
    label: bytes


@dataclass(frozen=True)
class GetArchive:
    after: bytes = b""


@dataclass(frozen=True)
class Health:
    pass


@dataclass(frozen=True)
class Announce:
    update_bytes: bytes


@dataclass(frozen=True)
class UpdateResponse:
    update_bytes: bytes


@dataclass(frozen=True)
class ArchiveResponse:
    update_blobs: tuple[bytes, ...]


@dataclass(frozen=True)
class HealthResponse:
    fields: tuple[tuple[bytes, bytes], ...]

    def as_dict(self) -> dict[bytes, bytes]:
        return dict(self.fields)


@dataclass(frozen=True)
class ErrorResponse:
    code: bytes
    detail: bytes

    def to_exception(self) -> Exception:
        """The typed exception this error response stands for.

        Unknown codes degrade to the *transient* class: a peer speaking
        a newer protocol revision should be retried, not abandoned.
        """
        cls = _ERROR_CLASSES.get(self.code, ServiceUnavailableError)
        return cls(self.detail.decode("utf-8", "replace"))


Message = (
    GetUpdate
    | GetArchive
    | Health
    | Announce
    | UpdateResponse
    | ArchiveResponse
    | HealthResponse
    | ErrorResponse
)


def encode_message(message: Message) -> bytes:
    if isinstance(message, GetUpdate):
        return pack_chunks(bytes([GET_UPDATE]), message.label)
    if isinstance(message, GetArchive):
        return pack_chunks(bytes([GET_ARCHIVE]), message.after)
    if isinstance(message, Health):
        return pack_chunks(bytes([HEALTH]))
    if isinstance(message, Announce):
        return pack_chunks(bytes([ANNOUNCE]), message.update_bytes)
    if isinstance(message, UpdateResponse):
        return pack_chunks(bytes([UPDATE]), message.update_bytes)
    if isinstance(message, ArchiveResponse):
        return pack_chunks(bytes([ARCHIVE]), *message.update_blobs)
    if isinstance(message, HealthResponse):
        flat: list[bytes] = []
        for key, value in message.fields:
            flat.append(key)
            flat.append(value)
        return pack_chunks(bytes([HEALTH_OK]), *flat)
    if isinstance(message, ErrorResponse):
        return pack_chunks(bytes([ERROR]), message.code, message.detail)
    raise PermanentServiceError(f"cannot encode {type(message).__name__}")


def decode_message(data: bytes) -> Message:
    """Parse one wire frame; :class:`DecodingError` on anything malformed."""
    chunks = unpack_chunks(data)
    if not chunks or len(chunks[0]) != 1:
        raise DecodingError("service message must start with a type byte")
    kind = chunks[0][0]
    body = chunks[1:]
    if kind == GET_UPDATE:
        _expect(body, 1, "get_update")
        return GetUpdate(body[0])
    if kind == GET_ARCHIVE:
        _expect(body, 1, "get_archive")
        return GetArchive(body[0])
    if kind == HEALTH:
        _expect(body, 0, "health")
        return Health()
    if kind == ANNOUNCE:
        _expect(body, 1, "announce")
        return Announce(body[0])
    if kind == UPDATE:
        _expect(body, 1, "update")
        return UpdateResponse(body[0])
    if kind == ARCHIVE:
        return ArchiveResponse(tuple(body))
    if kind == HEALTH_OK:
        if len(body) % 2:
            raise DecodingError("health_ok needs key/value pairs")
        return HealthResponse(
            tuple((body[i], body[i + 1]) for i in range(0, len(body), 2))
        )
    if kind == ERROR:
        _expect(body, 2, "error")
        return ErrorResponse(body[0], body[1])
    raise DecodingError(f"unknown service message type 0x{kind:02x}")


def _expect(body: list[bytes], count: int, name: str) -> None:
    if len(body) != count:
        raise DecodingError(
            f"{name} message needs {count} field(s), got {len(body)}"
        )
