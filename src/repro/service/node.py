"""The supervised asyncio time-server node.

:class:`TimeServerNode` turns the library-object
:class:`~repro.core.timeserver.PassiveTimeServer` into a long-running
service while keeping the paper's passivity intact: the node *only*

* signs and announces ``I_T`` for each epoch on schedule (the epoch
  scheduler),
* answers archive/catch-up requests from its public archive, and
* reports health/readiness.

It holds no per-user state and never interacts with senders.  All time
comes from the event loop's clock (``loop.time()``), so under a
:class:`~repro.service.virtualtime.VirtualTimeLoop` the node is fully
deterministic; an optional ``clock_skew`` models a drifting server
clock for fault injection.

Crash/restart recovery mirrors a real process supervisor: the
*supervisor* owns the :class:`~repro.core.keys.ServerKeyPair` and the
latest archive snapshot (:meth:`TimeServerNode.snapshot` →
``PassiveTimeServer.snapshot_archive``, public data only — no secret
is ever serialized).  :meth:`crash` drops the in-memory server state;
:meth:`restart` rebuilds it from the keypair, re-verifies and re-loads
the snapshot, then lets the epoch scheduler republish every epoch
missed during the outage so the archive resumes gap-free.
"""

from __future__ import annotations

import asyncio
import random

from repro.core.keys import ServerKeyPair, ServerPublicKey
from repro.core.timeserver import PassiveTimeServer, epoch_label
from repro.errors import (
    ParameterError,
    ReproError,
    ServiceUnavailableError,
    UpdateNotAvailableError,
)
from repro.pairing.api import PairingGroup
from repro.service import wire


class TimeServerNode:
    """An epoch-scheduled, restartable wrapper around the passive server.

    Parameters
    ----------
    group, keypair:
        The pairing group and the server identity.  The keypair is
        deliberately *not* generated here: it belongs to the
        supervisor, so the same identity survives crash/restart.
    epoch_interval:
        Seconds of loop time per epoch.  Epoch ``e`` covers
        ``[e * interval, (e+1) * interval)`` on the loop clock, so
        every node on one loop agrees on epoch numbering.
    prefix:
        Label family handed to :func:`~repro.core.timeserver.epoch_label`.
    max_clock_skew:
        Forward tolerance (in epochs) of the underlying release policy,
        passed straight to :class:`PassiveTimeServer`.
    clock_skew:
        Seconds added to the node's own reading of the loop clock —
        a deliberately wrong server clock, for fault injection.
    """

    def __init__(
        self,
        group: PairingGroup,
        keypair: ServerKeyPair,
        epoch_interval: float = 1.0,
        prefix: str = "epoch",
        max_clock_skew: int = 0,
        clock_skew: float = 0.0,
        name: str = "node",
    ):
        if epoch_interval <= 0:
            raise ParameterError("epoch_interval must be positive")
        self.group = group
        self.keypair = keypair
        self.epoch_interval = epoch_interval
        self.prefix = prefix
        self.max_clock_skew = max_clock_skew
        self.clock_skew = clock_skew
        self.name = name
        self.running = False
        self.ready = False
        self._server: PassiveTimeServer | None = None
        self._scheduler_task: asyncio.Task | None = None
        self._subscribers: list[asyncio.Queue] = []
        self._next_epoch = 0
        self._started_at = 0.0
        # Counters survive crash/restart: they describe the node, not
        # one incarnation of its state.
        self.requests_served = 0
        self.announcements = 0
        self.crashes = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    # Clocks and labels.
    # ------------------------------------------------------------------

    @property
    def public_key(self) -> ServerPublicKey:
        return self.keypair.public

    def _loop_time(self) -> float:
        return asyncio.get_running_loop().time() + self.clock_skew

    def current_epoch(self) -> int:
        """The epoch this node believes it is in (skew included)."""
        return int(self._loop_time() // self.epoch_interval)

    def label_for(self, epoch: int) -> bytes:
        return epoch_label(epoch, self.prefix)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bring the node up and publish the current epoch immediately."""
        if self.running:
            raise ParameterError(f"{self.name} is already running")
        if self._server is None:
            self._server = PassiveTimeServer(
                self.group,
                keypair=self.keypair,
                clock=self.current_epoch,
                max_clock_skew=self.max_clock_skew,
            )
        self.running = True
        self._started_at = asyncio.get_running_loop().time()
        self._next_epoch = self._resume_epoch()
        self._publish_due_epochs()
        self.ready = True
        self._scheduler_task = asyncio.get_running_loop().create_task(
            self._scheduler()
        )

    def stop(self) -> None:
        """Graceful shutdown: stop scheduling but keep in-memory state.

        Unlike :meth:`crash` the archive survives, so a later
        :meth:`start` resumes without a snapshot.  Requests still fail
        with :class:`ServiceUnavailableError` while stopped — a process
        that is not running answers nothing, gracefully down or not.
        """
        self.running = False
        self.ready = False
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            self._scheduler_task = None

    def crash(self) -> None:
        """Simulate process death: lose all in-memory state.

        The archive is gone (that is the point — recovery must come
        from :meth:`snapshot` bytes), requests start failing with
        :class:`ServiceUnavailableError`, and announcements stop.
        """
        self.running = False
        self.ready = False
        self._server = None
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            self._scheduler_task = None
        self.crashes += 1

    async def restart(self, snapshot: bytes | None = None) -> int:
        """Recover from a crash, resuming the archive from ``snapshot``.

        Every snapshotted update is re-verified against this node's own
        public key before it re-enters the archive, so a corrupted
        snapshot cannot poison the node.  Returns the number of
        archive entries restored.  The epoch scheduler then republishes
        anything missed during the outage.
        """
        if self.running:
            raise ParameterError(f"{self.name} is already running")
        self._server = PassiveTimeServer(
            self.group,
            keypair=self.keypair,
            clock=self.current_epoch,
            max_clock_skew=self.max_clock_skew,
        )
        restored = 0
        if snapshot is not None:
            restored = self._server.restore_archive(snapshot)
        self.restarts += 1
        self._next_epoch = self._resume_epoch()
        self.running = True
        self._publish_due_epochs()
        self.ready = True
        self._scheduler_task = asyncio.get_running_loop().create_task(
            self._scheduler()
        )
        return restored

    def snapshot(self) -> bytes:
        """Serialized public archive state for the supervisor to keep."""
        if self._server is None:
            raise ServiceUnavailableError(f"{self.name} is down")
        return self._server.snapshot_archive()

    # ------------------------------------------------------------------
    # The epoch scheduler.
    # ------------------------------------------------------------------

    def _resume_epoch(self) -> int:
        """The oldest epoch not yet in the archive — publishing resumes
        there so an outage never leaves an archive gap."""
        assert self._server is not None
        family = f"{self.prefix}:".encode()
        published = [
            label
            for label in self._server.archive_labels()
            if label.startswith(family)
        ]
        if not published:
            return 0
        return int(published[-1].rsplit(b":", 1)[-1]) + 1

    def _publish_due_epochs(self) -> None:
        """Publish (and announce) every epoch due at the current time."""
        assert self._server is not None
        now_epoch = self.current_epoch()
        while self._next_epoch <= now_epoch:
            update = self._server.publish_update(
                self.label_for(self._next_epoch)
            )
            self._announce(update.to_bytes(self.group))
            self._next_epoch += 1

    async def _scheduler(self) -> None:
        """Sign and announce ``I_T`` at each epoch boundary, forever."""
        while self.running:
            next_boundary = self._next_epoch * self.epoch_interval
            delay = max(0.0, next_boundary - self._loop_time())
            await asyncio.sleep(delay)
            if not self.running:  # crashed while sleeping
                return
            self._publish_due_epochs()

    def _announce(self, update_bytes: bytes) -> None:
        frame = wire.encode_message(wire.Announce(update_bytes))
        for queue in self._subscribers:
            queue.put_nowait(frame)
        self.announcements += 1

    def subscribe(self) -> asyncio.Queue:
        """A queue of ``announce`` frames, one per published update."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        return queue

    # ------------------------------------------------------------------
    # The request handler (archive / catch-up / health).
    # ------------------------------------------------------------------

    async def handle_request(self, payload: bytes) -> bytes:
        """Answer one wire frame; never raises for bad *input*.

        Malformed frames get a ``bad-request`` error response (the
        remote peer's problem must not crash the node); a down node
        raises :class:`ServiceUnavailableError` (the transport-level
        truth that there is no process to answer).
        """
        if not self.running or self._server is None:
            raise ServiceUnavailableError(f"{self.name} is down")
        self.requests_served += 1
        try:
            message = wire.decode_message(payload)
        except ReproError as exc:
            return wire.encode_message(
                wire.ErrorResponse(wire.ERR_BAD_REQUEST, str(exc).encode())
            )
        if isinstance(message, wire.GetUpdate):
            return self._handle_get_update(message.label)
        if isinstance(message, wire.GetArchive):
            blobs = tuple(
                update.to_bytes(self.group)
                for update in self._server.archive_since(message.after)
            )
            return wire.encode_message(wire.ArchiveResponse(blobs))
        if isinstance(message, wire.Health):
            return wire.encode_message(
                wire.HealthResponse(
                    tuple(
                        (key.encode(), str(value).encode())
                        for key, value in sorted(self.health().items())
                    )
                )
            )
        return wire.encode_message(
            wire.ErrorResponse(
                wire.ERR_BAD_REQUEST,
                f"unexpected message {type(message).__name__}".encode(),
            )
        )

    def _handle_get_update(self, label: bytes) -> bytes:
        assert self._server is not None
        try:
            update = self._server.lookup(label)
        except UpdateNotAvailableError:
            # Not archived yet — publish on demand iff its time has
            # passed (footnote 4: any instant can be signed directly);
            # the release policy still refuses future epochs.
            try:
                update = self._server.publish_update(label)
            except UpdateNotAvailableError as exc:
                return wire.encode_message(
                    wire.ErrorResponse(wire.ERR_UNAVAILABLE, str(exc).encode())
                )
        return wire.encode_message(
            wire.UpdateResponse(update.to_bytes(self.group))
        )

    def health(self) -> dict:
        """Liveness + readiness in one probe (cheap, no crypto)."""
        archive = (
            len(self._server.archive_labels())
            if self._server is not None
            else 0
        )
        return {
            "status": "ok" if self.running else "down",
            "ready": self.ready,
            "epoch": self.current_epoch(),
            "archive": archive,
            "announcements": self.announcements,
            "crashes": self.crashes,
        }

    def __repr__(self) -> str:
        state = "up" if self.running else "down"
        return f"TimeServerNode({self.name}, {state}, next={self._next_epoch})"


class LocalNodeTransport:
    """In-process transport to a node, with optional simulated latency.

    The latency model is any object with ``sample(rng) -> float`` —
    exactly the :mod:`repro.sim.network` contract — applied
    independently to the request and response legs.  Fault injection
    wraps *around* this class (:class:`repro.service.faults
    .FaultyTransport`), keeping "slow network" and "broken network"
    composable but separate.
    """

    def __init__(
        self,
        node: TimeServerNode,
        latency=None,
        rng: random.Random | None = None,
        name: str | None = None,
    ):
        if latency is not None and rng is None:
            raise ParameterError("a latency model needs an rng to sample")
        self.node = node
        self.latency = latency
        self.rng = rng
        self.name = name or f"local:{node.name}"

    async def _leg(self) -> None:
        if self.latency is not None:
            await asyncio.sleep(self.latency.sample(self.rng))

    async def request(self, payload: bytes) -> bytes:
        await self._leg()
        response = await self.node.handle_request(payload)
        await self._leg()
        return response

    def subscribe(self) -> asyncio.Queue:
        return self.node.subscribe()
