"""The resilient time client: retries, failover, catch-up, decrypt queue.

:class:`ResilientTimeClient` is the receiver-side counterpart of
:class:`~repro.service.node.TimeServerNode`.  Its one inviolable rule
comes straight from the paper: **no update enters the cache without
passing ``ê(sG, H1(T)) == ê(G, I_T)``** — not from a response, not
from an announce broadcast, not from an archive backlog.  A forged or
corrupted update is indistinguishable from a network fault: it is
counted, rejected, and retried, so fault injection can corrupt bytes
at will without ever poisoning a decryption.

Around that rule sit the standard resilience layers, all built from
:mod:`repro.service.retry` and therefore deterministic under
:class:`~repro.service.virtualtime.VirtualTimeLoop`:

* per-request timeouts (``asyncio.wait_for`` against the loop clock);
* a circuit breaker per source, so a dead primary stops eating the
  deadline budget;
* failover sweeps across primary + mirrors, then full-jitter
  exponential backoff between sweeps;
* archive catch-up (:meth:`catch_up`) that batch-authenticates the
  backlog with :func:`~repro.core.timeserver.verify_archive` and keeps
  the good entries even when some are corrupt;
* a decrypt queue (:meth:`park` / :meth:`drain`) holding ciphertexts
  until the verified ``I_T`` for their release time arrives — graceful
  degradation instead of failure while the server is unreachable.
"""

from __future__ import annotations

import asyncio
import random
from typing import Iterable

from repro.core.timeserver import TimeBoundKeyUpdate, verify_archive
from repro.errors import (
    ParameterError,
    PermanentServiceError,
    ReproError,
    ServiceTimeoutError,
    TransientServiceError,
)
from repro.service import wire
from repro.service.retry import CircuitBreaker, Deadline, ExponentialBackoff


class ResilientTimeClient:
    """Fetches and caches verified time-bound key updates, resiliently.

    Parameters
    ----------
    group, server_public:
        The pairing group and the time server's public key ``sG`` —
        the trust anchor every incoming update is verified against.
    sources:
        Transports to try in order: the primary first, then mirrors.
        Any object with ``async request(bytes) -> bytes`` works
        (:class:`~repro.service.node.LocalNodeTransport`, a
        :class:`~repro.service.faults.FaultyTransport`, ...).
    rng:
        Seeded RNG driving backoff jitter — the only randomness here.
    request_timeout:
        Per-attempt timeout in loop seconds.
    total_timeout:
        Default overall deadline for one operation; ``None`` means
        retry forever (the decrypt queue's mode: park until released).
    verify_workers:
        Passed to :func:`verify_archive` for catch-up batches
        (``"auto"`` enables the process pool on big backlogs).
    """

    def __init__(
        self,
        group,
        server_public,
        sources: Iterable,
        rng: random.Random,
        request_timeout: float = 1.0,
        total_timeout: float | None = None,
        backoff: ExponentialBackoff | None = None,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        verify_workers: int | str | None = None,
        name: str = "client",
    ):
        self.group = group
        self.server_public = server_public
        self.transports = list(sources)
        if not self.transports:
            raise ParameterError("need at least one source transport")
        self.rng = rng
        self.request_timeout = request_timeout
        self.total_timeout = total_timeout
        self.backoff = backoff or ExponentialBackoff(rng)
        self.breakers = [
            CircuitBreaker(
                self._clock,
                failure_threshold=failure_threshold,
                reset_timeout=reset_timeout,
            )
            for _ in self.transports
        ]
        self.verify_workers = verify_workers
        self.name = name
        self.updates: dict[bytes, TimeBoundKeyUpdate] = {}
        self._waiters: dict[bytes, asyncio.Future] = {}
        self._parked: list[asyncio.Task] = []
        self._listener_task: asyncio.Task | None = None
        # Observability counters (see stats()).
        self.attempts = 0
        self.failovers = 0
        self.retries = 0
        self.rejected = 0

    def _clock(self) -> float:
        return asyncio.get_running_loop().time()

    def _deadline(self, deadline: Deadline | None) -> Deadline:
        if deadline is not None:
            return deadline
        if self.total_timeout is None:
            return Deadline.never(self._clock)
        return Deadline.after(self._clock, self.total_timeout)

    # ------------------------------------------------------------------
    # The verification gate.  Every update passes through here.
    # ------------------------------------------------------------------

    def _ingest(self, update_bytes: bytes) -> TimeBoundKeyUpdate:
        """Decode + authenticate one update, or raise a transient error.

        Corrupt bytes and forged points both land in the same bucket as
        a flaky network: reject, count, let the retry policy try again.
        """
        try:
            update = TimeBoundKeyUpdate.from_bytes(self.group, update_bytes)
        except ReproError as exc:
            self.rejected += 1
            raise TransientServiceError(f"undecodable update: {exc}") from exc
        if not update.verify(self.group, self.server_public):
            self.rejected += 1
            raise TransientServiceError(
                f"update for {update.time_label!r} failed "
                "e(sG, H1(T)) == e(G, I_T)"
            )
        self._accept(update)
        return update

    def _accept(self, update: TimeBoundKeyUpdate) -> None:
        """Cache a *verified* update and wake anyone waiting for it."""
        self.updates[update.time_label] = update
        waiter = self._waiters.pop(update.time_label, None)
        if waiter is not None and not waiter.done():
            waiter.set_result(update)

    def ingest_frame(self, frame: bytes) -> TimeBoundKeyUpdate | None:
        """Feed one pushed wire frame (an ``announce``) into the cache.

        Returns the verified update, or ``None`` if the frame was
        malformed, not an announce, or failed authentication — push
        channels are unsolicited, so bad frames are dropped, not raised.
        """
        try:
            message = wire.decode_message(frame)
        except ReproError:
            self.rejected += 1
            return None
        if not isinstance(message, wire.Announce):
            self.rejected += 1
            return None
        try:
            return self._ingest(message.update_bytes)
        except TransientServiceError:
            return None

    async def listen(self, queue: asyncio.Queue) -> None:
        """Consume announce frames forever (run as a background task).

        Prefer :meth:`start_listening`, which owns the task so
        :meth:`close` can cancel and await it.
        """
        while True:
            self.ingest_frame(await queue.get())

    def start_listening(self, queue: asyncio.Queue) -> asyncio.Task:
        """Spawn (and own) the announce-listener task for ``queue``.

        The client tracks exactly one listener: starting a new one
        cancels the previous.  :meth:`close` cancels and awaits it, so
        no announce consumer outlives the client.
        """
        if self._listener_task is not None and not self._listener_task.done():
            self._listener_task.cancel()
        self._listener_task = asyncio.get_running_loop().create_task(
            self.listen(queue)
        )
        return self._listener_task

    async def close(self) -> None:
        """Cancel and await the listener and any parked decryptions.

        Idempotent; safe to call with nothing running.  Pending waiters
        are cancelled too, so a coroutine blocked in :meth:`get_update`
        fails fast instead of sleeping out its backoff against a closed
        client.
        """
        tasks = [
            task
            for task in [self._listener_task, *self._parked]
            if task is not None and not task.done()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            # Shutdown: outcomes no longer matter, only completion.
            await asyncio.gather(*tasks, return_exceptions=True)
        self._listener_task = None
        self._parked.clear()
        for waiter in self._waiters.values():
            if not waiter.done():
                waiter.cancel()
        self._waiters.clear()

    # ------------------------------------------------------------------
    # One failover sweep: each source once, breaker-gated, with a
    # per-attempt timeout.  No sleeping here — backoff lives upstairs.
    # ------------------------------------------------------------------

    async def _sweep(self, payload: bytes, deadline: Deadline) -> wire.Message:
        last: TransientServiceError | None = None
        for index, (transport, breaker) in enumerate(
            zip(self.transports, self.breakers)
        ):
            deadline.require("sweeping sources")
            if index > 0:
                self.failovers += 1
            try:
                breaker.check()
            except TransientServiceError as exc:
                last = exc
                continue
            self.attempts += 1
            timeout = deadline.clamp(self.request_timeout)
            try:
                raw = await asyncio.wait_for(
                    transport.request(payload), timeout
                )
                response = wire.decode_message(raw)
            except (TimeoutError, asyncio.TimeoutError) as exc:
                breaker.record_failure()
                last = ServiceTimeoutError(
                    f"source {index} timed out after {timeout:.3f}s"
                )
                last.__cause__ = exc
                continue
            except TransientServiceError as exc:
                breaker.record_failure()
                last = exc
                continue
            except ReproError as exc:
                # Undecodable response frame == corrupt wire bytes.
                breaker.record_failure()
                last = TransientServiceError(f"corrupt response: {exc}")
                last.__cause__ = exc
                continue
            # The transport worked; application-level errors do not trip
            # the breaker (a not-yet-released label is nobody's outage).
            breaker.record_success()
            if isinstance(response, wire.ErrorResponse):
                exc = response.to_exception()
                if isinstance(exc, TransientServiceError):
                    last = exc
                    continue
                raise exc
            return response
        raise last if last is not None else TransientServiceError(
            "no source available"
        )

    async def _call(
        self, payload: bytes, deadline: Deadline, doing: str
    ) -> wire.Message:
        """Sweep + full-jitter backoff until success, deadline, or a
        permanent error."""
        attempt = 0
        while True:
            deadline.require(doing)
            try:
                return await self._sweep(payload, deadline)
            except ServiceTimeoutError:
                if deadline.expired:
                    raise
            except TransientServiceError:
                pass
            self.retries += 1
            await asyncio.sleep(
                deadline.clamp(self.backoff.delay(attempt))
            )
            attempt += 1

    # ------------------------------------------------------------------
    # Operations.
    # ------------------------------------------------------------------

    async def get_update(
        self, time_label: bytes, deadline: Deadline | None = None
    ) -> TimeBoundKeyUpdate:
        """The verified ``I_T`` for ``time_label``, fetching if needed.

        Retries transient failures (including forged/corrupt responses
        and "not released yet") until the deadline; with the default
        unbounded deadline this is exactly the liveness property the
        chaos suite checks — once ``T`` passes and the network delivers
        one honest response, this returns.
        """
        deadline = self._deadline(deadline)
        attempt = 0
        payload = wire.encode_message(wire.GetUpdate(time_label))
        while True:
            cached = self.updates.get(time_label)
            if cached is not None:
                return cached
            deadline.require(f"fetching update for {time_label!r}")
            try:
                response = await self._sweep(payload, deadline)
                if isinstance(response, wire.UpdateResponse):
                    update = self._ingest(response.update_bytes)
                    if update.time_label == time_label:
                        return update
                    # A verified update for the wrong label is still a
                    # wrong answer (e.g. a reordered response).
                    raise TransientServiceError(
                        f"asked for {time_label!r}, got "
                        f"{update.time_label!r}"
                    )
                raise TransientServiceError(
                    f"unexpected response {type(response).__name__}"
                )
            except ServiceTimeoutError:
                if deadline.expired:
                    raise
            except TransientServiceError:
                pass
            self.retries += 1
            # Sleep with one ear open: an announce for this label ends
            # the wait early instead of burning the whole backoff.
            await self._pause(time_label, attempt, deadline)
            attempt += 1

    async def _pause(
        self, time_label: bytes, attempt: int, deadline: Deadline
    ) -> None:
        delay = deadline.clamp(self.backoff.delay(attempt))
        waiter = self._waiters.get(time_label)
        if waiter is None or waiter.done():
            waiter = asyncio.get_running_loop().create_future()
            self._waiters[time_label] = waiter
        await asyncio.wait([waiter], timeout=delay)

    async def catch_up(
        self, after: bytes = b"", deadline: Deadline | None = None
    ) -> list[TimeBoundKeyUpdate]:
        """Fetch and authenticate the archive backlog past ``after``.

        The whole batch goes through :func:`verify_archive` (sequential
        or the process pool, per ``verify_workers``); entries that fail
        are rejected and counted while the verified remainder still
        lands in the cache — one corrupt blob must not cost the client
        the other hundred updates.
        """
        deadline = self._deadline(deadline)
        payload = wire.encode_message(wire.GetArchive(after))
        response = await self._call(payload, deadline, "catching up")
        if not isinstance(response, wire.ArchiveResponse):
            raise TransientServiceError(
                f"unexpected response {type(response).__name__}"
            )
        decoded: list[TimeBoundKeyUpdate] = []
        for blob in response.update_blobs:
            try:
                decoded.append(TimeBoundKeyUpdate.from_bytes(self.group, blob))
            except ReproError:
                self.rejected += 1
        failed = set(
            verify_archive(
                self.group,
                self.server_public,
                decoded,
                workers=self.verify_workers,
            )
        )
        accepted = []
        for update in decoded:
            if update.time_label in failed:
                self.rejected += 1
                continue
            self._accept(update)
            accepted.append(update)
        return accepted

    async def health(
        self, source: int = 0, timeout: float | None = None
    ) -> dict[bytes, bytes]:
        """Probe one specific source (no failover — that is the point)."""
        payload = wire.encode_message(wire.Health())
        try:
            raw = await asyncio.wait_for(
                self.transports[source].request(payload),
                timeout if timeout is not None else self.request_timeout,
            )
            response = wire.decode_message(raw)
        except (TimeoutError, asyncio.TimeoutError) as exc:
            raise ServiceTimeoutError(
                f"health probe of source {source} timed out"
            ) from exc
        if not isinstance(response, wire.HealthResponse):
            raise TransientServiceError(
                f"unexpected response {type(response).__name__}"
            )
        return response.as_dict()

    # ------------------------------------------------------------------
    # The decrypt queue: graceful degradation while the server is away.
    # ------------------------------------------------------------------

    async def decrypt_when_released(
        self, scheme, ciphertext, receiver, deadline: Deadline | None = None
    ) -> bytes:
        """Wait for the verified update for this ciphertext, then decrypt.

        ``scheme.decrypt`` re-checks label match and authenticity — the
        cache only ever holds verified updates, but defence in depth is
        free here.
        """
        update = await self.get_update(ciphertext.time_label, deadline)
        return scheme.decrypt(
            ciphertext, receiver, update, server_public=self.server_public
        )

    def park(self, scheme, ciphertext, receiver) -> asyncio.Task:
        """Queue a ciphertext for decryption whenever its ``I_T`` arrives.

        Returns the task; :meth:`drain` gathers all parked results in
        parking order.  Parked work never expires on its own — it rides
        the unbounded default deadline until the release time passes
        and connectivity allows one successful fetch.
        """
        task = asyncio.get_running_loop().create_task(
            self.decrypt_when_released(
                scheme, ciphertext, receiver, Deadline.never(self._clock)
            )
        )
        self._parked.append(task)
        return task

    @property
    def parked(self) -> int:
        return sum(1 for task in self._parked if not task.done())

    async def drain(self) -> list[bytes]:
        """Await every parked decryption; returns plaintexts in order."""
        results = await asyncio.gather(*self._parked)
        self._parked.clear()
        return results

    def stats(self) -> dict[str, int]:
        return {
            "attempts": self.attempts,
            "failovers": self.failovers,
            "retries": self.retries,
            "rejected": self.rejected,
            "cached": len(self.updates),
            "parked": self.parked,
            "breaker_trips": sum(b.trips for b in self.breakers),
        }

    def __repr__(self) -> str:
        return (
            f"ResilientTimeClient({self.name}, "
            f"sources={len(self.transports)}, cached={len(self.updates)})"
        )
