"""Process-parallel batch engine for embarrassingly parallel crypto work.

The deployment-shaped batch operations — a receiver decrypting a backlog
of same-label ciphertexts, a verifier authenticating an archive of
time-bound key updates — are embarrassingly parallel: every item is
independent and the per-item work (a Miller loop, a final
exponentiation) dwarfs serialization cost.  This module shards such
batches across a :mod:`multiprocessing` worker pool:

* **Byte-serialized tasks.**  Work units cross the process boundary as
  the library's own wire encodings (``to_bytes`` / ``from_bytes``), so
  results are byte-identical to the sequential path and nothing depends
  on pickling curve points or field elements.
* **Lazy per-worker group reconstruction.**  A :class:`PairingGroup` is
  not picklable (it holds caches and counters); workers rebuild it from
  the parameter-set description on first use and cache it for the rest
  of their life.  This makes the engine safe under both ``fork`` and
  ``spawn`` start methods.
* **Chunked dispatch.**  Payloads are grouped into chunks (default:
  ``ceil(n / (workers * 4))`` per chunk) so each task invocation can
  amortize per-batch setup — e.g. precomputing the shared update's
  Miller lines once per chunk — while still load-balancing across
  workers.
* **Sequential fallback.**  ``workers <= 1`` (or a single payload) runs
  the identical task function in-process: same code path, same bytes,
  no pool.
* **Failure surfacing.**  A worker exception is captured with its
  traceback and re-raised in the parent as
  :class:`~repro.errors.ParallelExecutionError` — the pool never hangs
  on an unpicklable exception and failures stay diagnosable.

Operation counters are per-process, so work done inside workers is NOT
reflected in the parent group's counters; cost accounting for parallel
paths lives in :mod:`repro.analysis.costmodel` instead.

Task functions are registered at import time under stable string names
(the only thing shipped to the worker besides bytes), take
``(group, setup, chunk)`` and return one ``bytes`` result per payload.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import os
import traceback
from typing import Callable, Sequence

from repro.errors import ParallelExecutionError, ParameterError
from repro.pairing.api import PairingGroup
from repro.pairing.params import PARAMETER_SETS, ParameterSet

# ----------------------------------------------------------------------
# Task registry.  Populated at module import, so any process that can
# unpickle `_execute_chunk` (which requires importing this module) sees
# the same registry — the basis of spawn-safety.
# ----------------------------------------------------------------------

TaskFn = Callable[[PairingGroup, bytes, "list[bytes]"], "list[bytes]"]

_TASKS: dict[str, TaskFn] = {}


def register_task(name: str) -> Callable[[TaskFn], TaskFn]:
    """Register ``fn`` as the chunk-level handler for ``name``.

    The function receives ``(group, setup, chunk)`` — the rebuilt
    pairing group, the task-wide setup blob, and a list of payload
    blobs — and must return exactly one ``bytes`` per payload, in
    order.
    """

    def decorate(fn: TaskFn) -> TaskFn:
        if name in _TASKS:
            raise ParameterError(f"parallel task {name!r} already registered")
        _TASKS[name] = fn
        return fn

    return decorate


def task_names() -> list[str]:
    return sorted(_TASKS)


# ----------------------------------------------------------------------
# Per-worker pairing-group cache.
#
# Lazily populated on each worker's first chunk and reset in forked
# children by the hook below, so a worker never decides it "already
# has" a group that was actually built (caches, counters and all) by
# the parent before the fork.
# ----------------------------------------------------------------------

_WORKER_GROUPS: dict[tuple, PairingGroup] = {}

# Which shared-table blobs have already been installed into a worker's
# rebuilt group, keyed by (group spec, blob digest).  Installing is
# idempotent (same bytes → same cache entries) but not free, so each
# worker pays it once per blob, not once per chunk.  Reset after fork
# alongside the group cache: a child's groups are rebuilt empty, so the
# installed-markers it inherited from the parent are stale.
_WORKER_TABLE_KEYS: set[tuple] = set()

if hasattr(os, "register_at_fork"):  # not available on all platforms
    os.register_at_fork(after_in_child=_WORKER_GROUPS.clear)
    os.register_at_fork(after_in_child=_WORKER_TABLE_KEYS.clear)


def shard_secret(blob: bytes) -> bytes:
    """Mark an encoded secret as cleared to cross the shard boundary.

    The audited chokepoint for secret material entering
    :func:`parallel_map` setup/payload blobs (lint rule RP303): it
    accepts *bytes only* — already wire-encoded by the caller — so a
    secret can never cross to workers as a pickled object graph, where
    copies would land in pool pipes and worker heaps beyond the
    library's reach.  The bytes pass through unchanged.
    """
    if not isinstance(blob, bytes):
        raise ParameterError(
            "shard_secret clears bytes across the worker boundary; got "
            f"{type(blob).__name__} — encode the secret first"
        )
    return blob


def _group_spec(group: PairingGroup) -> tuple:
    """A picklable, worker-reconstructable description of ``group``.

    Includes the backend *name* so workers compute with the same
    arithmetic provider as the parent (results are byte-identical
    across backends regardless; matching them keeps per-item worker
    cost — and therefore the auto_workers model — honest).
    """
    params = group.params
    return (
        params.name,
        params.q,
        params.c,
        params.p,
        params.security_bits,
        group.family,
        group.backend_name,
    )


def _group_from_spec(spec: tuple) -> PairingGroup:
    """Rebuild (once per worker process) the group a spec describes."""
    group = _WORKER_GROUPS.get(spec)
    if group is None:
        name, q, c, p, security_bits, family, backend = spec
        params = PARAMETER_SETS.get(name)
        if params is None or (params.q, params.c, params.p) != (q, c, p):
            params = ParameterSet(
                name=name, q=q, c=c, p=p, security_bits=security_bits
            )
        group = PairingGroup(params, family, backend=backend)
        _WORKER_GROUPS[spec] = group
    return group


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------


def available_workers() -> int:
    """CPUs this process may run on (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


# Cost-model constants for auto_workers, in units of "one item's work".
# WORKER_WARMUP_ITEM_COST: forking a pool, importing the library and
# rebuilding the pairing group in each worker costs roughly this many
# items of useful work (workers warm up concurrently, so it is paid once
# per batch, not per worker).  PARALLEL_ITEM_OVERHEAD: byte
# serialization and pipe transfer add this fraction to every item.
# AUTO_SPEEDUP_MARGIN: forking must beat sequential by at least this
# factor, else the model stays sequential — near break-even the pool's
# unmodeled costs (scheduler noise, memory pressure) make it a loss.
WORKER_WARMUP_ITEM_COST = 4.0
# Warmup when the parent ships precomputed Miller-line tables along with
# the batch (shared_tables): workers skip re-recording lines on their
# first chunk, so the modeled warmup drops — installing a table blob is
# deserialization, a fraction of recording it.
WORKER_WARMUP_WITH_TABLES_COST = 2.0
PARALLEL_ITEM_OVERHEAD = 0.1
AUTO_SPEEDUP_MARGIN = 0.95


def auto_workers(item_count: int, cpus: int | None = None,
                 warmup: float | None = None) -> int:
    """Pick a worker count for ``item_count`` items, or 1 for sequential.

    A deliberately simple cost model: sequential cost is ``item_count``;
    a ``w``-worker pool costs a one-time warmup plus the longest shard,
    inflated by per-item serialization overhead.  The returned count is
    the cheapest ``w``, and 1 (sequential — no pool at all) unless the
    best pool beats sequential by :data:`AUTO_SPEEDUP_MARGIN`.  Small
    batches and single-CPU hosts therefore fall back to sequential
    instead of paying fork/import cost for nothing.

    ``warmup`` overrides the modeled per-batch warmup cost (in items):
    :data:`WORKER_WARMUP_ITEM_COST` by default,
    :data:`WORKER_WARMUP_WITH_TABLES_COST` when the caller ships
    precomputed tables — batches slightly too small to fork cold become
    worth forking warm.
    """
    if item_count <= 1:
        return 1
    if warmup is None:
        warmup = WORKER_WARMUP_ITEM_COST
    cpus = available_workers() if cpus is None else max(1, cpus)
    best_workers = 1
    best_cost = float(item_count)
    for workers in range(2, min(cpus, item_count) + 1):
        cost = warmup + math.ceil(item_count / workers) * (
            1.0 + PARALLEL_ITEM_OVERHEAD
        )
        if cost < best_cost:
            best_cost = cost
            best_workers = workers
    if best_workers > 1 and best_cost >= AUTO_SPEEDUP_MARGIN * item_count:
        return 1
    return best_workers


def default_chunk_size(item_count: int, workers: int) -> int:
    """~4 chunks per worker: large enough to amortize per-chunk setup,
    small enough that a slow chunk cannot straggle the whole batch."""
    return max(1, math.ceil(item_count / (max(1, workers) * 4)))


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def _execute_chunk(job: tuple) -> tuple[str, object]:
    """Worker entry point: run one chunk, never raise across the pipe."""
    task_name, spec, tables, setup, chunk = job
    try:
        fn = _TASKS[task_name]
        group = _group_from_spec(spec)
        if tables:
            key = (spec, hashlib.sha256(tables).digest())
            if key not in _WORKER_TABLE_KEYS:
                group.install_pairing_lines(tables)
                _WORKER_TABLE_KEYS.add(key)
        results = list(fn(group, setup, list(chunk)))
        if len(results) != len(chunk):
            raise ParallelExecutionError(
                f"task {task_name!r} returned {len(results)} results "
                f"for {len(chunk)} payloads"
            )
        return ("ok", results)
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        return ("err", detail)


def parallel_map(
    task: str,
    group: PairingGroup,
    setup: bytes,
    payloads: Sequence[bytes],
    workers: int | None = None,
    chunk_size: int | None = None,
    start_method: str | None = None,
    shared_tables: bytes | None = None,
) -> list[bytes]:
    """Run a registered task over ``payloads``, sharded across processes.

    Parameters
    ----------
    task:
        A name from :func:`task_names`.
    group:
        The parent's pairing group; workers rebuild an equivalent one
        from its parameter set (same family and backend).
    setup:
        Task-wide context (already byte-encoded), handed to every chunk.
    payloads:
        Byte-encoded work items; one result blob is returned per item,
        in order.
    shared_tables:
        Optional :meth:`~repro.pairing.api.PairingGroup.export_pairing_lines`
        blob.  Each worker installs it into its rebuilt group exactly
        once (idempotently, keyed by content digest), so Miller lines
        the parent recorded once are never re-recorded per worker —
        the warm-up cost the auto model then discounts.
    workers:
        Process count.  ``None`` means :func:`auto_workers` — the cost
        model picks a count from the batch size and available CPUs, and
        falls back to sequential when forking would be a net loss;
        ``<= 1`` runs sequentially in-process (identical code path and
        bytes, no pool).
    chunk_size:
        Payloads per task invocation; ``None`` picks
        :func:`default_chunk_size`.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.

    Raises
    ------
    ParallelExecutionError
        If any worker chunk raised; carries the worker traceback text.
    """
    if task not in _TASKS:
        raise ParameterError(
            f"unknown parallel task {task!r}; known: {task_names()}"
        )
    payloads = list(payloads)
    if not payloads:
        return []
    if workers is None:
        workers = auto_workers(
            len(payloads),
            warmup=(
                WORKER_WARMUP_WITH_TABLES_COST
                if shared_tables
                else WORKER_WARMUP_ITEM_COST
            ),
        )

    if workers <= 1 or len(payloads) == 1:
        status, value = _execute_chunk(
            (task, _group_spec(group), shared_tables, setup, payloads)
        )
        if status != "ok":
            raise ParallelExecutionError(
                f"task {task!r} failed (sequential fallback): {value}"
            )
        return value  # type: ignore[return-value]

    spec = _group_spec(group)
    if chunk_size is None:
        chunk_size = default_chunk_size(len(payloads), workers)
    chunk_size = max(1, chunk_size)
    chunks = [
        payloads[i : i + chunk_size]
        for i in range(0, len(payloads), chunk_size)
    ]
    jobs = [(task, spec, shared_tables, setup, chunk) for chunk in chunks]
    context = multiprocessing.get_context(start_method or _default_start_method())
    with context.Pool(processes=min(workers, len(chunks))) as pool:
        outcomes = pool.map(_execute_chunk, jobs)
    results: list[bytes] = []
    for status, value in outcomes:
        if status != "ok":
            raise ParallelExecutionError(f"task {task!r} failed in worker: {value}")
        results.extend(value)
    return results


# ----------------------------------------------------------------------
# Built-in tasks.  Core-scheme imports stay inside the task bodies so
# importing this module never drags in (or cycles with) repro.core.
# ----------------------------------------------------------------------


@register_task("selftest.echo")
def _task_selftest_echo(
    group: PairingGroup, setup: bytes, chunk: list[bytes]
) -> list[bytes]:
    """Engine plumbing check: concatenate setup with each payload."""
    return [setup + payload for payload in chunk]


@register_task("selftest.fail")
def _task_selftest_fail(
    group: PairingGroup, setup: bytes, chunk: list[bytes]
) -> list[bytes]:
    """Deterministic failure, for exercising the error-surfacing path."""
    raise RuntimeError(f"selftest.fail invoked on {len(chunk)} payload(s)")


@register_task("tre.decrypt")
def _task_tre_decrypt(
    group: PairingGroup, setup: bytes, chunk: list[bytes]
) -> list[bytes]:
    """Decrypt a shard of same-label TRE ciphertexts.

    ``setup`` packs the receiver's private scalar and the (already
    parent-verified) update; each payload is one ciphertext.  The chunk
    rides the sequential ``decrypt_batch`` fast path, so the update's
    Miller lines are computed once per chunk.
    """
    from repro.core.timeserver import TimeBoundKeyUpdate
    from repro.core.tre import TimedReleaseScheme, TRECiphertext
    from repro.encoding import unpack_chunks

    private_blob, update_blob = unpack_chunks(setup)
    private = int.from_bytes(private_blob, "big")
    update = TimeBoundKeyUpdate.from_bytes(group, update_blob)
    ciphertexts = [TRECiphertext.from_bytes(group, blob) for blob in chunk]
    # lint: allow[RP401] the update bytes ride the parent's task shard,
    # verified parent-side before dispatch; re-pairing in every worker
    # chunk would defeat the batch fast path
    return TimedReleaseScheme(group).decrypt_batch(ciphertexts, private, update)


@register_task("timeserver.verify_update")
def _task_timeserver_verify_update(
    group: PairingGroup, setup: bytes, chunk: list[bytes]
) -> list[bytes]:
    """Self-authenticate a shard of archived updates.

    ``setup`` is the server public key; each payload is one update.
    Returns ``b"\\x01"`` (valid) / ``b"\\x00"`` (forged or malformed)
    per update, with the fixed ``(G, sG)`` Miller lines precomputed
    once per chunk.

    A payload that raises a library error — undecodable bytes, a point
    the verifier rejects — marks *that update* failed instead of
    aborting the chunk with :class:`ParallelExecutionError`, mirroring
    the per-update containment of the sequential
    :func:`~repro.core.timeserver.verify_archive` path so both paths
    report the same failed labels.
    """
    from repro.core.bls import BLSSignatureScheme
    from repro.core.keys import ServerPublicKey
    from repro.core.timeserver import TimeBoundKeyUpdate
    from repro.errors import ReproError

    server_public = ServerPublicKey.from_bytes(group, setup)
    bls = BLSSignatureScheme(group)
    bls.precompute_public(server_public)
    results = []
    for blob in chunk:
        try:
            update = TimeBoundKeyUpdate.from_bytes(group, blob)
            valid = bls.verify(server_public, update.time_label, update.point)
        except ReproError:
            valid = False
        results.append(b"\x01" if valid else b"\x00")
    return results
