"""Boneh–Lynn–Shacham short signatures (paper §5.3.1).

The paper observes that a time-bound key update ``s·H1(T)`` *is* a BLS
short signature on the time string ``T`` under the server's key — which
is why updates are self-authenticating and need no extra signature.  This
module implements the signature scheme standalone so that:

* the time server (:mod:`repro.core.timeserver`) signs and verifies
  updates through it, and
* experiment E6 can compare "self-authenticated update" against a
  strawman "update + detached signature" design.

Signing is one hash-to-group plus one scalar multiplication; verifying
is the pairing-ratio check ``ê(sG, H1(m)) == ê(G, σ)``, evaluated as a
single multi-pairing (two Miller loops, ONE final exponentiation) via
:meth:`repro.pairing.api.PairingGroup.pair_ratio_is_one`.
"""

from __future__ import annotations

from repro.core.keys import ServerKeyPair, ServerPublicKey
from repro.ec.point import CurvePoint
from repro.pairing.api import PairingGroup

H1_TAG = "repro:H1"


class BLSSignatureScheme:
    """BLS signatures over a symmetric pairing group."""

    def __init__(self, group: PairingGroup, hash_tag: str = H1_TAG):
        self.group = group
        self.hash_tag = hash_tag

    def hash_message(self, message: bytes) -> CurvePoint:
        """``H1(m)``, the random-oracle hash onto ``G1``."""
        return self.group.hash_to_g1(message, tag=self.hash_tag)

    def sign(self, keypair: ServerKeyPair, message: bytes) -> CurvePoint:
        """``σ = s·H1(m)``."""
        return self.group.mul(self.hash_message(message), keypair.private)

    def precompute_public(self, public: ServerPublicKey) -> None:
        """Cache Miller lines for ``(G, sG)`` so verification reuses them.

        Both pairings in :meth:`verify` have a fixed first argument
        under a fixed public key; after this call every ``verify`` /
        ``batch_verify`` against ``public`` evaluates cached lines
        instead of re-running the full Miller loop.  A receiver catching
        up on an archive of time-bound key updates pays the two
        precomputations once for the whole backlog.
        """
        self.group.precompute_pairing(public.s_generator)
        self.group.precompute_pairing(public.generator)

    def verify(
        self, public: ServerPublicKey, message: bytes, signature: CurvePoint
    ) -> bool:
        """Check ``ê(sG, H1(m)) == ê(G, σ)``.

        Also rejects signatures outside the prime-order subgroup, which
        guards against small-subgroup confusion on deserialized points.
        The two pairings run as one multi-pairing ratio check: a single
        combined Miller loop (reusing cached lines for ``sG``/``G`` when
        :meth:`precompute_public` has run) and ONE final exponentiation
        instead of two.
        """
        if signature.is_infinity or not self.group.in_group(signature):
            return False
        return self.group.pair_ratio_is_one(
            ((public.s_generator, self.hash_message(message)),),
            ((public.generator, signature),),
        )

    def batch_verify(
        self,
        public: ServerPublicKey,
        messages: list[bytes],
        signatures: list[CurvePoint],
        rng,
    ) -> bool:
        """Verify ``n`` signatures under ONE key with just 2 pairings.

        Small-exponent batching: draw random ``r_i`` and check

            ê(Σ r_i·H1(m_i), sG) == ê(G, Σ r_i·σ_i)

        which follows from bilinearity when every signature is valid,
        and fails with probability ``~2^-128`` per forged signature for
        128-bit ``r_i``.  A receiver catching up on a long archive of
        time-bound key updates verifies them all at the cost of one
        (§5.1 single-update) check plus ``2n`` scalar multiplications.
        """
        if len(messages) != len(signatures) or not messages:
            return False
        for signature in signatures:
            if signature.is_infinity or not self.group.in_group(signature):
                return False
        hash_side = self.group.identity()
        sig_side = self.group.identity()
        for message, signature in zip(messages, signatures):
            r = rng.getrandbits(128) | 1
            hash_side = self.group.add(
                hash_side, self.group.mul(self.hash_message(message), r)
            )
            sig_side = self.group.add(sig_side, self.group.mul(signature, r))
        return self.group.pair_ratio_is_one(
            ((hash_side, public.s_generator),),
            ((public.generator, sig_side),),
        )

    def aggregate(self, signatures: list[CurvePoint]) -> CurvePoint:
        """Sum distinct-message signatures into one point (BLS aggregation).

        Not used by the paper itself but exercised by the multi-server
        tests: updates for the same ``T`` from servers sharing a
        generator can be verified in aggregate.
        """
        total = self.group.identity()
        for signature in signatures:
            total = self.group.add(total, signature)
        return total

    def verify_aggregate(
        self,
        publics: list[ServerPublicKey],
        messages: list[bytes],
        aggregate: CurvePoint,
    ) -> bool:
        """Check ``Π ê(s_iG_i, H1(m_i)) == ê(G, Σσ_i)`` for a shared G.

        The whole product equation is ONE multi-pairing: ``n + 1``
        Miller loops in lockstep and a single final exponentiation.
        The point at infinity is rejected as an aggregate — like a
        single infinity signature in :meth:`verify`, it would otherwise
        pass whenever the hash-side product collapses to the identity.
        """
        if len(publics) != len(messages) or not publics:
            return False
        generator = publics[0].generator
        if any(pk.generator != generator for pk in publics):
            return False
        if aggregate.is_infinity or not self.group.in_group(aggregate):
            return False
        return self.group.pair_ratio_is_one(
            [
                (public.s_generator, self.hash_message(message))
                for public, message in zip(publics, messages)
            ],
            ((generator, aggregate),),
        )
