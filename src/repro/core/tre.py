"""The TRE scheme — the paper's primary contribution (§5.1).

Encryption of ``M`` for receiver ``(aG, asG)`` under server ``(G, sG)``
with release time ``T``:

1. check the receiver key is well-formed: ``ê(aG, sG) == ê(G, asG)``;
2. pick ``r ∈ Z_q^*``, compute ``U = rG`` and ``r·asG``;
3. ``K = ê(r·asG, H1(T)) = ê(G, H1(T))^{ras}``;
4. ciphertext ``C = ⟨U, M ⊕ H2(K)⟩``.

Decryption with private key ``a`` and update ``I_T = s·H1(T)``:
``K' = ê(U, I_T)^a``, then ``M = V ⊕ H2(K')``.

Decryption therefore requires *both* the receiver's secret and the
server's broadcast — neither alone suffices (tested in
``tests/core/test_tre_security.py``).  As in the paper, this base scheme
is one-way/CPA-secure; apply :mod:`repro.core.fujisaki_okamoto` or
:mod:`repro.core.react` for chosen-ciphertext security, and
:mod:`repro.core.hybrid_tre` for long messages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.core.keys import ServerPublicKey, UserKeyPair, UserPublicKey
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks, unpack_chunks, xor_bytes
from repro.errors import EncodingError, UpdateVerificationError
from repro.pairing.api import GTElement, PairingGroup

H1_TAG = "repro:H1"
H2_TAG = "repro:H2"


@dataclass(frozen=True)
class TRECiphertext:
    """``C = ⟨U, V⟩`` plus the (public) release-time label.

    The paper transmits ``T`` alongside the ciphertext so the receiver
    knows which update to wait for; it is not secret from the receiver,
    and the *server* never sees it.
    """

    u_point: CurvePoint
    masked: bytes
    time_label: bytes

    def to_bytes(self, group: PairingGroup) -> bytes:
        return pack_chunks(
            group.point_to_bytes(self.u_point), self.masked, self.time_label
        )

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "TRECiphertext":
        chunks = unpack_chunks(data)
        if len(chunks) != 3:
            raise EncodingError("TRE ciphertext must have 3 components")
        return cls(group.point_from_bytes(chunks[0]), chunks[1], chunks[2])

    def size_bytes(self, group: PairingGroup) -> int:
        return len(self.to_bytes(group))


class TimedReleaseScheme:
    """The server-passive, user-anonymous timed release encryption scheme."""

    def __init__(self, group: PairingGroup):
        self.group = group
        # Sender-side GT cache: (asG, T) -> g = ê(asG, H1(T)).  For a
        # fixed (receiver, T) the pairing never changes — only the
        # exponent r does — so a warmed entry collapses encryption from
        # a Miller loop + final exponentiation to one GT exponentiation.
        # Pure accelerator: cached and direct paths produce byte-
        # identical ciphertexts (bilinearity: ê(asG, H1(T))^r ==
        # ê(r·asG, H1(T))).  Keyed by asG, which binds both the receiver
        # and the server.
        self._sender_gt: dict[tuple[CurvePoint, bytes], GTElement] = {}

    # ------------------------------------------------------------------
    # Key generation (delegates to repro.core.keys, kept here so the
    # scheme object exposes the paper's full interface).
    # ------------------------------------------------------------------

    def generate_user_keypair(
        self, server_public: ServerPublicKey, rng: random.Random
    ) -> UserKeyPair:
        return UserKeyPair.generate(self.group, server_public, rng)

    # ------------------------------------------------------------------
    # The pairing-derived shared secret (KEM core).
    # ------------------------------------------------------------------

    def _sender_key(
        self,
        receiver_public: UserPublicKey,
        time_label: bytes,
        r: int,
    ) -> GTElement:
        """``K = ê(r·asG, H1(T))`` — computed by the sender.

        With a warm GT cache (see :meth:`precompute_sender` with
        ``time_labels``) this is ``ê(asG, H1(T))^r`` — the same group
        element by bilinearity, obtained from one table-driven GT
        exponentiation instead of a hash-to-curve, a scalar
        multiplication, and a pairing.
        """
        cached = self._sender_gt.get((receiver_public.as_generator, time_label))
        if cached is not None:
            return cached ** r
        r_as_g = self.group.mul(receiver_public.as_generator, r)
        h_t = self.group.hash_to_g1(time_label, tag=H1_TAG)
        return self.group.pair(r_as_g, h_t)

    def _receiver_key(
        self,
        u_point: CurvePoint,
        private: int,
        update: TimeBoundKeyUpdate,
    ) -> GTElement:
        """``K' = ê(U, I_T)^a`` — computed by the receiver."""
        return self.group.pair(u_point, update.point) ** private

    # ------------------------------------------------------------------
    # Fixed-argument precomputation.
    # ------------------------------------------------------------------

    def precompute_sender(
        self,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        time_labels: Iterable[bytes] = (),
    ) -> None:
        """Warm the sender's fixed-argument caches for repeated encryption.

        Both scalar multiplications in :meth:`encrypt` — ``U = rG`` and
        ``r·asG`` — use fixed bases, so a sender addressing the same
        receiver repeatedly (or many receivers under one server) builds
        the tables once and every subsequent encryption takes the
        table-driven path automatically via ``group.mul``.

        ``time_labels`` unlocks the GT fast path: for each label ``T``
        the constant pairing ``g_{R,T} = ê(asG, H1(T))`` is computed
        once, cached, and given a windowed exponentiation table
        (:meth:`~repro.pairing.api.PairingGroup.precompute_gt`), after
        which :meth:`encrypt` for that (receiver, T) pair costs one
        table-driven fixed-base multiplication (``U = rG``) plus one
        table-driven GT exponentiation (``g_{R,T}^r``) — no pairing, no
        hash-to-curve — with byte-identical ciphertexts.
        :meth:`clear_sender_cache` frees the per-label entries.
        """
        self.group.precompute(server_public.generator)
        self.group.precompute(receiver_public.as_generator)
        time_labels = list(time_labels)
        if not time_labels:
            return
        # One set of Miller lines for asG amortizes across all labels.
        precomp = self.group.precompute_pairing(receiver_public.as_generator)
        for label in time_labels:
            key = (receiver_public.as_generator, label)
            g = self._sender_gt.get(key)
            if g is None:
                h_t = self.group.hash_to_g1(label, tag=H1_TAG)
                g = precomp.pair(h_t)
                self._sender_gt[key] = g
            self.group.precompute_gt(g)

    def clear_sender_cache(self) -> None:
        """Drop every cached ``g_{R,T}`` pairing (correctness unaffected).

        The matching GT exponentiation tables live on the group; call
        :meth:`~repro.pairing.api.PairingGroup.clear_precomputations`
        to free those too.
        """
        self._sender_gt.clear()

    # ------------------------------------------------------------------
    # Encryption / decryption (§5.1 verbatim).
    # ------------------------------------------------------------------

    def encrypt(
        self,
        message: bytes,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        time_label: bytes,
        rng: random.Random,
        verify_receiver_key: bool = True,
    ) -> TRECiphertext:
        """Encrypt ``message`` so it opens at/after ``time_label``.

        ``verify_receiver_key=False`` skips the step-1 pairing check for
        callers who have already validated (or certified) the key; the
        check costs two pairings, which E1 accounts separately.
        """
        if verify_receiver_key:
            receiver_public.ensure_well_formed(self.group, server_public)
        r = self.group.random_scalar(rng)
        u_point = self.group.mul(server_public.generator, r)
        k = self._sender_key(receiver_public, time_label, r)
        mask = self.group.mask_bytes(k, len(message), tag=H2_TAG)
        return TRECiphertext(u_point, xor_bytes(message, mask), time_label)

    def decrypt(
        self,
        ciphertext: TRECiphertext,
        receiver: UserKeyPair | int,
        update: TimeBoundKeyUpdate,
        server_public: ServerPublicKey | None = None,
    ) -> bytes:
        """Decrypt with the receiver's secret and the matching update.

        When ``server_public`` is given, the update is first
        self-authenticated (``ê(sG, H1(T)) == ê(G, I_T)``) and its label
        checked against the ciphertext — catching a wrong-epoch or forged
        update *before* producing garbage plaintext.  Without it, the
        method is the paper's bare two-step decryption.
        """
        private = receiver.private if isinstance(receiver, UserKeyPair) else receiver
        if server_public is not None:
            if update.time_label != ciphertext.time_label:
                raise UpdateVerificationError(
                    "update is for a different release time than the ciphertext"
                )
            update.ensure_valid(self.group, server_public)
        k = self._receiver_key(ciphertext.u_point, private, update)
        mask = self.group.mask_bytes(k, len(ciphertext.masked), tag=H2_TAG)
        return xor_bytes(ciphertext.masked, mask)

    def decrypt_batch(
        self,
        ciphertexts: list[TRECiphertext],
        receiver: UserKeyPair | int,
        update: TimeBoundKeyUpdate,
        server_public: ServerPublicKey | None = None,
        workers: int | str | None = None,
        chunk_size: int | None = None,
    ) -> list[bytes]:
        """Decrypt many ciphertexts bound to the *same* release time.

        This is the deployment-shaped hot path: one broadcast ``I_T``
        unlocks every ciphertext labelled ``T``, so the Miller-loop
        lines for ``I_T`` are computed once (the pairing is symmetric,
        so the shared update takes the fixed slot) and each ciphertext
        costs one line evaluation plus the ``^a`` exponentiation.
        Outputs are byte-identical to calling :meth:`decrypt` once per
        ciphertext; a ciphertext with a different label raises
        :class:`UpdateVerificationError` before any plaintext is
        produced.  ``server_public``, when given, self-authenticates
        the update once for the whole batch.

        ``workers > 1`` shards the batch across a process pool via
        :mod:`repro.parallel` (label checks and update verification
        still happen here, once, before any shard is dispatched); the
        plaintexts are byte-identical to the sequential path.
        ``workers="auto"`` lets :func:`repro.parallel.auto_workers`
        pick a count from the batch size and available CPUs (which may
        be sequential); ``None`` stays sequential for backward
        compatibility.  Note that pairing work done in workers is not
        reflected in this group's operation counters.
        """
        private = receiver.private if isinstance(receiver, UserKeyPair) else receiver
        for ciphertext in ciphertexts:
            if ciphertext.time_label != update.time_label:
                raise UpdateVerificationError(
                    "batch contains a ciphertext for a different release time"
                )
        if server_public is not None:
            update.ensure_valid(self.group, server_public)
        if workers == "auto":
            from repro.parallel import WORKER_WARMUP_WITH_TABLES_COST, auto_workers

            workers = auto_workers(
                len(ciphertexts), warmup=WORKER_WARMUP_WITH_TABLES_COST
            )
        if workers is not None and workers > 1 and len(ciphertexts) > 1:
            from repro.parallel import parallel_map, shard_secret

            # The receiver's scalar must reach the workers; it crosses
            # as wire-encoded bytes through the audited shard sanitizer
            # (RP303), never as a pickled object graph.
            setup = pack_chunks(
                shard_secret(private.to_bytes(self.group.scalar_bytes, "big")),
                update.to_bytes(self.group),
            )
            # Record the shared update's Miller lines once, here, and
            # ship them: workers install the blob instead of each
            # re-recording the same lines on their first chunk.  (No
            # lines to ship on family B — its loop has no cacheable
            # denominator-free form.)
            from repro.pairing.supersingular import FAMILY_A

            tables = (
                self.group.export_pairing_lines([update.point])
                if self.group.family == FAMILY_A
                else None
            )
            return parallel_map(
                "tre.decrypt",
                self.group,
                setup,
                [ciphertext.to_bytes(self.group) for ciphertext in ciphertexts],
                workers=workers,
                chunk_size=chunk_size,
                shared_tables=tables,
            )
        precomp = self.group.precompute_pairing(update.point)
        plaintexts = []
        for ciphertext in ciphertexts:
            k = precomp.pair(ciphertext.u_point) ** private
            mask = self.group.mask_bytes(k, len(ciphertext.masked), tag=H2_TAG)
            plaintexts.append(xor_bytes(ciphertext.masked, mask))
        return plaintexts

    # ------------------------------------------------------------------
    # KEM view (used by the hybrid and CCA layers).
    # ------------------------------------------------------------------

    def encapsulate(
        self,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        time_label: bytes,
        rng: random.Random,
        key_bytes: int = 32,
        verify_receiver_key: bool = True,
    ) -> tuple[bytes, CurvePoint]:
        """Produce ``(shared_key, U)``; the receiver recovers the key
        from ``U`` with :meth:`decapsulate` once the update is out."""
        if verify_receiver_key:
            receiver_public.ensure_well_formed(self.group, server_public)
        r = self.group.random_scalar(rng)
        u_point = self.group.mul(server_public.generator, r)
        k = self._sender_key(receiver_public, time_label, r)
        return self.group.mask_bytes(k, key_bytes, tag=H2_TAG), u_point

    def decapsulate(
        self,
        u_point: CurvePoint,
        receiver: UserKeyPair | int,
        update: TimeBoundKeyUpdate,
        key_bytes: int = 32,
    ) -> bytes:
        private = receiver.private if isinstance(receiver, UserKeyPair) else receiver
        k = self._receiver_key(u_point, private, update)
        return self.group.mask_bytes(k, key_bytes, tag=H2_TAG)
