"""REACT conversion of TRE (paper §5, pointer to Okamoto–Pointcheval [18]).

The alternative CCA upgrade the paper mentions.  REACT keeps the
asymmetric part *randomized* (unlike FO's derandomization) and adds a
hash check binding everything together:

Encrypt(M):
    R ←$ {0,1}^k                       (random "asymmetric plaintext")
    c1 = TRE-Encrypt(R)                 (fresh randomness r)
    K  = G(R)                           (session key)
    c2 = M ⊕ KDF_K(|M|)
    c3 = H(R, M, c1, c2)                (the REACT checksum)

Decrypt: recover R from c1, M from c2, and reject unless c3 matches.
REACT never re-runs the asymmetric encryption, so decryption is cheaper
than FO's (no extra scalar multiplication) — experiment E8 measures
exactly this trade.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.core.keys import ServerPublicKey, UserKeyPair, UserPublicKey
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.core.tre import TimedReleaseScheme, TRECiphertext
from repro.crypto.kdf import derive_key
from repro.encoding import pack_chunks, unpack_chunks, xor_bytes
from repro.errors import DecryptionError, EncodingError
from repro.pairing.api import PairingGroup
from repro.pairing.hashing import hash_bytes

_G_LABEL = "repro:REACT:G"
_H_TAG = "repro:REACT:H"
R_BYTES = 32
CHECK_BYTES = 32


@dataclass(frozen=True)
class ReactTRECiphertext:
    """``⟨c1, c2, c3⟩`` where ``c1`` is a plain TRE ciphertext of ``R``."""

    c1: TRECiphertext
    c2: bytes
    c3: bytes

    @property
    def time_label(self) -> bytes:
        return self.c1.time_label

    def to_bytes(self, group: PairingGroup) -> bytes:
        return pack_chunks(self.c1.to_bytes(group), self.c2, self.c3)

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "ReactTRECiphertext":
        chunks = unpack_chunks(data)
        if len(chunks) != 3:
            raise EncodingError("REACT ciphertext must have 3 components")
        return cls(TRECiphertext.from_bytes(group, chunks[0]), chunks[1], chunks[2])

    def size_bytes(self, group: PairingGroup) -> int:
        return len(self.to_bytes(group))


class ReactTimedReleaseScheme:
    """Chosen-ciphertext-secure TRE via the REACT conversion."""

    def __init__(self, group: PairingGroup):
        self.group = group
        self._base = TimedReleaseScheme(group)

    def precompute_sender(
        self,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        time_labels: Iterable[bytes] = (),
    ) -> None:
        """Warm the base scheme's sender fast paths (incl. GT tables)."""
        self._base.precompute_sender(
            receiver_public, server_public, time_labels=time_labels
        )

    def clear_sender_cache(self) -> None:
        self._base.clear_sender_cache()

    def _checksum(self, r_value: bytes, message: bytes, c1_bytes: bytes, c2: bytes) -> bytes:
        return hash_bytes(r_value, message, c1_bytes, c2, tag=_H_TAG)[:CHECK_BYTES]

    def encrypt(
        self,
        message: bytes,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        time_label: bytes,
        rng: random.Random,
        verify_receiver_key: bool = True,
    ) -> ReactTRECiphertext:
        r_value = rng.randbytes(R_BYTES)
        c1 = self._base.encrypt(
            r_value,
            receiver_public,
            server_public,
            time_label,
            rng,
            verify_receiver_key=verify_receiver_key,
        )
        session_key = derive_key(r_value, 32, _G_LABEL)
        c2 = xor_bytes(message, derive_key(session_key, len(message), _G_LABEL))
        c3 = self._checksum(r_value, message, c1.to_bytes(self.group), c2)
        return ReactTRECiphertext(c1, c2, c3)

    def decrypt(
        self,
        ciphertext: ReactTRECiphertext,
        receiver: UserKeyPair | int,
        update: TimeBoundKeyUpdate,
        server_public: ServerPublicKey,
    ) -> bytes:
        r_value = self._base.decrypt(
            ciphertext.c1, receiver, update, server_public
        )
        if len(r_value) != R_BYTES:
            raise DecryptionError("malformed REACT asymmetric component")
        session_key = derive_key(r_value, 32, _G_LABEL)
        message = xor_bytes(
            ciphertext.c2, derive_key(session_key, len(ciphertext.c2), _G_LABEL)
        )
        expected = self._checksum(
            r_value, message, ciphertext.c1.to_bytes(self.group), ciphertext.c2
        )
        if expected != ciphertext.c3:
            raise DecryptionError("REACT checksum mismatch")
        return message
