"""Policy-lock encryption — the generalization of §5.3.2.

The time server "essentially sends out a signed message on T ∈ {0,1}*";
nothing in the construction cares that T denotes a time.  A *witness*
server can sign arbitrary condition strings ("It is an emergency",
"The receiver has completed task X"), and a sender can lock a message
under any such condition.

Beyond the paper's single-condition sketch, this module supports:

* **Conjunction** (ALL of ``C_1..C_m``): encrypt against the point sum
  ``Σ H1(C_j)``.  By bilinearity the receiver needs the *sum of the
  witness signatures* ``Σ s·H1(C_j) = s·Σ H1(C_j)``, i.e. every single
  condition attested — one pairing regardless of ``m``.
* **Disjunction** (ANY of ``C_1..C_m``): encapsulate the same session
  key once per condition; any one attestation opens the message.
* **Threshold** (any ``t`` of ``C_1..C_m``): Shamir-share the session
  key over ``Z_q`` and encapsulate one share per condition; any ``t``
  attested conditions reconstruct the key, ``t-1`` reveal nothing.
  (AND and OR are the ``t=m`` and ``t=1`` corners, kept as dedicated
  code paths because they are cheaper.)

The witness server is just a :class:`~repro.core.timeserver.PassiveTimeServer`
signing condition strings instead of time strings, so everything
(self-authentication, single broadcast for all users, passivity)
carries over.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.keys import ServerPublicKey, UserKeyPair, UserPublicKey
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.core.tre import H1_TAG, H2_TAG
from repro.crypto.authenc import aead_decrypt, aead_encrypt
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks, unpack_chunks, xor_bytes
from repro.errors import EncodingError, PolicyError
from repro.pairing.api import PairingGroup

_KEY_BYTES = 32


@dataclass(frozen=True)
class ConjunctionCiphertext:
    """Locked under ALL listed conditions: ``⟨U, V, (C_1..C_m)⟩``."""

    u_point: CurvePoint
    masked: bytes
    conditions: tuple[bytes, ...]

    def to_bytes(self, group: PairingGroup) -> bytes:
        return pack_chunks(
            group.point_to_bytes(self.u_point),
            self.masked,
            pack_chunks(*self.conditions),
        )

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "ConjunctionCiphertext":
        chunks = unpack_chunks(data)
        if len(chunks) != 3:
            raise EncodingError("conjunction ciphertext must have 3 components")
        return cls(
            group.point_from_bytes(chunks[0]),
            chunks[1],
            tuple(unpack_chunks(chunks[2])),
        )


@dataclass(frozen=True)
class DisjunctionCiphertext:
    """Locked under ANY listed condition: one ``U_j`` per alternative."""

    u_points: tuple[CurvePoint, ...]
    sealed: bytes
    conditions: tuple[bytes, ...]


class PolicyLockScheme:
    """Condition-locked public-key encryption over a witness server."""

    def __init__(self, group: PairingGroup):
        self.group = group

    def _policy_point(self, conditions: tuple[bytes, ...]) -> CurvePoint:
        if not conditions:
            raise PolicyError("policy needs at least one condition")
        if len(set(conditions)) != len(conditions):
            raise PolicyError("duplicate conditions in policy")
        total = self.group.identity()
        for condition in conditions:
            total = self.group.add(
                total, self.group.hash_to_g1(condition, tag=H1_TAG)
            )
        return total

    # ------------------------------------------------------------------
    # Conjunction (ALL conditions).
    # ------------------------------------------------------------------

    def encrypt_all(
        self,
        message: bytes,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        conditions: list[bytes],
        rng: random.Random,
        verify_receiver_key: bool = True,
    ) -> ConjunctionCiphertext:
        """Lock ``message`` until every condition has been attested."""
        conditions = tuple(conditions)
        if verify_receiver_key:
            receiver_public.ensure_well_formed(self.group, server_public)
        policy_point = self._policy_point(conditions)
        r = self.group.random_scalar(rng)
        u_point = self.group.mul(server_public.generator, r)
        k = self.group.pair(
            self.group.mul(receiver_public.as_generator, r), policy_point
        )
        mask = self.group.mask_bytes(k, len(message), tag=H2_TAG)
        return ConjunctionCiphertext(u_point, xor_bytes(message, mask), conditions)

    def decrypt_all(
        self,
        ciphertext: ConjunctionCiphertext,
        receiver: UserKeyPair | int,
        attestations: list[TimeBoundKeyUpdate],
        server_public: ServerPublicKey | None = None,
    ) -> bytes:
        """Open with one witness attestation per condition, any order."""
        private = receiver.private if isinstance(receiver, UserKeyPair) else receiver
        by_label = {att.time_label: att for att in attestations}
        if set(by_label) != set(ciphertext.conditions):
            missing = set(ciphertext.conditions) - set(by_label)
            raise PolicyError(f"missing attestations for {sorted(missing)}")
        combined = self.group.identity()
        for condition in ciphertext.conditions:
            attestation = by_label[condition]
            if server_public is not None:
                attestation.ensure_valid(self.group, server_public)
            combined = self.group.add(combined, attestation.point)
        k = self.group.pair(ciphertext.u_point, combined) ** private
        mask = self.group.mask_bytes(k, len(ciphertext.masked), tag=H2_TAG)
        return xor_bytes(ciphertext.masked, mask)

    # ------------------------------------------------------------------
    # Disjunction (ANY condition).
    # ------------------------------------------------------------------

    def encrypt_any(
        self,
        message: bytes,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        conditions: list[bytes],
        rng: random.Random,
        verify_receiver_key: bool = True,
    ) -> DisjunctionCiphertext:
        """Lock ``message`` so any single attested condition opens it.

        The session key is encapsulated independently under each
        condition with fresh randomness; the payload is sealed once
        under an authenticated DEM so a wrong branch fails loudly.
        """
        conditions = tuple(conditions)
        if not conditions:
            raise PolicyError("policy needs at least one condition")
        if verify_receiver_key:
            receiver_public.ensure_well_formed(self.group, server_public)
        session_key = rng.randbytes(_KEY_BYTES)
        u_points = []
        masked_keys = []
        for condition in conditions:
            r = self.group.random_scalar(rng)
            u_points.append(self.group.mul(server_public.generator, r))
            k = self.group.pair(
                self.group.mul(receiver_public.as_generator, r),
                self.group.hash_to_g1(condition, tag=H1_TAG),
            )
            masked_keys.append(
                xor_bytes(session_key, self.group.mask_bytes(k, _KEY_BYTES, tag=H2_TAG))
            )
        sealed = aead_encrypt(
            session_key, b"policy", message, associated_data=pack_chunks(*conditions)
        )
        # Masked per-branch keys ride inside `sealed`'s framing.
        blob = pack_chunks(pack_chunks(*masked_keys), sealed)
        return DisjunctionCiphertext(tuple(u_points), blob, conditions)

    def decrypt_any(
        self,
        ciphertext: DisjunctionCiphertext,
        receiver: UserKeyPair | int,
        attestation: TimeBoundKeyUpdate,
        server_public: ServerPublicKey | None = None,
    ) -> bytes:
        """Open with a single attestation for any one listed condition."""
        private = receiver.private if isinstance(receiver, UserKeyPair) else receiver
        if attestation.time_label not in ciphertext.conditions:
            raise PolicyError(
                f"attestation {attestation.time_label!r} not in this policy"
            )
        if server_public is not None:
            attestation.ensure_valid(self.group, server_public)
        index = ciphertext.conditions.index(attestation.time_label)
        masked_blob, sealed = unpack_chunks(ciphertext.sealed)
        masked_keys = unpack_chunks(masked_blob)
        k = self.group.pair(ciphertext.u_points[index], attestation.point) ** private
        session_key = xor_bytes(
            masked_keys[index], self.group.mask_bytes(k, _KEY_BYTES, tag=H2_TAG)
        )
        return aead_decrypt(
            session_key,
            b"policy",
            sealed,
            associated_data=pack_chunks(*ciphertext.conditions),
        )


@dataclass(frozen=True)
class ThresholdPolicyCiphertext:
    """Locked under any ``threshold`` of the listed conditions."""

    threshold: int
    u_points: tuple[CurvePoint, ...]
    sealed: bytes
    conditions: tuple[bytes, ...]


class ThresholdPolicyScheme:
    """t-of-m condition locks via Shamir sharing of the session key."""

    def __init__(self, group: PairingGroup):
        self.group = group
        self._base = PolicyLockScheme(group)

    def encrypt(
        self,
        message: bytes,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        conditions: list[bytes],
        threshold: int,
        rng: random.Random,
        verify_receiver_key: bool = True,
    ) -> ThresholdPolicyCiphertext:
        """Lock ``message`` so any ``threshold`` attested conditions open it.

        The session key is a random scalar shared with a degree-(t-1)
        polynomial; share ``i`` (at x = i+1) is masked under condition
        ``C_i`` exactly like a single-condition TRE encapsulation.
        """
        conditions = tuple(conditions)
        if not 1 <= threshold <= len(conditions):
            raise PolicyError("need 1 <= threshold <= number of conditions")
        if len(set(conditions)) != len(conditions):
            raise PolicyError("duplicate conditions in policy")
        if verify_receiver_key:
            receiver_public.ensure_well_formed(self.group, server_public)

        q = self.group.q
        coefficients = [self.group.random_scalar(rng) for _ in range(threshold)]
        session_secret = coefficients[0]

        def share_at(x: int) -> int:
            value = 0
            for coefficient in reversed(coefficients):
                value = (value * x + coefficient) % q
            return value

        u_points = []
        masked_shares = []
        for index, condition in enumerate(conditions):
            r = self.group.random_scalar(rng)
            u_points.append(self.group.mul(server_public.generator, r))
            k = self.group.pair(
                self.group.mul(receiver_public.as_generator, r),
                self.group.hash_to_g1(condition, tag=H1_TAG),
            )
            share = share_at(index + 1)
            share_bytes = share.to_bytes(self.group.scalar_bytes + 1, "big")
            masked_shares.append(xor_bytes(
                share_bytes,
                self.group.mask_bytes(k, len(share_bytes), tag=H2_TAG),
            ))

        session_key = session_secret.to_bytes(self.group.scalar_bytes + 1, "big")
        sealed = aead_encrypt(
            session_key, b"tpolicy", message,
            associated_data=pack_chunks(threshold.to_bytes(2, "big"), *conditions),
        )
        blob = pack_chunks(pack_chunks(*masked_shares), sealed)
        return ThresholdPolicyCiphertext(
            threshold, tuple(u_points), blob, conditions
        )

    def decrypt(
        self,
        ciphertext: ThresholdPolicyCiphertext,
        receiver: UserKeyPair | int,
        attestations: list[TimeBoundKeyUpdate],
        server_public: ServerPublicKey | None = None,
    ) -> bytes:
        """Open with any ``threshold`` distinct attested conditions."""
        from repro.core.threshold import lagrange_coefficient_at_zero

        private = receiver.private if isinstance(receiver, UserKeyPair) else receiver
        by_label = {}
        for attestation in attestations:
            if attestation.time_label in ciphertext.conditions:
                by_label.setdefault(attestation.time_label, attestation)
        if len(by_label) < ciphertext.threshold:
            raise PolicyError(
                f"need {ciphertext.threshold} attested conditions, "
                f"have {len(by_label)}"
            )
        masked_blob, sealed = unpack_chunks(ciphertext.sealed)
        masked_shares = unpack_chunks(masked_blob)

        q = self.group.q
        recovered: dict[int, int] = {}
        for label, attestation in list(by_label.items())[: ciphertext.threshold]:
            if server_public is not None:
                attestation.ensure_valid(self.group, server_public)
            index = ciphertext.conditions.index(label)
            k = self.group.pair(
                ciphertext.u_points[index], attestation.point
            ) ** private
            share_bytes = xor_bytes(
                masked_shares[index],
                self.group.mask_bytes(
                    k, len(masked_shares[index]), tag=H2_TAG
                ),
            )
            recovered[index + 1] = int.from_bytes(share_bytes, "big") % q

        xs = sorted(recovered)
        secret = 0
        for x in xs:
            coefficient = lagrange_coefficient_at_zero(xs, x, q)
            secret = (secret + coefficient * recovered[x]) % q
        session_key = secret.to_bytes(self.group.scalar_bytes + 1, "big")
        return aead_decrypt(
            session_key, b"tpolicy", sealed,
            associated_data=pack_chunks(
                ciphertext.threshold.to_bytes(2, "big"), *ciphertext.conditions
            ),
        )
