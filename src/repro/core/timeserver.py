"""The completely passive time server (paper §3).

The server's entire job is:

1. periodically output a *time-bound key update* ``I_T = s·H1(T)`` for
   the current time string ``T`` (a BLS signature on ``T``), and
2. keep an archive of old updates at a publicly accessible place so a
   receiver who missed a broadcast can still look it up.

It holds **no** per-user state, performs **no** interaction with senders
or receivers, and need not pre-publish anything for future instants —
footnote 4: it "can generate a key update for any particular instant
directly using its private key".  The trust assumptions from §3 are
enforced here operationally: the server refuses to *publish* an update
whose time has not yet arrived on its clock (``issue_update`` exists
separately to model a corrupt server in the tests).

Time strings are arbitrary bytes, exactly as in the paper.  For epoch
maths (key insulation, simulations) :func:`epoch_label` provides a
canonical, lexicographically ordered label family.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.bls import BLSSignatureScheme
from repro.core.keys import ServerKeyPair, ServerPublicKey
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks, unpack_chunks
from repro.errors import (
    EncodingError,
    UpdateNotAvailableError,
    UpdateVerificationError,
)
from repro.pairing.api import PairingGroup


def epoch_label(epoch: int, prefix: str = "epoch") -> bytes:
    """A canonical label for integer epochs, ordered lexicographically."""
    if epoch < 0:
        raise ValueError("epochs are non-negative")
    return f"{prefix}:{epoch:012d}".encode()


@dataclass(frozen=True)
class TimeBoundKeyUpdate:
    """``I_T = s·H1(T)`` — identical for all users, self-authenticating."""

    time_label: bytes
    point: CurvePoint

    def verify(self, group: PairingGroup, server_public: ServerPublicKey) -> bool:
        """Anyone can check ``ê(sG, H1(T)) == ê(G, I_T)`` (§5.1)."""
        return BLSSignatureScheme(group).verify(
            server_public, self.time_label, self.point
        )

    def ensure_valid(
        self, group: PairingGroup, server_public: ServerPublicKey
    ) -> None:
        if not self.verify(group, server_public):
            raise UpdateVerificationError(
                f"update for {self.time_label!r} failed self-authentication"
            )

    def to_bytes(self, group: PairingGroup) -> bytes:
        return pack_chunks(self.time_label, group.point_to_bytes(self.point))

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "TimeBoundKeyUpdate":
        chunks = unpack_chunks(data)
        if len(chunks) != 2:
            raise EncodingError("update must have 2 components")
        return cls(chunks[0], group.point_from_bytes(chunks[1]))


class PassiveTimeServer:
    """A trusted-but-passive time reference (the paper's GPS analogy).

    Parameters
    ----------
    group:
        The pairing group shared by everyone.
    rng:
        Randomness for key generation (only used at construction).
    keypair:
        Optionally supply an existing :class:`ServerKeyPair`.
    clock:
        Optional callable returning the current integer epoch.  When
        given, :meth:`publish_update` enforces the §3 trust assumption
        "do not give out any I_T before its release time" for labels
        created by :func:`epoch_label`.
    """

    def __init__(
        self,
        group: PairingGroup,
        rng: random.Random | None = None,
        keypair: ServerKeyPair | None = None,
        clock=None,
    ):
        if keypair is None:
            if rng is None:
                raise ValueError("need an rng or an existing keypair")
            keypair = ServerKeyPair.generate(group, rng)
        self.group = group
        self._keypair = keypair
        self._bls = BLSSignatureScheme(group)
        self._clock = clock
        # The public archive of past updates (§3: "keep a list of old key
        # updates ... at a publicly accessible place").
        self._archive: dict[bytes, TimeBoundKeyUpdate] = {}
        self.updates_published = 0
        self.bytes_broadcast = 0

    @property
    def public_key(self) -> ServerPublicKey:
        return self._keypair.public

    # ------------------------------------------------------------------
    # Update generation.
    # ------------------------------------------------------------------

    def issue_update(self, time_label: bytes) -> TimeBoundKeyUpdate:
        """Sign ``T`` directly from the private key (footnote 4).

        This is the raw capability — no release-time policy.  Tests use
        it to model a colluding/corrupt server; honest operation goes
        through :meth:`publish_update`.
        """
        point = self._bls.sign(self._keypair, time_label)
        return TimeBoundKeyUpdate(time_label, point)

    def publish_update(self, time_label: bytes) -> TimeBoundKeyUpdate:
        """Generate, archive and return the single broadcast for ``T``.

        One update serves *every* receiver — the call is O(1) in the
        number of users, which experiment E2 measures against the
        per-user baselines.
        """
        self._enforce_release_policy(time_label)
        if time_label in self._archive:
            return self._archive[time_label]
        update = self.issue_update(time_label)
        self._archive[time_label] = update
        self.updates_published += 1
        self.bytes_broadcast += len(update.to_bytes(self.group))
        return update

    def _enforce_release_policy(self, time_label: bytes) -> None:
        if self._clock is None:
            return
        try:
            epoch = int(time_label.rsplit(b":", 1)[-1])
        except ValueError:
            return  # Free-form labels carry no enforceable ordering.
        now = self._clock()
        if epoch > now:
            raise UpdateNotAvailableError(
                f"refusing to publish update for epoch {epoch} at time {now}"
            )

    # ------------------------------------------------------------------
    # The public archive.
    # ------------------------------------------------------------------

    def lookup(self, time_label: bytes) -> TimeBoundKeyUpdate:
        """Fetch an old update whose release time has passed (§3)."""
        try:
            return self._archive[time_label]
        except KeyError:
            raise UpdateNotAvailableError(
                f"no published update for {time_label!r}"
            )

    def archive_labels(self) -> list[bytes]:
        return sorted(self._archive)

    def __repr__(self) -> str:
        return (
            f"PassiveTimeServer(updates={self.updates_published}, "
            f"archive={len(self._archive)})"
        )


def verify_archive(
    group: PairingGroup,
    server_public,
    updates: list[TimeBoundKeyUpdate],
    workers: int | str | None = None,
    chunk_size: int | None = None,
) -> list[bytes]:
    """Archive catch-up: authenticate a backlog update-by-update.

    Verifies each update's ``ê(sG, H1(T)) == ê(G, I_T)`` individually,
    but with the Miller lines of the fixed ``(G, sG)`` computed once
    for the whole backlog.  Returns the labels that FAILED (empty list
    == all authentic).  Complements :func:`batch_verify_updates`, which
    is cheaper (two pairings total) but only yields a yes/no for the
    whole batch — use that first and fall back to this to pinpoint the
    bad update(s).

    ``workers > 1`` shards the backlog across a process pool via
    :mod:`repro.parallel` (each worker precomputes the ``(G, sG)``
    lines once per chunk); the returned labels are identical to the
    sequential path, though worker pairings do not show up in this
    group's operation counters.  ``workers="auto"`` lets
    :func:`repro.parallel.auto_workers` pick a count from the backlog
    size and available CPUs; ``None`` stays sequential.
    """
    if workers == "auto":
        from repro.parallel import auto_workers

        workers = auto_workers(len(updates))
    if workers is not None and workers > 1 and len(updates) > 1:
        from repro.parallel import parallel_map

        flags = parallel_map(
            "timeserver.verify_update",
            group,
            server_public.to_bytes(group),
            [update.to_bytes(group) for update in updates],
            workers=workers,
            chunk_size=chunk_size,
        )
        return [
            update.time_label
            for update, flag in zip(updates, flags)
            if flag != b"\x01"
        ]
    bls = BLSSignatureScheme(group)
    bls.precompute_public(server_public)
    return [
        update.time_label
        for update in updates
        if not bls.verify(server_public, update.time_label, update.point)
    ]


def batch_verify_updates(
    group: PairingGroup,
    server_public,
    updates: list[TimeBoundKeyUpdate],
    rng,
) -> bool:
    """Verify many archived updates with two pairings total.

    Small-exponent batch BLS verification (see
    :meth:`repro.core.bls.BLSSignatureScheme.batch_verify`).  The
    offline-catch-up companion to the §3 archive: a receiver that
    missed ``n`` broadcasts authenticates the whole backlog at
    essentially the cost of one.
    """
    bls = BLSSignatureScheme(group)
    return bls.batch_verify(
        server_public,
        [update.time_label for update in updates],
        [update.point for update in updates],
        rng,
    )
