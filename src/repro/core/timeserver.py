"""The completely passive time server (paper §3).

The server's entire job is:

1. periodically output a *time-bound key update* ``I_T = s·H1(T)`` for
   the current time string ``T`` (a BLS signature on ``T``), and
2. keep an archive of old updates at a publicly accessible place so a
   receiver who missed a broadcast can still look it up.

It holds **no** per-user state, performs **no** interaction with senders
or receivers, and need not pre-publish anything for future instants —
footnote 4: it "can generate a key update for any particular instant
directly using its private key".  The trust assumptions from §3 are
enforced here operationally: the server refuses to *publish* an update
whose time has not yet arrived on its clock (``issue_update`` exists
separately to model a corrupt server in the tests).

Time strings are arbitrary bytes, exactly as in the paper.  For epoch
maths (key insulation, simulations) :func:`epoch_label` provides a
canonical, lexicographically ordered label family.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.bls import BLSSignatureScheme
from repro.core.keys import ServerKeyPair, ServerPublicKey
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks, unpack_chunks
from repro.errors import (
    EncodingError,
    ReproError,
    UpdateNotAvailableError,
    UpdateVerificationError,
)
from repro.pairing.api import PairingGroup


def epoch_label(epoch: int, prefix: str = "epoch") -> bytes:
    """A canonical label for integer epochs, ordered lexicographically."""
    if epoch < 0:
        raise ValueError("epochs are non-negative")
    return f"{prefix}:{epoch:012d}".encode()


@dataclass(frozen=True)
class TimeBoundKeyUpdate:
    """``I_T = s·H1(T)`` — identical for all users, self-authenticating."""

    time_label: bytes
    point: CurvePoint

    def verify(self, group: PairingGroup, server_public: ServerPublicKey) -> bool:
        """Anyone can check ``ê(sG, H1(T)) == ê(G, I_T)`` (§5.1)."""
        return BLSSignatureScheme(group).verify(
            server_public, self.time_label, self.point
        )

    def ensure_valid(
        self, group: PairingGroup, server_public: ServerPublicKey
    ) -> None:
        if not self.verify(group, server_public):
            raise UpdateVerificationError(
                f"update for {self.time_label!r} failed self-authentication"
            )

    def to_bytes(self, group: PairingGroup) -> bytes:
        return pack_chunks(self.time_label, group.point_to_bytes(self.point))

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "TimeBoundKeyUpdate":
        chunks = unpack_chunks(data)
        if len(chunks) != 2:
            raise EncodingError("update must have 2 components")
        return cls(chunks[0], group.point_from_bytes(chunks[1]))


class PassiveTimeServer:
    """A trusted-but-passive time reference (the paper's GPS analogy).

    Parameters
    ----------
    group:
        The pairing group shared by everyone.
    rng:
        Randomness for key generation (only used at construction).
    keypair:
        Optionally supply an existing :class:`ServerKeyPair`.
    clock:
        Optional callable returning the current integer epoch.  When
        given, :meth:`publish_update` enforces the §3 trust assumption
        "do not give out any I_T before its release time" for labels
        created by :func:`epoch_label`.  Injecting the clock keeps the
        node, the simulator and the tests off the wall clock entirely.
    max_clock_skew:
        Epochs of forward tolerance in the release policy.  A publish
        for epoch ``now + k`` with ``k <= max_clock_skew`` is allowed —
        the deterministic treatment of near-boundary publishes when the
        caller's clock and the server's clock disagree slightly.
        Defaults to 0 (strict).
    """

    def __init__(
        self,
        group: PairingGroup,
        rng: random.Random | None = None,
        keypair: ServerKeyPair | None = None,
        clock=None,
        max_clock_skew: int = 0,
    ):
        if keypair is None:
            if rng is None:
                raise ValueError("need an rng or an existing keypair")
            keypair = ServerKeyPair.generate(group, rng)
        if max_clock_skew < 0:
            raise ValueError("max_clock_skew is a non-negative epoch count")
        self.group = group
        self._keypair = keypair
        self._bls = BLSSignatureScheme(group)
        self._clock = clock
        self.max_clock_skew = max_clock_skew
        # The public archive of past updates (§3: "keep a list of old key
        # updates ... at a publicly accessible place").
        self._archive: dict[bytes, TimeBoundKeyUpdate] = {}
        self.updates_published = 0
        self.bytes_broadcast = 0

    @property
    def public_key(self) -> ServerPublicKey:
        return self._keypair.public

    # ------------------------------------------------------------------
    # Update generation.
    # ------------------------------------------------------------------

    def issue_update(self, time_label: bytes) -> TimeBoundKeyUpdate:
        """Sign ``T`` directly from the private key (footnote 4).

        This is the raw capability — no release-time policy.  Tests use
        it to model a colluding/corrupt server; honest operation goes
        through :meth:`publish_update`.
        """
        point = self._bls.sign(self._keypair, time_label)
        return TimeBoundKeyUpdate(time_label, point)

    def publish_update(self, time_label: bytes) -> TimeBoundKeyUpdate:
        """Generate, archive and return the single broadcast for ``T``.

        One update serves *every* receiver — the call is O(1) in the
        number of users, which experiment E2 measures against the
        per-user baselines.
        """
        self._enforce_release_policy(time_label)
        if time_label in self._archive:
            return self._archive[time_label]
        update = self.issue_update(time_label)
        self._archive[time_label] = update
        self.updates_published += 1
        self.bytes_broadcast += len(update.to_bytes(self.group))
        return update

    def _enforce_release_policy(self, time_label: bytes) -> None:
        if self._clock is None:
            return
        try:
            epoch = int(time_label.rsplit(b":", 1)[-1])
        except ValueError:
            return  # Free-form labels carry no enforceable ordering.
        now = self._clock()
        if epoch > now + self.max_clock_skew:
            raise UpdateNotAvailableError(
                f"refusing to publish update for epoch {epoch} at time {now} "
                f"(skew tolerance {self.max_clock_skew})"
            )

    # ------------------------------------------------------------------
    # The public archive.
    # ------------------------------------------------------------------

    def lookup(self, time_label: bytes) -> TimeBoundKeyUpdate:
        """Fetch an old update whose release time has passed (§3)."""
        try:
            return self._archive[time_label]
        except KeyError:
            raise UpdateNotAvailableError(
                f"no published update for {time_label!r}"
            )

    def archive_labels(self) -> list[bytes]:
        return sorted(self._archive)

    def archive_since(self, after: bytes = b"") -> list[TimeBoundKeyUpdate]:
        """Archived updates with labels strictly after ``after``, sorted.

        The catch-up primitive: a receiver that saw nothing since label
        ``after`` fetches exactly the backlog it missed.  Labels from
        :func:`epoch_label` sort chronologically; free-form labels sort
        lexicographically, which is still deterministic.
        """
        return [self._archive[label] for label in sorted(self._archive)
                if label > after]

    def snapshot_archive(self) -> bytes:
        """Serialize the public archive for crash/restart recovery.

        Only the archive (public data) is serialized — the keypair is
        the supervisor's responsibility, so no secret ever enters the
        snapshot.  Restore with :meth:`restore_archive`.
        """
        return pack_chunks(
            *(self._archive[label].to_bytes(self.group)
              for label in sorted(self._archive))
        )

    def restore_archive(self, snapshot: bytes) -> int:
        """Re-load an archive snapshot, verifying every update first.

        Each update must self-authenticate under *this* server's public
        key — a corrupted or foreign snapshot raises
        :class:`UpdateVerificationError` rather than poisoning the
        archive.  Returns the number of updates restored (existing
        entries are kept; counters are not replayed).
        """
        updates = [
            TimeBoundKeyUpdate.from_bytes(self.group, blob)
            for blob in unpack_chunks(snapshot)
        ]
        for update in updates:
            update.ensure_valid(self.group, self.public_key)
        restored = 0
        for update in updates:
            if update.time_label not in self._archive:
                self._archive[update.time_label] = update
                restored += 1
        return restored

    def __repr__(self) -> str:
        return (
            f"PassiveTimeServer(updates={self.updates_published}, "
            f"archive={len(self._archive)})"
        )


def verify_archive(
    group: PairingGroup,
    server_public,
    updates: list[TimeBoundKeyUpdate],
    workers: int | str | None = None,
    chunk_size: int | None = None,
) -> list[bytes]:
    """Archive catch-up: authenticate a backlog update-by-update.

    Verifies each update's ``ê(sG, H1(T)) == ê(G, I_T)`` individually,
    but with the Miller lines of the fixed ``(G, sG)`` computed once
    for the whole backlog.  Returns the labels that FAILED (empty list
    == all authentic).  Complements :func:`batch_verify_updates`, which
    is cheaper (two pairings total) but only yields a yes/no for the
    whole batch — use that first and fall back to this to pinpoint the
    bad update(s).

    ``workers > 1`` shards the backlog across a process pool via
    :mod:`repro.parallel` (each worker precomputes the ``(G, sG)``
    lines once per chunk); the returned labels are identical to the
    sequential path, though worker pairings do not show up in this
    group's operation counters.  ``workers="auto"`` lets
    :func:`repro.parallel.auto_workers` pick a count from the backlog
    size and available CPUs; ``None`` stays sequential.

    Partial-failure semantics: an update that cannot even be *checked*
    (a malformed point, a group mismatch, an identity-element input the
    verifier rejects) counts as failed and verification continues with
    the rest of the backlog — it never aborts the whole call.  Both
    paths apply the same per-update containment, so the sequential and
    parallel answers are identical even with malformed updates mixed
    into the backlog.
    """
    if workers == "auto":
        from repro.parallel import WORKER_WARMUP_WITH_TABLES_COST, auto_workers

        workers = auto_workers(
            len(updates), warmup=WORKER_WARMUP_WITH_TABLES_COST
        )
    if workers is not None and workers > 1 and len(updates) > 1:
        from repro.parallel import parallel_map
        from repro.pairing.supersingular import FAMILY_A

        # An update that cannot be wire-encoded (e.g. a point from the
        # wrong group) is failed here, before dispatch, instead of
        # aborting the whole shard — same containment as the worker's
        # per-update decode/verify catch.
        encoded: list[bytes | None] = []
        for update in updates:
            try:
                encoded.append(update.to_bytes(group))
            except ReproError:
                encoded.append(None)
        payloads = [blob for blob in encoded if blob is not None]
        # Record the fixed (G, sG) verification lines once and ship
        # them; workers install the blob instead of re-recording per
        # worker (family B has no recordable lines).
        tables = (
            group.export_pairing_lines(
                [server_public.s_generator, server_public.generator]
            )
            if group.family == FAMILY_A
            else None
        )
        flags = iter(
            parallel_map(
                "timeserver.verify_update",
                group,
                server_public.to_bytes(group),
                payloads,
                workers=workers,
                chunk_size=chunk_size,
                shared_tables=tables,
            )
            if payloads
            else ()
        )
        return [
            update.time_label
            for update, blob in zip(updates, encoded)
            if blob is None or next(flags) != b"\x01"
        ]
    bls = BLSSignatureScheme(group)
    bls.precompute_public(server_public)
    failed = []
    for update in updates:
        try:
            ok = bls.verify(server_public, update.time_label, update.point)
        except ReproError:
            # An uncheckable update is a failed update, not an abort:
            # the caller learns *which* labels are bad either way.
            ok = False
        if not ok:
            failed.append(update.time_label)
    return failed


def batch_verify_updates(
    group: PairingGroup,
    server_public,
    updates: list[TimeBoundKeyUpdate],
    rng,
) -> bool:
    """Verify many archived updates with two pairings total.

    Small-exponent batch BLS verification (see
    :meth:`repro.core.bls.BLSSignatureScheme.batch_verify`).  The
    offline-catch-up companion to the §3 archive: a receiver that
    missed ``n`` broadcasts authenticates the whole backlog at
    essentially the cost of one.
    """
    bls = BLSSignatureScheme(group)
    return bls.batch_verify(
        server_public,
        [update.time_label for update in updates],
        [update.point for update in updates],
        rng,
    )
