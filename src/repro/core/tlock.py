"""Timelock encryption over a Type-3 pairing — the paper's modern descendant.

The drand network runs, at scale, almost exactly the paper's §5.1
architecture: a (threshold) beacon periodically publishes a BLS
signature on the round number — a *time-bound key update*, identical
for all users, self-authenticating, with the signers unaware of who
consumes it — and "tlock" encrypts messages to a future round so that
the round signature is the decryption key.  The differences are purely
substrate: a Type-3 pairing (BN254 here; drand uses BLS12-381), round
numbers instead of free-form time strings, and signatures in ``G1``
with public keys in ``G2``.

Two schemes:

* :class:`TimelockEncryption` — tlock proper: identity-based on the
  round number alone.  *Anyone* holding the round signature can
  decrypt; this is the paper's ID-TRE stance (escrow towards the
  beacon) that drand deliberately accepts.
* :class:`Type3TimedRelease` — the paper's receiver-bound TRE
  translated to Type-3: receiver key pair ``(a, (a·G1, a·pk))``; both
  the private key and the round signature are needed, and the beacon
  cannot read anything.  The §5.1 well-formedness check becomes
  ``ê(a·G1, pk) == ê(G1, a·pk)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.authenc import aead_decrypt, aead_encrypt
from repro.crypto.redact import redacted_repr
from repro.ec.point import CurvePoint
from repro.errors import (
    KeyValidationError,
    UpdateNotAvailableError,
    UpdateVerificationError,
)
from repro.pairing.bn254 import BN254, bn254


def round_label(round_number: int) -> bytes:
    """drand-style identity for a round: its 8-byte big-endian encoding."""
    return round_number.to_bytes(8, "big")


@dataclass(frozen=True)
class RoundSignature:
    """``σ_r = s·H1(round)`` — the time-bound key update of round ``r``."""

    round_number: int
    point: CurvePoint  # in G1


class DrandStyleBeacon:
    """A passive, round-based randomness/time beacon.

    The secret ``s`` would be threshold-shared in a real network
    (:mod:`repro.core.threshold` demonstrates the sharing arithmetic);
    one holder suffices for the cost model.
    """

    def __init__(self, engine: BN254, rng: random.Random, period_seconds: int = 30):
        self.engine = engine
        self._secret = engine.random_scalar(rng)
        self.public_key = engine.g2 * self._secret  # in G2
        self.period_seconds = period_seconds
        self._published: dict[int, RoundSignature] = {}
        self.latest_round = 0

    def publish_round(self, round_number: int) -> RoundSignature:
        """Emit (and archive) the signature for ``round_number``."""
        if round_number in self._published:
            return self._published[round_number]
        h = self.engine.hash_to_g1(round_label(round_number))
        signature = RoundSignature(round_number, h * self._secret)
        self._published[round_number] = signature
        self.latest_round = max(self.latest_round, round_number)
        return signature

    def lookup(self, round_number: int) -> RoundSignature:
        try:
            return self._published[round_number]
        except KeyError:
            raise UpdateNotAvailableError(
                f"round {round_number} has not been published"
            )

    def verify(self, signature: RoundSignature) -> bool:
        """``ê(σ, G2) == ê(H1(round), pk)`` — self-authentication."""
        if signature.point.is_infinity:
            return False
        h = self.engine.hash_to_g1(round_label(signature.round_number))
        left = self.engine.pair(signature.point, self.engine.g2)
        right = self.engine.pair(h, self.public_key)
        return left == right


@dataclass(frozen=True)
class TlockCiphertext:
    """``⟨U ∈ G2, sealed⟩`` bound to a round number."""

    round_number: int
    u_point: CurvePoint
    sealed: bytes


class TimelockEncryption:
    """tlock: encrypt to a future beacon round (identity = round number)."""

    def __init__(self, engine: BN254 | None = None):
        self.engine = engine or bn254()

    def encrypt(
        self,
        message: bytes,
        beacon_public: CurvePoint,
        round_number: int,
        rng: random.Random,
    ) -> TlockCiphertext:
        """``U = r·G2``; ``K = ê(H1(round), pk)^r``; AEAD under K."""
        e = self.engine
        r = e.random_scalar(rng)
        u_point = e.g2 * r
        h = e.hash_to_g1(round_label(round_number))
        k = e.pair(h, beacon_public) ** r
        key = e.mask_bytes(k, 32)
        sealed = aead_encrypt(
            key, b"tlock", message, associated_data=round_label(round_number)
        )
        return TlockCiphertext(round_number, u_point, sealed)

    def decrypt(
        self, ciphertext: TlockCiphertext, signature: RoundSignature
    ) -> bytes:
        """``K' = ê(σ, U)`` — anyone with the round signature can open."""
        if signature.round_number != ciphertext.round_number:
            raise UpdateVerificationError(
                "signature is for a different round than the ciphertext"
            )
        e = self.engine
        k = e.pair(signature.point, ciphertext.u_point)
        key = e.mask_bytes(k, 32)
        return aead_decrypt(
            key,
            b"tlock",
            ciphertext.sealed,
            associated_data=round_label(ciphertext.round_number),
        )


@redacted_repr("a_g1", "a_pk")
@dataclass(frozen=True)
class Type3UserKeyPair:
    """Receiver key for the Type-3 TRE: ``(a, (a·G1, a·pk))``."""

    private: int
    a_g1: CurvePoint
    a_pk: CurvePoint  # a·s·G2, in G2

    def verify_well_formed(self, engine: BN254, beacon_public: CurvePoint) -> bool:
        """The §5.1 step-1 check in Type-3 form:
        ``ê(a·G1, pk) == ê(G1, a·pk)``."""
        left = engine.pair(self.a_g1, beacon_public)
        right = engine.pair(engine.g1, self.a_pk)
        return left == right


class Type3TimedRelease:
    """The paper's receiver-bound TRE on the asymmetric pairing."""

    def __init__(self, engine: BN254 | None = None):
        self.engine = engine or bn254()

    def generate_user_keypair(
        self, beacon_public: CurvePoint, rng: random.Random
    ) -> Type3UserKeyPair:
        a = self.engine.random_scalar(rng)
        return Type3UserKeyPair(a, self.engine.g1 * a, beacon_public * a)

    def encrypt(
        self,
        message: bytes,
        receiver: Type3UserKeyPair | tuple,
        beacon_public: CurvePoint,
        round_number: int,
        rng: random.Random,
        verify_receiver_key: bool = True,
    ) -> TlockCiphertext:
        """``K = ê(H1(round), a·pk)^r``, ``U = r·G2``."""
        e = self.engine
        if isinstance(receiver, Type3UserKeyPair):
            a_g1, a_pk = receiver.a_g1, receiver.a_pk
        else:
            a_g1, a_pk = receiver
        if verify_receiver_key:
            left = e.pair(a_g1, beacon_public)
            right = e.pair(e.g1, a_pk)
            if left != right:
                raise KeyValidationError(
                    "receiver public key is not of the form (a*G1, a*pk)"
                )
        r = e.random_scalar(rng)
        u_point = e.g2 * r
        h = e.hash_to_g1(round_label(round_number))
        k = e.pair(h, a_pk) ** r
        key = e.mask_bytes(k, 32)
        sealed = aead_encrypt(
            key, b"t3tre", message, associated_data=round_label(round_number)
        )
        return TlockCiphertext(round_number, u_point, sealed)

    def decrypt(
        self,
        ciphertext: TlockCiphertext,
        receiver: Type3UserKeyPair | int,
        signature: RoundSignature,
    ) -> bytes:
        """``K' = ê(σ, U)^a`` — needs both ``a`` and the round signature."""
        if signature.round_number != ciphertext.round_number:
            raise UpdateVerificationError(
                "signature is for a different round than the ciphertext"
            )
        private = (
            receiver.private if isinstance(receiver, Type3UserKeyPair) else receiver
        )
        e = self.engine
        k = e.pair(signature.point, ciphertext.u_point) ** private
        key = e.mask_bytes(k, 32)
        return aead_decrypt(
            key,
            b"t3tre",
            ciphertext.sealed,
            associated_data=round_label(ciphertext.round_number),
        )
