"""KEM-DEM wrapping of TRE for arbitrary-length messages.

The base scheme's ``M ⊕ H2(K)`` masking already handles any length, but
a real deployment wants integrity too.  Here TRE acts as the key
encapsulation mechanism and the encrypt-then-MAC DEM from
:mod:`repro.crypto.authenc` carries the payload:

    ⟨U, AEAD_{K}(M)⟩  with  K = H2(ê(r·asG, H1(T)))

Integrity gives the receiver a *definitive* wrong-update signal — with
the bare scheme a mismatched update just yields garbage bytes; here it
raises :class:`~repro.errors.DecryptionError`.  (This is authenticated
encryption, not CCA security of the public-key layer; for that see the
FO and REACT modules.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.core.keys import ServerPublicKey, UserKeyPair, UserPublicKey
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.core.tre import TimedReleaseScheme
from repro.crypto.authenc import aead_decrypt, aead_encrypt
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks, unpack_chunks
from repro.errors import EncodingError, UpdateVerificationError
from repro.pairing.api import PairingGroup

_KEY_BYTES = 32


@dataclass(frozen=True)
class HybridTRECiphertext:
    """``⟨U, sealed⟩`` where ``sealed`` is AEAD ciphertext-plus-tag."""

    u_point: CurvePoint
    sealed: bytes
    time_label: bytes

    def to_bytes(self, group: PairingGroup) -> bytes:
        return pack_chunks(
            group.point_to_bytes(self.u_point), self.sealed, self.time_label
        )

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "HybridTRECiphertext":
        chunks = unpack_chunks(data)
        if len(chunks) != 3:
            raise EncodingError("hybrid TRE ciphertext must have 3 components")
        return cls(group.point_from_bytes(chunks[0]), chunks[1], chunks[2])

    def size_bytes(self, group: PairingGroup) -> int:
        return len(self.to_bytes(group))


class HybridTimedReleaseScheme:
    """TRE-KEM + encrypt-then-MAC DEM."""

    def __init__(self, group: PairingGroup):
        self.group = group
        self._kem = TimedReleaseScheme(group)

    def precompute_sender(
        self,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        time_labels: Iterable[bytes] = (),
    ) -> None:
        """Warm the underlying KEM's sender fast paths (incl. GT tables)."""
        self._kem.precompute_sender(
            receiver_public, server_public, time_labels=time_labels
        )

    def clear_sender_cache(self) -> None:
        self._kem.clear_sender_cache()

    def encrypt(
        self,
        message: bytes,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        time_label: bytes,
        rng: random.Random,
        verify_receiver_key: bool = True,
    ) -> HybridTRECiphertext:
        key, u_point = self._kem.encapsulate(
            receiver_public,
            server_public,
            time_label,
            rng,
            key_bytes=_KEY_BYTES,
            verify_receiver_key=verify_receiver_key,
        )
        # The nonce may be constant: each encapsulation derives a fresh key.
        sealed = aead_encrypt(key, b"tre", message, associated_data=time_label)
        return HybridTRECiphertext(u_point, sealed, time_label)

    def decrypt(
        self,
        ciphertext: HybridTRECiphertext,
        receiver: UserKeyPair | int,
        update: TimeBoundKeyUpdate,
        server_public: ServerPublicKey | None = None,
    ) -> bytes:
        if server_public is not None:
            if update.time_label != ciphertext.time_label:
                raise UpdateVerificationError(
                    "update is for a different release time than the ciphertext"
                )
            update.ensure_valid(self.group, server_public)
        key = self._kem.decapsulate(
            ciphertext.u_point, receiver, update, key_bytes=_KEY_BYTES
        )
        return aead_decrypt(
            key, b"tre", ciphertext.sealed, associated_data=ciphertext.time_label
        )
