"""Key insulation / key evolution (paper §5.3.3).

The long-term secret ``a`` never needs to touch the decryption device.
When the update ``I_{T_i} = s·H1(T_i)`` for epoch ``T_i`` arrives, a
*safe device* (smart card, or a transient computation from a password)
derives the epoch key

    K_i = a·I_{T_i} = s·a·H1(T_i)

and hands only ``K_i`` to the insecure device, which decrypts every
epoch-``T_i`` ciphertext as ``M = V ⊕ H2(ê(U, K_i))`` — no secret
exponentiation on the insecure side.

(The paper's prose writes the epoch key as ``a·H1(T_i)``; note that the
point ``a·H1(T_i)`` alone cannot feed the decryption equation
``ê(U, s·H1(T_i))^a`` without also holding ``a`` or ``s`` at decryption
time.  Multiplying the *update* by ``a`` — algebraically
``s·a·H1(T_i)``, the same point either way you order the scalars — is
the reading that matches both the stated workflow "when a new key
update ... is received ... the user computes [the epoch key] in a safe
device" and the security claim, and it is what we implement.)

Insulation property (tested): a compromised ``K_i`` decrypts only
epoch-``T_i`` traffic; deriving ``K_j`` (``j ≠ i``) from it is a CDH
instance, and the long-term ``a`` stays safe.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.keys import ServerPublicKey, UserKeyPair
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.core.tre import H2_TAG, TRECiphertext
from repro.ec.point import CurvePoint
from repro.encoding import xor_bytes
from repro.errors import UpdateVerificationError
from repro.pairing.api import PairingGroup


@dataclass(frozen=True)
class EpochKey:
    """``K_i = a·s·H1(T_i)`` — decrypts epoch ``T_i`` only."""

    time_label: bytes
    point: CurvePoint


class SafeDevice:
    """Holds the long-term secret ``a``; emits per-epoch keys.

    Models the smart card of §5.3.3.  The only computation it ever
    performs is one scalar multiplication per epoch, after verifying the
    update's self-authentication.
    """

    def __init__(
        self,
        group: PairingGroup,
        keypair: UserKeyPair,
        server_public: ServerPublicKey,
    ):
        self.group = group
        self._keypair = keypair
        self._server_public = server_public
        self.derivations = 0

    @property
    def public(self):
        return self._keypair.public

    def derive_epoch_key(self, update: TimeBoundKeyUpdate) -> EpochKey:
        """Verify the update, then compute ``a·I_T`` inside the device."""
        update.ensure_valid(self.group, self._server_public)
        self.derivations += 1
        return EpochKey(
            update.time_label, self.group.mul(update.point, self._keypair.private)
        )


class InsecureDevice:
    """Holds only epoch keys; decrypts without any long-term secret."""

    def __init__(self, group: PairingGroup):
        self.group = group
        self._epoch_keys: dict[bytes, EpochKey] = {}

    def install_epoch_key(self, key: EpochKey) -> None:
        self._epoch_keys[key.time_label] = key

    def installed_epochs(self) -> list[bytes]:
        return sorted(self._epoch_keys)

    def drop_epoch_key(self, time_label: bytes) -> None:
        """Forget an old epoch key (limits exposure going forward)."""
        self._epoch_keys.pop(time_label, None)

    def decrypt(self, ciphertext: TRECiphertext) -> bytes:
        try:
            key = self._epoch_keys[ciphertext.time_label]
        except KeyError:
            raise UpdateVerificationError(
                f"no epoch key installed for {ciphertext.time_label!r}"
            )
        return decrypt_with_epoch_key(self.group, ciphertext, key)


def decrypt_with_epoch_key(
    group: PairingGroup, ciphertext: TRECiphertext, key: EpochKey
) -> bytes:
    """``M = V ⊕ H2(ê(U, K_i))`` — one pairing, no secret scalar."""
    if key.time_label != ciphertext.time_label:
        raise UpdateVerificationError(
            "epoch key does not match the ciphertext's release time"
        )
    k = group.pair(ciphertext.u_point, key.point)
    mask = group.mask_bytes(k, len(ciphertext.masked), tag=H2_TAG)
    return xor_bytes(ciphertext.masked, mask)
