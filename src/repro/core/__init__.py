"""The paper's contributions: TRE, ID-TRE, and every §5.3 extension.

Module map (paper section → module):

* §5.1 TRE                    → :mod:`repro.core.tre`
* §5.2 ID-TRE                 → :mod:`repro.core.idtre`
* §3   passive time server    → :mod:`repro.core.timeserver`
* §5.3.1 self-authenticated updates (BLS short signatures)
                              → :mod:`repro.core.bls`
* §5.3.2 policy locks         → :mod:`repro.core.policylock`
* §5.3.3 key insulation       → :mod:`repro.core.key_insulation`
* §5.3.4 server change / CA   → :mod:`repro.core.certification`
* §5.3.5 multiple servers     → :mod:`repro.core.multiserver`
* §5 CCA upgrades             → :mod:`repro.core.fujisaki_okamoto`,
                                :mod:`repro.core.react`
* KEM-DEM wrapping for long messages → :mod:`repro.core.hybrid_tre`
* multi-recipient broadcast   → :mod:`repro.core.broadcast`
"""

from repro.core.keys import ServerKeyPair, ServerPublicKey, UserKeyPair, UserPublicKey
from repro.core.timeserver import PassiveTimeServer, TimeBoundKeyUpdate, epoch_label
from repro.core.tre import TimedReleaseScheme, TRECiphertext
from repro.core.idtre import IdentityTimedReleaseScheme, IDTRECiphertext
from repro.core.broadcast import BroadcastCiphertext, BroadcastTimedReleaseScheme
from repro.core.bls import BLSSignatureScheme

__all__ = [
    "ServerKeyPair",
    "ServerPublicKey",
    "UserKeyPair",
    "UserPublicKey",
    "PassiveTimeServer",
    "TimeBoundKeyUpdate",
    "epoch_label",
    "TimedReleaseScheme",
    "TRECiphertext",
    "IdentityTimedReleaseScheme",
    "IDTRECiphertext",
    "BroadcastCiphertext",
    "BroadcastTimedReleaseScheme",
    "BLSSignatureScheme",
]
