"""Certificate authority substrate and cheap time-server change (§5.3.4).

The CA and the time server are *independent* entities in TRE.  The CA
certifies only the ``aG`` half of a user key; the ``asG`` half is
verifiable from it.  When a receiver moves to a new time server ``S'``
(secret ``s'``), no re-certification is needed — anyone can check the
claimed new key against the certified old one:

* same generator:   ``ê(G, a·s'G)  == ê(s'G, aG)``
* new generator G': first link ``ê(aG', G) == ê(G', aG)`` (same ``a``),
  then ``ê(aG', s'G') == ê(G', a·s'G')``.

Only the holder of ``a`` can produce components passing these checks
(forging one is a CDH instance), so a certificate on ``aG`` transfers to
every future server binding.

The CA itself signs with BLS over the same pairing group — one more
consumer of the substrate, and it keeps the repo dependency-free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.bls import BLSSignatureScheme
from repro.core.keys import ServerKeyPair, ServerPublicKey, UserPublicKey
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks
from repro.errors import KeyValidationError
from repro.pairing.api import PairingGroup

_CA_TAG = "repro:CA"


@dataclass(frozen=True)
class Certificate:
    """A CA statement binding ``subject`` to the point ``aG``."""

    subject: bytes
    a_generator: CurvePoint
    generator: CurvePoint
    signature: CurvePoint

    def signed_payload(self, group: PairingGroup) -> bytes:
        return pack_chunks(
            self.subject,
            group.point_to_bytes(self.a_generator),
            group.point_to_bytes(self.generator),
        )


class CertificateAuthority:
    """A minimal CA: BLS-signs ``(subject, aG, G)`` bindings."""

    def __init__(self, group: PairingGroup, rng: random.Random):
        self.group = group
        self._keypair = ServerKeyPair.generate(group, rng)
        self._bls = BLSSignatureScheme(group, hash_tag=_CA_TAG)

    @property
    def public_key(self) -> ServerPublicKey:
        return self._keypair.public

    def issue(
        self, subject: bytes, a_generator: CurvePoint, generator: CurvePoint
    ) -> Certificate:
        payload = pack_chunks(
            subject,
            self.group.point_to_bytes(a_generator),
            self.group.point_to_bytes(generator),
        )
        signature = self._bls.sign(self._keypair, payload)
        return Certificate(subject, a_generator, generator, signature)

    def verify(self, certificate: Certificate) -> bool:
        return BLSSignatureScheme(self.group, hash_tag=_CA_TAG).verify(
            self.public_key,
            certificate.signed_payload(self.group),
            certificate.signature,
        )


def verify_rekeyed_public_key(
    group: PairingGroup,
    certificate: Certificate,
    new_server_public: ServerPublicKey,
    new_public: UserPublicKey,
    ca: CertificateAuthority,
) -> None:
    """Accept ``(aG', a·s'G')`` for server S' given a certificate on ``aG``.

    Implements §5.3.4 end to end; raises :class:`KeyValidationError` on
    any failed link.  Handles both the same-generator and the
    changed-generator case (footnote 11).
    """
    if not ca.verify(certificate):
        raise KeyValidationError("certificate signature invalid")
    old_generator = certificate.generator
    certified_a_g = certificate.a_generator
    new_generator = new_server_public.generator

    if new_generator == old_generator:
        if new_public.a_generator != certified_a_g:
            raise KeyValidationError("aG changed despite unchanged generator")
    else:
        # Same-`a` linkage across generators: ê(aG', G) == ê(G', aG).
        if not group.pair_ratio_is_one(
            ((new_public.a_generator, old_generator),),
            ((new_generator, certified_a_g),),
        ):
            raise KeyValidationError(
                "new key does not use the certified secret a"
            )
    # The §5.3.4 check proper: ê(G', a·s'G') == ê(s'G', aG').
    if not group.pair_ratio_is_one(
        ((new_generator, new_public.as_generator),),
        ((new_server_public.s_generator, new_public.a_generator),),
    ):
        raise KeyValidationError("as'G' component fails the pairing check")
