"""Key material for the TRE scheme (paper §5.1, "Key Generation").

* The **server** picks its own generator ``G`` of ``G1`` and a secret
  ``s``; its public key is the pair ``(G, sG)``.
* A **user** picks a secret ``a`` (optionally derived from a password via
  a hash, as the paper suggests) and publishes ``(aG, asG)``.  The
  ``asG`` half ties the key to the chosen time server, which is what
  forces decryption to involve the server's time-bound key update.

``UserPublicKey.verify_well_formed`` is the pairing check from Encrypt
step 1: ``ê(aG, sG) == ê(G, asG)``.  A sender must run it before
encrypting; a malformed key (e.g. ``(aG, bG)`` with ``b != a*s``) could
otherwise let the receiver decrypt without the update.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.kdf import derive_key
from repro.crypto.redact import redacted_repr
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks, unpack_chunks
from repro.errors import EncodingError, KeyValidationError
from repro.pairing.api import PairingGroup


@dataclass(frozen=True)
class ServerPublicKey:
    """The time server's public key ``PK_S = (G, sG)``."""

    generator: CurvePoint
    s_generator: CurvePoint

    def precompute(self, group: PairingGroup) -> None:
        """Warm every fixed-argument cache this key participates in.

        Builds fixed-base tables for ``G`` and ``sG`` (user key
        generation, TRE/ID-TRE encryption) and caches their Miller
        lines (update self-authentication, receiver-key checks).  A
        process that touches one server key many times calls this once.
        """
        group.precompute(self.generator)
        group.precompute(self.s_generator)
        group.precompute_pairing(self.generator)
        group.precompute_pairing(self.s_generator)

    def to_bytes(self, group: PairingGroup) -> bytes:
        return pack_chunks(
            group.point_to_bytes(self.generator),
            group.point_to_bytes(self.s_generator),
        )

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "ServerPublicKey":
        chunks = unpack_chunks(data)
        if len(chunks) != 2:
            raise EncodingError("server public key must have 2 components")
        return cls(
            group.point_from_bytes(chunks[0]), group.point_from_bytes(chunks[1])
        )


@redacted_repr("public")
@dataclass(frozen=True)
class ServerKeyPair:
    """The time server's key pair: private ``s`` plus ``(G, sG)``."""

    private: int
    public: ServerPublicKey

    @classmethod
    def generate(
        cls, group: PairingGroup, rng: random.Random, generator: CurvePoint | None = None
    ) -> "ServerKeyPair":
        """Server key generation (§5.1): pick ``G`` and ``s``, publish both.

        The paper lets the server pick any generator; by default we pick
        a random one (a random scalar multiple of the library generator,
        which generates the whole prime-order subgroup).
        """
        if generator is None:
            generator = group.mul(group.generator, group.random_scalar(rng))
        s = group.random_scalar(rng)
        return cls(s, ServerPublicKey(generator, group.mul(generator, s)))


@dataclass(frozen=True)
class UserPublicKey:
    """A receiver's public key ``PK_U = (aG, asG)``."""

    a_generator: CurvePoint
    as_generator: CurvePoint

    def verify_well_formed(
        self, group: PairingGroup, server_public: ServerPublicKey
    ) -> bool:
        """Encrypt step 1: check ``ê(aG, sG) == ê(G, asG)``.

        True exactly when the second component really is ``a × sG``, so
        the receiver genuinely needs the server's update to decrypt.
        Checked as one multi-pairing ratio (a single combined Miller
        loop and final exponentiation); keys containing the point at
        infinity (``a == 0`` degenerate keys) are rejected outright.
        """
        return group.pair_ratio_is_one(
            ((self.a_generator, server_public.s_generator),),
            ((server_public.generator, self.as_generator),),
        )

    def ensure_well_formed(
        self, group: PairingGroup, server_public: ServerPublicKey
    ) -> None:
        if not self.verify_well_formed(group, server_public):
            raise KeyValidationError(
                "receiver public key is not of the form (aG, a*sG)"
            )

    def to_bytes(self, group: PairingGroup) -> bytes:
        return pack_chunks(
            group.point_to_bytes(self.a_generator),
            group.point_to_bytes(self.as_generator),
        )

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "UserPublicKey":
        chunks = unpack_chunks(data)
        if len(chunks) != 2:
            raise EncodingError("user public key must have 2 components")
        return cls(
            group.point_from_bytes(chunks[0]), group.point_from_bytes(chunks[1])
        )


@redacted_repr("public")
@dataclass(frozen=True)
class UserKeyPair:
    """A receiver's key pair: private ``a`` plus ``(aG, asG)``."""

    private: int
    public: UserPublicKey

    @classmethod
    def generate(
        cls,
        group: PairingGroup,
        server_public: ServerPublicKey,
        rng: random.Random,
    ) -> "UserKeyPair":
        """User key generation (§5.1) against a chosen time server."""
        a = group.random_scalar(rng)
        # lint: allow[RP202] from_secret's a==0 rejection branches on the
        # secret, but it reveals only key invalidity (probability ~2^-64)
        # and is required for correctness.
        return cls.from_secret(group, server_public, a)

    @classmethod
    def from_password(
        cls, group: PairingGroup, server_public: ServerPublicKey, password: str
    ) -> "UserKeyPair":
        """Derive ``a`` from a human-memorable password (§5.1 note).

        The paper suggests "applying a good hash function" to the
        password; we KDF it into ``Z_q^*``.
        """
        digest = derive_key(password.encode(), 2 * group.scalar_bytes, "repro:pwkey")
        a = int.from_bytes(digest, "big") % (group.q - 1) + 1
        return cls.from_secret(group, server_public, a)

    @classmethod
    def from_secret(
        cls, group: PairingGroup, server_public: ServerPublicKey, a: int
    ) -> "UserKeyPair":
        a %= group.q
        if a == 0:
            raise KeyValidationError("user secret must be in Z_q^*")
        public = UserPublicKey(
            group.mul(server_public.generator, a),
            group.mul(server_public.s_generator, a),
        )
        return cls(a, public)

    def rekey_to_server(
        self, group: PairingGroup, new_server_public: ServerPublicKey
    ) -> "UserKeyPair":
        """Re-derive the public key against a different time server.

        Used by the §5.3.4 server-change flow: the same secret ``a``
        yields ``(aG', as'G')`` under the new server, and third parties
        can link it to the CA-certified old key without re-certification
        (see :mod:`repro.core.certification`).
        """
        # lint: allow[RP202] same a==0 rejection branch as in generate():
        # reveals only key invalidity, never taken for a valid keypair.
        return self.from_secret(group, new_server_public, self.private)
