"""Multi-server TRE (paper §5.3.5): distributing trust over N time servers.

A single colluding server could leak ``I_T`` early.  With N servers
(each with its own generator ``G_i`` and secret ``s_i``) the sender
encrypts so that *all* N updates ``s_i·H1(T)`` are needed:

* the receiver publishes one component pair ``(aG_i, a·s_iG_i)`` per
  server (each verifiable exactly like a single-server key);
* the ciphertext is ``⟨rG_1, ..., rG_N, M ⊕ H2(K)⟩`` with
  ``K = Π_i ê(G_i, H1(T))^{r·a·s_i}``;
* the receiver reconstructs ``K = Π_i ê(rG_i, s_i·H1(T))^a``.

An adversary must now corrupt every one of the N servers to open the
message early.  Cost is linear in N (one extra point per ciphertext and
one extra pairing per server at each end) — experiment E5's subject.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.keys import ServerPublicKey, UserPublicKey
from repro.crypto.redact import redacted_repr
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.core.tre import H1_TAG, H2_TAG
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks, unpack_chunks, xor_bytes
from repro.errors import (
    EncodingError,
    KeyValidationError,
    ParameterError,
    UpdateVerificationError,
)
from repro.pairing.api import PairingGroup


@redacted_repr("components")
@dataclass(frozen=True)
class MultiServerUserKeyPair:
    """Secret ``a`` plus one ``(aG_i, a·s_iG_i)`` component per server."""

    private: int
    components: tuple[UserPublicKey, ...]

    @classmethod
    def generate(
        cls,
        group: PairingGroup,
        server_publics: list[ServerPublicKey],
        rng: random.Random,
    ) -> "MultiServerUserKeyPair":
        if not server_publics:
            raise ParameterError("need at least one time server")
        a = group.random_scalar(rng)
        components = tuple(
            UserPublicKey(
                group.mul(pk.generator, a), group.mul(pk.s_generator, a)
            )
            for pk in server_publics
        )
        return cls(a, components)

    @property
    def public(self) -> tuple[UserPublicKey, ...]:
        return self.components


@dataclass(frozen=True)
class MultiServerCiphertext:
    """``⟨rG_1, ..., rG_N, V⟩`` plus the public release-time label."""

    u_points: tuple[CurvePoint, ...]
    masked: bytes
    time_label: bytes

    def to_bytes(self, group: PairingGroup) -> bytes:
        point_blobs = [group.point_to_bytes(u) for u in self.u_points]
        return pack_chunks(pack_chunks(*point_blobs), self.masked, self.time_label)

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "MultiServerCiphertext":
        chunks = unpack_chunks(data)
        if len(chunks) != 3:
            raise EncodingError("multi-server ciphertext must have 3 components")
        points = tuple(
            group.point_from_bytes(blob) for blob in unpack_chunks(chunks[0])
        )
        return cls(points, chunks[1], chunks[2])

    def size_bytes(self, group: PairingGroup) -> int:
        return len(self.to_bytes(group))


class MultiServerTimedReleaseScheme:
    """TRE with the trust assumption split across N passive time servers."""

    def __init__(self, group: PairingGroup, server_publics: list[ServerPublicKey]):
        if not server_publics:
            raise ParameterError("need at least one time server")
        self.group = group
        self.server_publics = list(server_publics)

    @property
    def server_count(self) -> int:
        return len(self.server_publics)

    def verify_user_key(self, components: tuple[UserPublicKey, ...]) -> None:
        """Sender-side validation: every component must be well-formed
        *and* share the same secret ``a`` (checked pairwise through
        ``ê(aG_i, aG_j)``-free cross pairings on the generators)."""
        if len(components) != self.server_count:
            raise KeyValidationError(
                f"expected {self.server_count} key components, got {len(components)}"
            )
        for component, server_public in zip(components, self.server_publics):
            component.ensure_well_formed(self.group, server_public)
        # Same-`a` linkage across servers: ê(aG_i, G_j) == ê(G_i, aG_j),
        # each a single multi-pairing ratio check.
        first = components[0]
        first_pk = self.server_publics[0]
        for component, server_public in zip(components[1:], self.server_publics[1:]):
            if not self.group.pair_ratio_is_one(
                ((first.a_generator, server_public.generator),),
                ((first_pk.generator, component.a_generator),),
            ):
                raise KeyValidationError(
                    "key components use different secrets across servers"
                )

    def encrypt(
        self,
        message: bytes,
        receiver_components: tuple[UserPublicKey, ...],
        time_label: bytes,
        rng: random.Random,
        verify_receiver_key: bool = True,
    ) -> MultiServerCiphertext:
        if verify_receiver_key:
            self.verify_user_key(receiver_components)
        r = self.group.random_scalar(rng)
        u_points = tuple(
            self.group.mul(pk.generator, r) for pk in self.server_publics
        )
        h_t = self.group.hash_to_g1(time_label, tag=H1_TAG)
        # K = ê(r · Σ a·s_iG_i, H1(T)) = Π ê(G_i, H1(T))^{r·a·s_i}.
        combined = self.group.identity()
        for component in receiver_components:
            combined = self.group.add(combined, component.as_generator)
        k = self.group.pair(self.group.mul(combined, r), h_t)
        mask = self.group.mask_bytes(k, len(message), tag=H2_TAG)
        return MultiServerCiphertext(u_points, xor_bytes(message, mask), time_label)

    def decrypt(
        self,
        ciphertext: MultiServerCiphertext,
        private: int,
        updates: list[TimeBoundKeyUpdate],
        verify_updates: bool = True,
    ) -> bytes:
        """Needs one update per server: ``K = Π ê(rG_i, s_i·H1(T))^a``.

        The N-fold pairing product is one multi-pairing — N Miller
        loops in lockstep, one final exponentiation — so the per-server
        decryption overhead drops from a full pairing to a Miller loop.
        """
        if len(updates) != self.server_count:
            raise UpdateVerificationError(
                f"need {self.server_count} updates, got {len(updates)}"
            )
        if len(ciphertext.u_points) != self.server_count:
            raise EncodingError("ciphertext server count mismatch")
        if verify_updates:
            for update, server_public in zip(updates, self.server_publics):
                if update.time_label != ciphertext.time_label:
                    raise UpdateVerificationError(
                        "update label does not match ciphertext release time"
                    )
                update.ensure_valid(self.group, server_public)
        k = self.group.multi_pair(
            [
                (u_point, update.point)
                for u_point, update in zip(ciphertext.u_points, updates)
            ]
        )
        k = k ** private
        mask = self.group.mask_bytes(k, len(ciphertext.masked), tag=H2_TAG)
        return xor_bytes(ciphertext.masked, mask)
