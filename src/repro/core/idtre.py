"""ID-TRE — identity-based timed release encryption (paper §5.2).

The Chen-et-al. multi-trust-authority idea: the receiver's "public key"
is their identity string, the server doubles as the IBE private-key
generator, and the encryption point is the *sum* ``H1(ID) + H1(T)``.
The receiver combines their long-term key ``s·H1(ID)`` with the
broadcast update ``s·H1(T)`` into ``s(H1(ID) + H1(T))`` and pairs once.

Key escrow is inherent: the server knows ``s`` and can decrypt anything
(demonstrated by :meth:`IdentityTimedReleaseScheme.server_decrypt`, and
contrasted with TRE in experiment E11).  The compensating advantages are
no receiver certificates and a cheaper decryption (one pairing, no GT
exponentiation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.core.keys import ServerKeyPair, ServerPublicKey
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks, unpack_chunks, xor_bytes
from repro.errors import EncodingError, UpdateVerificationError
from repro.pairing.api import PairingGroup

H1_TAG = "repro:H1"
H2_TAG = "repro:H2"


@dataclass(frozen=True)
class IDTRECiphertext:
    """``C = ⟨U, V⟩`` plus the public release-time label."""

    u_point: CurvePoint
    masked: bytes
    time_label: bytes

    def to_bytes(self, group: PairingGroup) -> bytes:
        return pack_chunks(
            group.point_to_bytes(self.u_point), self.masked, self.time_label
        )

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "IDTRECiphertext":
        chunks = unpack_chunks(data)
        if len(chunks) != 3:
            raise EncodingError("ID-TRE ciphertext must have 3 components")
        return cls(group.point_from_bytes(chunks[0]), chunks[1], chunks[2])

    def size_bytes(self, group: PairingGroup) -> int:
        return len(self.to_bytes(group))


@dataclass(frozen=True)
class IDUserKey:
    """A user's extracted private key ``s·H1(ID)`` and their identity."""

    identity: bytes
    point: CurvePoint


class IdentityTimedReleaseScheme:
    """ID-TRE over a symmetric pairing group."""

    def __init__(self, group: PairingGroup):
        self.group = group
        # Sender-side GT cache: (sG, ID, T) -> ê(sG, H1(ID) + H1(T)).
        # Same collapse as the TRE sender cache — for a fixed
        # (server, identity, T) only the exponent r varies, so a warm
        # entry turns encryption into one GT exponentiation.
        self._sender_gt: dict[tuple[CurvePoint, bytes, bytes], object] = {}

    def hash_identity(self, identity: bytes) -> CurvePoint:
        return self.group.hash_to_g1(identity, tag=H1_TAG)

    def precompute_sender(
        self,
        server_public: ServerPublicKey,
        identities: Iterable[bytes] = (),
        time_labels: Iterable[bytes] = (),
    ) -> None:
        """Warm the sender's fixed arguments for repeated encryption.

        §5.2 encryption multiplies the fixed ``G`` by ``r`` and pairs
        the fixed ``sG`` against a per-message point: the first gets a
        fixed-base table, the second cached Miller lines.  Both fast
        paths are picked up transparently by ``group.mul`` /
        ``group.pair`` in :meth:`encrypt`.

        With ``identities`` and ``time_labels`` the GT fast path is
        warmed for their cross product: each constant pairing
        ``ê(sG, H1(ID) + H1(T))`` is cached with a windowed
        exponentiation table, collapsing :meth:`encrypt` for that
        (identity, T) pair to one fixed-base multiplication plus one
        table-driven GT exponentiation — byte-identical output.
        :meth:`clear_sender_cache` frees the entries.
        """
        self.group.precompute(server_public.generator)
        precomp = self.group.precompute_pairing(server_public.s_generator)
        identities = list(identities)
        time_labels = list(time_labels)
        for identity in identities:
            h_id = self.hash_identity(identity)
            for label in time_labels:
                key = (server_public.s_generator, identity, label)
                g = self._sender_gt.get(key)
                if g is None:
                    k_e = self.group.add(
                        h_id, self.group.hash_to_g1(label, tag=H1_TAG)
                    )
                    g = precomp.pair(k_e)
                    self._sender_gt[key] = g
                self.group.precompute_gt(g)

    def clear_sender_cache(self) -> None:
        """Drop the cached per-(identity, T) pairings."""
        self._sender_gt.clear()

    def extract_user_key(
        self, server: ServerKeyPair, identity: bytes
    ) -> IDUserKey:
        """The server-as-PKG hands user ``ID`` the key ``s·H1(ID)``.

        This is the step that makes escrow inherent: the server computes
        (and therefore knows) every user's private key.
        """
        point = self.group.mul(self.hash_identity(identity), server.private)
        return IDUserKey(identity, point)

    def encrypt(
        self,
        message: bytes,
        identity: bytes,
        server_public: ServerPublicKey,
        time_label: bytes,
        rng: random.Random,
    ) -> IDTRECiphertext:
        """§5.2: ``K = ê(sG, H1(ID) + H1(T))^r``, ``C = ⟨rG, M ⊕ H2(K)⟩``."""
        r = self.group.random_scalar(rng)
        cached = self._sender_gt.get(
            (server_public.s_generator, identity, time_label)
        )
        if cached is not None:
            # Warm path: the constant pairing is cached, so only the GT
            # exponentiation remains.  Bilinearity makes the element —
            # and hence the ciphertext bytes — identical to the cold
            # path, and ``r`` is still the sole rng draw.
            k = cached**r
        else:
            k_e = self.group.add(
                self.hash_identity(identity),
                self.group.hash_to_g1(time_label, tag=H1_TAG),
            )
            k = self.group.pair(server_public.s_generator, k_e) ** r
        u_point = self.group.mul(server_public.generator, r)
        mask = self.group.mask_bytes(k, len(message), tag=H2_TAG)
        return IDTRECiphertext(u_point, xor_bytes(message, mask), time_label)

    def decrypt(
        self,
        ciphertext: IDTRECiphertext,
        user_key: IDUserKey,
        update: TimeBoundKeyUpdate,
        server_public: ServerPublicKey | None = None,
    ) -> bytes:
        """Combine ``s·H1(ID) + s·H1(T)`` and pair once with ``U``."""
        if server_public is not None:
            if update.time_label != ciphertext.time_label:
                raise UpdateVerificationError(
                    "update is for a different release time than the ciphertext"
                )
            update.ensure_valid(self.group, server_public)
        k_d = self.group.add(user_key.point, update.point)
        k = self.group.pair(ciphertext.u_point, k_d)
        mask = self.group.mask_bytes(k, len(ciphertext.masked), tag=H2_TAG)
        return xor_bytes(ciphertext.masked, mask)

    def server_decrypt(
        self, ciphertext: IDTRECiphertext, server: ServerKeyPair, identity: bytes
    ) -> bytes:
        """The escrow attack the paper warns about: the server, knowing
        ``s``, decrypts any user's ciphertext without any update."""
        k_e = self.group.add(
            self.hash_identity(identity),
            self.group.hash_to_g1(ciphertext.time_label, tag=H1_TAG),
        )
        k_d = self.group.mul(k_e, server.private)
        k = self.group.pair(ciphertext.u_point, k_d)
        mask = self.group.mask_bytes(k, len(ciphertext.masked), tag=H2_TAG)
        return xor_bytes(ciphertext.masked, mask)
