"""Fujisaki–Okamoto transform of TRE (paper §5, pointer to [11]).

The paper presents TRE as one-way/CPA-secure "for the sake of clarity"
and notes that "similar to the technique in [4], this transform can be
applied to our schemes to obtain chosen-ciphertext secure schemes".
This module applies it, following the BasicIdent → FullIdent recipe of
Boneh–Franklin:

Encrypt(M):
    σ ←$ {0,1}^k
    r = H3(σ, M)                      (derandomization)
    U = rG
    V = σ ⊕ H2(ê(r·asG, H1(T)))       (TRE-encrypt σ with randomness r)
    W = M ⊕ H4(σ)                      (one-time pad from σ)
    C = ⟨U, V, W⟩

Decrypt(C): recover σ from (U, V), recover M from W, recompute
r = H3(σ, M) and **reject unless U == rG** — the re-encryption check
that defeats chosen-ciphertext tampering, raised as
:class:`~repro.errors.DecryptionError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from repro.core.keys import ServerPublicKey, UserKeyPair, UserPublicKey
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.core.tre import H2_TAG, TimedReleaseScheme
from repro.crypto.kdf import derive_key
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks, unpack_chunks, xor_bytes
from repro.errors import DecryptionError, EncodingError, UpdateVerificationError
from repro.pairing.api import PairingGroup

_H3_TAG = "repro:FO:H3"
_H4_LABEL = "repro:FO:H4"
SIGMA_BYTES = 32


@dataclass(frozen=True)
class FOTRECiphertext:
    """``⟨U, V, W⟩`` plus the public release-time label."""

    u_point: CurvePoint
    sigma_masked: bytes
    message_masked: bytes
    time_label: bytes

    def to_bytes(self, group: PairingGroup) -> bytes:
        return pack_chunks(
            group.point_to_bytes(self.u_point),
            self.sigma_masked,
            self.message_masked,
            self.time_label,
        )

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "FOTRECiphertext":
        chunks = unpack_chunks(data)
        if len(chunks) != 4:
            raise EncodingError("FO-TRE ciphertext must have 4 components")
        return cls(group.point_from_bytes(chunks[0]), chunks[1], chunks[2], chunks[3])

    def size_bytes(self, group: PairingGroup) -> int:
        return len(self.to_bytes(group))


class FOTimedReleaseScheme:
    """Chosen-ciphertext-secure TRE via the Fujisaki–Okamoto transform."""

    def __init__(self, group: PairingGroup):
        self.group = group
        self._base = TimedReleaseScheme(group)

    def precompute_sender(
        self,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        time_labels: Iterable[bytes] = (),
    ) -> None:
        """Warm the base scheme's sender fast paths (incl. GT tables).

        ``_sender_key`` in :meth:`encrypt` picks up the cached pairing
        transparently; FO's derandomized ``r`` does not change the cache
        key, so the output stays byte-identical.
        """
        self._base.precompute_sender(
            receiver_public, server_public, time_labels=time_labels
        )

    def clear_sender_cache(self) -> None:
        self._base.clear_sender_cache()

    def _derive_r(self, sigma: bytes, message: bytes, time_label: bytes) -> int:
        return self.group.hash_to_scalar(sigma, message, time_label, tag=_H3_TAG)

    def encrypt(
        self,
        message: bytes,
        receiver_public: UserPublicKey,
        server_public: ServerPublicKey,
        time_label: bytes,
        rng: random.Random,
        verify_receiver_key: bool = True,
    ) -> FOTRECiphertext:
        if verify_receiver_key:
            receiver_public.ensure_well_formed(self.group, server_public)
        sigma = rng.randbytes(SIGMA_BYTES)
        r = self._derive_r(sigma, message, time_label)
        u_point = self.group.mul(server_public.generator, r)
        k = self._base._sender_key(receiver_public, time_label, r)
        sigma_masked = xor_bytes(
            sigma, self.group.mask_bytes(k, SIGMA_BYTES, tag=H2_TAG)
        )
        message_masked = xor_bytes(
            message, derive_key(sigma, len(message), _H4_LABEL)
        )
        return FOTRECiphertext(u_point, sigma_masked, message_masked, time_label)

    def decrypt(
        self,
        ciphertext: FOTRECiphertext,
        receiver: UserKeyPair | int,
        update: TimeBoundKeyUpdate,
        server_public: ServerPublicKey,
    ) -> bytes:
        """Decrypt and *verify*; any tampering raises DecryptionError."""
        if update.time_label != ciphertext.time_label:
            raise UpdateVerificationError(
                "update is for a different release time than the ciphertext"
            )
        update.ensure_valid(self.group, server_public)
        private = receiver.private if isinstance(receiver, UserKeyPair) else receiver
        if len(ciphertext.sigma_masked) != SIGMA_BYTES:
            raise DecryptionError("malformed sigma component")
        k = self._base._receiver_key(ciphertext.u_point, private, update)
        sigma = xor_bytes(
            ciphertext.sigma_masked,
            self.group.mask_bytes(k, SIGMA_BYTES, tag=H2_TAG),
        )
        message = xor_bytes(
            ciphertext.message_masked,
            derive_key(sigma, len(ciphertext.message_masked), _H4_LABEL),
        )
        r = self._derive_r(sigma, message, ciphertext.time_label)
        if self.group.mul(server_public.generator, r) != ciphertext.u_point:
            raise DecryptionError("FO re-encryption check failed")
        return message
