"""Missing-update-resilient TRE — the paper's stated future work (§6).

In plain TRE "a key update ``s·H1(T)`` could only be used to decrypt
messages with release time ``T``, but not any ``T_i < T``"; receivers
who miss a broadcast must consult the server's archive.  The paper's
conclusion proposes fixing this "using the hierarchical identity based
encryption in a way similar to forward secure encryption [7]".  This
module builds exactly that construction:

* Time is a depth-``d`` binary tree; epoch ``t`` is the leaf whose path
  is the ``d``-bit binary expansion of ``t``.
* A Gentry–Silverberg HIBE node key for path ``(b_1..b_k)`` is

      S = s·P_1 + Σ_{i=2..k} r_i·P_i,    Q_i = r_i·G,

  with ``P_i = H1(b_1..b_i)``.  Holding a node key lets *anyone* derive
  keys for all descendants (add a fresh ``r·P`` per level) — but never
  for any other subtree.
* At time ``t`` the server broadcasts node keys for the **left cover**
  of ``[0, t]``: the ≤ d+1 maximal subtrees containing exactly the
  leaves ``0..t``.  One such broadcast therefore unlocks *every elapsed
  epoch at once* — a receiver who missed arbitrarily many updates
  recovers from the single latest one.
* Encryption stays receiver-bound exactly as in TRE: the session key is
  ``ê(a·sG, P_1)^r``, so decryption needs the receiver's ``a`` *and* a
  node key covering the release epoch; the server (before time ``t``)
  and other users still learn nothing.

Costs (measured in experiment E13): the update grows from one point to
O(d²/2) points worst-case and decryption from one pairing to ≤ d+1
pairings — the price of resilience, exactly the trade the paper
anticipated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.keys import ServerKeyPair, ServerPublicKey, UserKeyPair, UserPublicKey
from repro.core.tre import H2_TAG
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks, xor_bytes
from repro.errors import (
    ParameterError,
    UpdateNotAvailableError,
    UpdateVerificationError,
)
from repro.pairing.api import GTElement, PairingGroup

_TREE_TAG = "repro:H1:tree"


def epoch_path(epoch: int, depth: int) -> tuple[int, ...]:
    """The leaf path of ``epoch``: its ``depth``-bit big-endian expansion."""
    if not 0 <= epoch < (1 << depth):
        raise ParameterError(f"epoch {epoch} out of range for depth {depth}")
    return tuple((epoch >> (depth - 1 - i)) & 1 for i in range(depth))


def left_cover(epoch: int, depth: int) -> list[tuple[int, ...]]:
    """Maximal subtree roots covering exactly the leaves ``0..epoch``.

    For every 1-bit in the path, the 0-sibling subtree at that level is
    entirely in the past; the leaf itself completes the cover.
    """
    path = epoch_path(epoch, depth)
    cover: list[tuple[int, ...]] = []
    for level, bit in enumerate(path):
        if bit == 1:
            cover.append(path[:level] + (0,))
    cover.append(path)
    return cover


@dataclass(frozen=True)
class NodeKey:
    """A GS-HIBE node key: ``(path, S, [Q_2..Q_k])``."""

    path: tuple[int, ...]
    s_point: CurvePoint
    q_points: tuple[CurvePoint, ...]

    @property
    def depth(self) -> int:
        return len(self.path)

    def covers(self, leaf: tuple[int, ...]) -> bool:
        return leaf[: len(self.path)] == self.path

    def point_count(self) -> int:
        return 1 + len(self.q_points)


@dataclass(frozen=True)
class ResilientUpdate:
    """The broadcast for time ``t``: node keys for the left cover of [0,t]."""

    epoch: int
    depth: int
    node_keys: tuple[NodeKey, ...]

    def point_count(self) -> int:
        return sum(key.point_count() for key in self.node_keys)

    def size_bytes(self, group: PairingGroup) -> int:
        total = 16  # epoch + depth framing
        for key in self.node_keys:
            total += len(key.path)
            total += key.point_count() * group.point_bytes
        return total

    def to_bytes(self, group: PairingGroup) -> bytes:
        key_blobs = []
        for key in self.node_keys:
            key_blobs.append(pack_chunks(
                bytes(key.path),
                group.point_to_bytes(key.s_point),
                pack_chunks(*(group.point_to_bytes(q) for q in key.q_points)),
            ))
        return pack_chunks(
            self.epoch.to_bytes(8, "big"),
            self.depth.to_bytes(2, "big"),
            pack_chunks(*key_blobs),
        )

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "ResilientUpdate":
        from repro.encoding import unpack_chunks
        from repro.errors import EncodingError

        chunks = unpack_chunks(data)
        if len(chunks) != 3:
            raise EncodingError("resilient update must have 3 components")
        epoch = int.from_bytes(chunks[0], "big")
        depth = int.from_bytes(chunks[1], "big")
        node_keys = []
        for blob in unpack_chunks(chunks[2]):
            path_bytes, s_blob, q_blob = unpack_chunks(blob)
            if any(b not in (0, 1) for b in path_bytes):
                raise EncodingError("node path bits must be 0 or 1")
            node_keys.append(NodeKey(
                tuple(path_bytes),
                group.point_from_bytes(s_blob),
                tuple(group.point_from_bytes(q) for q in unpack_chunks(q_blob)),
            ))
        return cls(epoch, depth, tuple(node_keys))


@dataclass(frozen=True)
class ResilientCiphertext:
    """``(U_0, U_2..U_d, V)`` plus the release epoch."""

    epoch: int
    depth: int
    u0: CurvePoint
    u_points: tuple[CurvePoint, ...]  # r·P_i for levels 2..d
    masked: bytes


class HierarchicalTimeTree:
    """Shared tree geometry + hash-to-group identities for one deployment."""

    def __init__(self, group: PairingGroup, depth: int, namespace: bytes = b"time"):
        if depth < 1:
            raise ParameterError("tree depth must be at least 1")
        self.group = group
        self.depth = depth
        self.namespace = namespace

    def node_point(self, path: tuple[int, ...]) -> CurvePoint:
        """``P_k = H1(namespace, depth, b_1..b_k)``."""
        label = pack_chunks(
            self.namespace,
            self.depth.to_bytes(2, "big"),
            bytes(path),
        )
        return self.group.hash_to_g1(label, tag=_TREE_TAG)

    def path_points(self, path: tuple[int, ...]) -> list[CurvePoint]:
        return [self.node_point(path[: i + 1]) for i in range(len(path))]


class ResilientTimeServer:
    """A passive server whose broadcasts unlock *all* elapsed epochs."""

    def __init__(
        self,
        group: PairingGroup,
        depth: int,
        rng: random.Random,
        keypair: ServerKeyPair | None = None,
        namespace: bytes = b"time",
    ):
        self.group = group
        self.tree = HierarchicalTimeTree(group, depth, namespace)
        self._keypair = keypair or ServerKeyPair.generate(group, rng)
        self._rng = rng
        self.latest_epoch: int | None = None

    @property
    def public_key(self) -> ServerPublicKey:
        return self._keypair.public

    @property
    def depth(self) -> int:
        return self.tree.depth

    def _make_node_key(self, path: tuple[int, ...]) -> NodeKey:
        """``S = s·P_1 + Σ r_i·P_i`` with fresh ``r_i`` (footnote 4 still
        holds: nothing is remembered between broadcasts)."""
        points = self.tree.path_points(path)
        s_point = self.group.mul(points[0], self._keypair.private)
        q_points = []
        for point in points[1:]:
            r = self.group.random_scalar(self._rng)
            s_point = self.group.add(s_point, self.group.mul(point, r))
            q_points.append(self.group.mul(self.public_key.generator, r))
        return NodeKey(path, s_point, tuple(q_points))

    def publish_update(self, epoch: int) -> ResilientUpdate:
        """One broadcast covering every epoch ``<= epoch``."""
        cover = left_cover(epoch, self.depth)
        update = ResilientUpdate(
            epoch, self.depth, tuple(self._make_node_key(p) for p in cover)
        )
        if self.latest_epoch is None or epoch > self.latest_epoch:
            self.latest_epoch = epoch
        return update

    def verify_node_key(self, key: NodeKey) -> bool:
        """Self-authentication, generalized: check
        ``ê(G, S) == ê(sG, P_1) · Π ê(Q_i, P_i)``.

        The whole product equation is one multi-pairing ratio check —
        ``k + 2`` Miller loops in lockstep, a single final
        exponentiation — instead of ``k + 2`` standalone pairings.
        """
        if not self.group.in_group(key.s_point):
            return False
        points = self.tree.path_points(key.path)
        if len(points) != len(key.q_points) + 1:
            return False
        return self.group.pair_ratio_is_one(
            ((self.public_key.generator, key.s_point),),
            [
                (self.public_key.s_generator, points[0]),
                *zip(key.q_points, points[1:]),
            ],
        )


class ResilientTRE:
    """TRE whose decryption accepts any covering node key.

    Bound to one server's public key: the translation points ``Q_i``
    must use the same generator as the ciphertext's ``U_0`` for the
    pairing ratios to cancel, so key derivation needs ``G``.
    """

    def __init__(
        self,
        group: PairingGroup,
        tree: HierarchicalTimeTree,
        server_public: ServerPublicKey,
    ):
        self.group = group
        self.tree = tree
        self.server_public = server_public

    def generate_user_keypair(
        self, server_public: ServerPublicKey, rng: random.Random
    ) -> UserKeyPair:
        return UserKeyPair.generate(self.group, server_public, rng)

    def encrypt(
        self,
        message: bytes,
        receiver_public: UserPublicKey,
        epoch: int,
        rng: random.Random,
        verify_receiver_key: bool = True,
    ) -> ResilientCiphertext:
        """GS-HIBE encryption bound to the receiver's ``asG``."""
        if verify_receiver_key:
            receiver_public.ensure_well_formed(self.group, self.server_public)
        path = epoch_path(epoch, self.tree.depth)
        points = self.tree.path_points(path)
        r = self.group.random_scalar(rng)
        u0 = self.group.mul(self.server_public.generator, r)
        u_points = tuple(self.group.mul(p, r) for p in points[1:])
        # K = ê(a·sG, P_1)^r — receiver-bound exactly like plain TRE.
        k = self.group.pair(receiver_public.as_generator, points[0]) ** r
        mask = self.group.mask_bytes(k, len(message), tag=H2_TAG)
        return ResilientCiphertext(
            epoch, self.tree.depth, u0, u_points, xor_bytes(message, mask)
        )

    def derive_leaf_key(
        self, node_key: NodeKey, epoch: int, rng: random.Random
    ) -> NodeKey:
        """Public derivation: extend a covering node key down to a leaf.

        Each added level appends a fresh ``r·P`` to ``S`` and ``r·G`` to
        the translation list — no secret input needed, which is what
        makes one broadcast serve every past epoch.
        """
        leaf = epoch_path(epoch, self.tree.depth)
        if not node_key.covers(leaf):
            raise UpdateNotAvailableError(
                f"node key for {node_key.path} does not cover epoch {epoch}"
            )
        s_point = node_key.s_point
        q_points = list(node_key.q_points)
        for level in range(node_key.depth, self.tree.depth):
            point = self.tree.node_point(leaf[: level + 1])
            r = self.group.random_scalar(rng)
            s_point = self.group.add(s_point, self.group.mul(point, r))
            q_points.append(self.group.mul(self.server_public.generator, r))
        return NodeKey(leaf, s_point, tuple(q_points))

    def find_covering_key(
        self, update: ResilientUpdate, epoch: int
    ) -> NodeKey:
        leaf = epoch_path(epoch, self.tree.depth)
        for key in update.node_keys:
            if key.covers(leaf):
                return key
        raise UpdateNotAvailableError(
            f"update for epoch {update.epoch} does not cover epoch {epoch}"
        )

    def decrypt(
        self,
        ciphertext: ResilientCiphertext,
        receiver: UserKeyPair | int,
        update_or_leaf_key: ResilientUpdate | NodeKey,
        rng: random.Random | None = None,
    ) -> bytes:
        """Decrypt with any update published at or after the release epoch.

        ``K' = [ê(U_0, S_leaf) / Π ê(Q_i, U_i)]^a``.
        """
        private = receiver.private if isinstance(receiver, UserKeyPair) else receiver
        if isinstance(update_or_leaf_key, ResilientUpdate):
            if rng is None:
                raise ParameterError("derivation from an update needs an rng")
            covering = self.find_covering_key(update_or_leaf_key, ciphertext.epoch)
            leaf_key = self.derive_leaf_key(covering, ciphertext.epoch, rng)
        else:
            leaf_key = update_or_leaf_key
        leaf = epoch_path(ciphertext.epoch, self.tree.depth)
        if leaf_key.path != leaf:
            raise UpdateVerificationError(
                "leaf key does not match the ciphertext's release epoch"
            )
        if len(leaf_key.q_points) != len(ciphertext.u_points):
            raise UpdateVerificationError("malformed leaf key or ciphertext")
        # One multi-pairing for the whole ratio: d+1 Miller loops in
        # lockstep (divisions become conjugated factors), one final exp.
        k: GTElement = self.group.multi_pair(
            [
                (ciphertext.u0, leaf_key.s_point),
                *zip(leaf_key.q_points, ciphertext.u_points),
            ],
            [1] + [-1] * len(leaf_key.q_points),
        )
        k = k ** private
        mask = self.group.mask_bytes(k, len(ciphertext.masked), tag=H2_TAG)
        return xor_bytes(ciphertext.masked, mask)
