"""Threshold time server: k-of-N update issuance.

§5.3.5 distributes trust by requiring *all* N servers' updates — which
also means a single crashed server halts every release.  The natural
refinement (and the design modern drand-style networks adopted) is a
*threshold* server group: the master secret ``s`` is Shamir-shared
across N members, each member independently publishes its update share
``s_i·H1(T)``, and any ``k`` shares Lagrange-combine — in the exponent
— into the ordinary update ``s·H1(T)``:

    s·H1(T) = Σ_{i∈S} λ_i^S · (s_i·H1(T)),   |S| = k

Properties carried over from the paper's model:

* members stay **passive**: each broadcasts one share per instant;
* the combined update is byte-identical to a single-server update, so
  every scheme in :mod:`repro.core` consumes it unchanged;
* fewer than ``k`` colluding members learn nothing about ``s`` and
  cannot forge an early update (Shamir privacy);
* up to ``N - k`` members can be offline/corrupt without delaying a
  release.

Share authenticity is verifiable against Feldman commitments
(``a_j·G`` for each polynomial coefficient), so a combiner can discard
bad shares before interpolating — checked with two pairings per share,
the same self-authentication pattern as ordinary updates.

The dealer-based setup models the paper's single trusted authority
splitting itself; a DKG would remove the dealer but adds nothing to the
cost model measured in experiment E13.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.keys import ServerPublicKey
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.core.tre import H1_TAG
from repro.ec.point import CurvePoint
from repro.errors import ParameterError, UpdateVerificationError
from repro.math.modular import inverse_mod
from repro.pairing.api import PairingGroup


def _eval_poly(coefficients: list[int], x: int, q: int) -> int:
    """Horner evaluation of the sharing polynomial over ``Z_q``."""
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * x + coefficient) % q
    return result


def lagrange_coefficient_at_zero(indices: list[int], i: int, q: int) -> int:
    """``λ_i = Π_{j≠i} j / (j - i) mod q`` for interpolation at x=0."""
    if i not in indices:
        raise ParameterError(f"index {i} not in the interpolation set")
    numerator, denominator = 1, 1
    for j in indices:
        if j == i:
            continue
        numerator = numerator * j % q
        denominator = denominator * (j - i) % q
    return numerator * inverse_mod(denominator, q) % q


@dataclass(frozen=True)
class UpdateShare:
    """One member's contribution ``s_i·H1(T)`` for time ``T``."""

    member_index: int
    time_label: bytes
    point: CurvePoint

    def to_bytes(self, group: PairingGroup) -> bytes:
        from repro.encoding import pack_chunks

        return pack_chunks(
            self.member_index.to_bytes(4, "big"),
            self.time_label,
            group.point_to_bytes(self.point),
        )

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "UpdateShare":
        from repro.encoding import unpack_chunks
        from repro.errors import EncodingError

        chunks = unpack_chunks(data)
        if len(chunks) != 3 or len(chunks[0]) != 4:
            raise EncodingError("update share must have 3 components")
        return cls(
            int.from_bytes(chunks[0], "big"),
            chunks[1],
            group.point_from_bytes(chunks[2]),
        )


class ThresholdServerMember:
    """A single share-holding member of the threshold time server."""

    def __init__(
        self,
        group: PairingGroup,
        index: int,
        share: int,
        group_public: ServerPublicKey,
    ):
        if index < 1:
            raise ParameterError("member indices start at 1 (x=0 is the secret)")
        self.group = group
        self.index = index
        self._share = share
        self.group_public = group_public
        # The member's verification key s_i·G, published at setup.
        self.verification_key = group.mul(group_public.generator, share)
        self.shares_published = 0

    def issue_update_share(self, time_label: bytes) -> UpdateShare:
        """Sign the time string with the share: ``s_i·H1(T)``."""
        h_t = self.group.hash_to_g1(time_label, tag=H1_TAG)
        self.shares_published += 1
        return UpdateShare(self.index, time_label, self.group.mul(h_t, self._share))


class ThresholdTimeServer:
    """The public face of a k-of-N threshold time server group.

    Construct with :meth:`setup`; it returns the coordinator object
    (holding only public data) plus the N member objects.  Anyone — a
    receiver, a relay, one of the members — can run
    :meth:`verify_share` and :meth:`combine`; no secret is needed.
    """

    def __init__(
        self,
        group: PairingGroup,
        threshold: int,
        public_key: ServerPublicKey,
        commitments: list[CurvePoint],
    ):
        self.group = group
        self.threshold = threshold
        self.public_key = public_key
        # Feldman commitments a_0·G .. a_{k-1}·G with a_0 = s.
        self.commitments = commitments

    @classmethod
    def setup(
        cls,
        group: PairingGroup,
        members: int,
        threshold: int,
        rng: random.Random,
        generator: CurvePoint | None = None,
    ) -> tuple["ThresholdTimeServer", list[ThresholdServerMember]]:
        """Dealer setup: share a fresh ``s`` into ``members`` shares."""
        if not 1 <= threshold <= members:
            raise ParameterError("need 1 <= threshold <= members")
        if generator is None:
            generator = group.mul(group.generator, group.random_scalar(rng))
        coefficients = [group.random_scalar(rng) for _ in range(threshold)]
        secret = coefficients[0]
        public = ServerPublicKey(generator, group.mul(generator, secret))
        commitments = [group.mul(generator, a) for a in coefficients]
        coordinator = cls(group, threshold, public, commitments)
        member_objects = [
            ThresholdServerMember(
                group, i, _eval_poly(coefficients, i, group.q), public
            )
            for i in range(1, members + 1)
        ]
        return coordinator, member_objects

    # ------------------------------------------------------------------
    # Share verification (Feldman + pairing).
    # ------------------------------------------------------------------

    def expected_verification_key(self, index: int) -> CurvePoint:
        """``s_i·G`` recomputed from the public commitments:
        ``Σ_j i^j · (a_j·G)``."""
        total = self.group.identity()
        power = 1
        for commitment in self.commitments:
            total = self.group.add(total, self.group.mul(commitment, power))
            power = power * index % self.group.q
        return total

    def verify_share(self, share: UpdateShare) -> bool:
        """Check ``ê(s_iG, H1(T)) == ê(G, share)`` against the Feldman
        commitments — a bad or substituted share is caught before it can
        poison the combination."""
        if share.point.is_infinity or not self.group.in_group(share.point):
            return False
        verification_key = self.expected_verification_key(share.member_index)
        h_t = self.group.hash_to_g1(share.time_label, tag=H1_TAG)
        return self.group.pair_ratio_is_one(
            ((verification_key, h_t),),
            ((self.public_key.generator, share.point),),
        )

    # ------------------------------------------------------------------
    # Combination.
    # ------------------------------------------------------------------

    def combine(
        self, shares: list[UpdateShare], verify: bool = True
    ) -> TimeBoundKeyUpdate:
        """Lagrange-combine ``k`` verified shares into ``s·H1(T)``.

        Extra shares beyond the threshold are ignored (the first ``k``
        distinct valid ones are used).  The result is indistinguishable
        from — and verified exactly like — a single-server update.
        """
        distinct: dict[int, UpdateShare] = {}
        label = None
        for share in shares:
            if label is None:
                label = share.time_label
            elif share.time_label != label:
                raise UpdateVerificationError(
                    "shares are for different time labels"
                )
            if share.member_index in distinct:
                continue
            if verify and not self.verify_share(share):
                raise UpdateVerificationError(
                    f"share from member {share.member_index} failed verification"
                )
            distinct[share.member_index] = share
            if len(distinct) == self.threshold:
                break
        if len(distinct) < self.threshold:
            raise UpdateVerificationError(
                f"need {self.threshold} valid shares, got {len(distinct)}"
            )
        indices = sorted(distinct)
        combined = self.group.identity()
        for index in indices:
            coefficient = lagrange_coefficient_at_zero(
                indices, index, self.group.q
            )
            combined = self.group.add(
                combined, self.group.mul(distinct[index].point, coefficient)
            )
        update = TimeBoundKeyUpdate(label, combined)
        if verify:
            update.ensure_valid(self.group, self.public_key)
        return update
