"""Multi-recipient timed release broadcast (one ``U``, N KEM headers).

A sender addressing many receivers with the *same* message and release
time would naively run N independent TRE encryptions: N scalar
multiplications for the ``U_i = r_i G``, N pairings, and N copies of the
payload.  The broadcast mode shares everything that can be shared:

* **one** randomizer ``r`` and therefore **one** ``U = rG``;
* **one** DEM payload ``AEAD_{K_dem}(M)``;
* **N** per-recipient KEM headers, each wrapping ``K_dem`` under
  ``H2(ê(as_iG, H1(T))^r)`` — with the sender GT cache warm
  (:meth:`BroadcastTimedReleaseScheme.precompute_sender`), each header
  costs one table-driven GT exponentiation, no pairing.

Sharing ``r`` across recipients is safe here for the same reason it is
in ElGamal-style multi-recipient KEMs: the per-recipient secrets
``ê(as_iG, H1(T))^r`` are independent one-way functions of the distinct
receiver keys, and the DEM key is wrapped (not reused as a mask) so a
recipient learns nothing about another's header.  Each header is bound
to ``(U, T)`` through the AEAD associated data, and a receiver opening
the wrong header gets a :class:`~repro.errors.DecryptionError` from the
tag check — never silent garbage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.keys import ServerPublicKey, UserKeyPair, UserPublicKey
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.core.tre import H2_TAG, TimedReleaseScheme
from repro.crypto.authenc import aead_decrypt, aead_encrypt
from repro.ec.point import CurvePoint
from repro.encoding import pack_chunks, unpack_chunks
from repro.errors import (
    DecryptionError,
    EncodingError,
    ParameterError,
    UpdateVerificationError,
)
from repro.pairing.api import PairingGroup

_KEY_BYTES = 32
_KEM_NONCE = b"tre-bc-kem"
_DEM_NONCE = b"tre-bc-dem"


@dataclass(frozen=True)
class BroadcastCiphertext:
    """``⟨U, T, header_1..header_N, sealed⟩`` for N recipients.

    ``headers[i]`` wraps the DEM key for recipient ``i`` (the order the
    sender passed to :meth:`BroadcastTimedReleaseScheme.encrypt_broadcast`);
    ``sealed`` is the single shared AEAD payload.  Size grows by one
    constant-size header per recipient instead of one full ciphertext.
    """

    u_point: CurvePoint
    time_label: bytes
    headers: tuple[bytes, ...]
    sealed: bytes

    @property
    def recipients(self) -> int:
        return len(self.headers)

    def to_bytes(self, group: PairingGroup) -> bytes:
        return pack_chunks(
            group.point_to_bytes(self.u_point),
            self.time_label,
            *self.headers,
            self.sealed,
        )

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes) -> "BroadcastCiphertext":
        chunks = unpack_chunks(data)
        if len(chunks) < 4:
            raise EncodingError(
                "broadcast ciphertext needs U, label, >=1 header and payload"
            )
        return cls(
            group.point_from_bytes(chunks[0]),
            chunks[1],
            tuple(chunks[2:-1]),
            chunks[-1],
        )

    def size_bytes(self, group: PairingGroup) -> int:
        return len(self.to_bytes(group))


class BroadcastTimedReleaseScheme:
    """One-to-many TRE: shared ``U`` and payload, per-recipient headers."""

    def __init__(self, group: PairingGroup):
        self.group = group
        self._kem = TimedReleaseScheme(group)

    def precompute_sender(
        self,
        receivers: Iterable[UserPublicKey],
        server_public: ServerPublicKey,
        time_labels: Iterable[bytes] = (),
    ) -> None:
        """Warm every recipient's sender fast paths (incl. GT tables).

        With labels given, a subsequent :meth:`encrypt_broadcast` for a
        warmed ``(receiver set, T)`` performs one fixed-base ``rG`` and
        one table-driven GT exponentiation per recipient — zero
        pairings, zero hash-to-curve calls.
        """
        time_labels = list(time_labels)
        for receiver_public in receivers:
            self._kem.precompute_sender(
                receiver_public, server_public, time_labels=time_labels
            )

    def clear_sender_cache(self) -> None:
        self._kem.clear_sender_cache()

    def encrypt_broadcast(
        self,
        message: bytes,
        receivers: Sequence[UserPublicKey],
        server_public: ServerPublicKey,
        time_label: bytes,
        rng: random.Random,
        verify_receiver_keys: bool = True,
    ) -> BroadcastCiphertext:
        """Encrypt ``message`` once for every receiver in ``receivers``.

        Exactly two rng draws regardless of N — the shared randomizer
        ``r`` and the DEM key — so repeated calls with a seeded rng are
        reproducible.  ``verify_receiver_keys=False`` skips the per-key
        well-formedness pairing check for pre-validated key sets.
        """
        if not receivers:
            raise ParameterError("broadcast needs at least one receiver")
        if verify_receiver_keys:
            for receiver_public in receivers:
                receiver_public.ensure_well_formed(self.group, server_public)
        r = self.group.random_scalar(rng)
        dem_key = rng.randbytes(_KEY_BYTES)
        u_point = self.group.mul(server_public.generator, r)
        header_ad = self.group.point_to_bytes(u_point) + time_label
        headers = []
        for receiver_public in receivers:
            k = self._kem._sender_key(receiver_public, time_label, r)
            wrap_key = self.group.mask_bytes(k, _KEY_BYTES, tag=H2_TAG)
            headers.append(
                aead_encrypt(
                    wrap_key, _KEM_NONCE, dem_key, associated_data=header_ad
                )
            )
        sealed = aead_encrypt(
            dem_key, _DEM_NONCE, message, associated_data=time_label
        )
        return BroadcastCiphertext(u_point, time_label, tuple(headers), sealed)

    def open_header(
        self,
        ciphertext: BroadcastCiphertext,
        header_index: int,
        receiver: UserKeyPair | int,
        update: TimeBoundKeyUpdate,
    ) -> bytes:
        """Recover the DEM key from one header; raises on a wrong slot.

        A receiver whose key does not match ``headers[header_index]``
        fails the AEAD tag check — the cross-recipient rejection the
        tests pin down.
        """
        if not 0 <= header_index < len(ciphertext.headers):
            raise ParameterError(
                f"header index {header_index} out of range for "
                f"{len(ciphertext.headers)} recipients"
            )
        private = receiver.private if isinstance(receiver, UserKeyPair) else receiver
        k = self._kem._receiver_key(ciphertext.u_point, private, update)
        wrap_key = self.group.mask_bytes(k, _KEY_BYTES, tag=H2_TAG)
        header_ad = (
            self.group.point_to_bytes(ciphertext.u_point) + ciphertext.time_label
        )
        try:
            return aead_decrypt(
                wrap_key,
                _KEM_NONCE,
                ciphertext.headers[header_index],
                associated_data=header_ad,
            )
        except DecryptionError:
            raise DecryptionError(
                "broadcast header does not open for this receiver"
            ) from None

    def decrypt_broadcast(
        self,
        ciphertext: BroadcastCiphertext,
        header_index: int,
        receiver: UserKeyPair | int,
        update: TimeBoundKeyUpdate,
        server_public: ServerPublicKey | None = None,
    ) -> bytes:
        """Open header ``header_index`` and then the shared payload.

        Named ``decrypt_broadcast`` (mirroring :meth:`encrypt_broadcast`)
        rather than ``decrypt``: the header index is public routing
        information, unlike the secret-typed positional arguments of
        the single-recipient ``decrypt`` methods.
        """
        if update.time_label != ciphertext.time_label:
            raise UpdateVerificationError(
                "update is for a different release time than the ciphertext"
            )
        if server_public is not None:
            update.ensure_valid(self.group, server_public)
        dem_key = self.open_header(ciphertext, header_index, receiver, update)
        return aead_decrypt(
            dem_key,
            _DEM_NONCE,
            ciphertext.sealed,
            associated_data=ciphertext.time_label,
        )
