"""Randomness sources.

The library takes explicit ``random.Random``-like objects everywhere so
tests and benchmarks are deterministic.  For production use,
:func:`system_rng` adapts :class:`secrets.SystemRandom`;
:func:`seeded_rng` labels the deterministic choice explicitly at call
sites instead of hiding a module-level global.

Fork safety
-----------

A ``fork()`` duplicates the whole process, including any deterministic
generator state — two children that inherit a Mersenne-Twister instance
replay the *same* "random" stream, which for nonce material is
catastrophic (duplicate BLS-style signature nonces leak the signing
key).  This module's discipline:

* :func:`process_rng` returns a per-process cached
  :class:`secrets.SystemRandom`.  Its draws read the kernel CSPRNG on
  every call, so the cache itself carries no replayable state; caching
  merely avoids re-instantiating the adapter in hot worker loops.
* An ``os.register_at_fork`` hook still drops the cache and bumps
  :func:`fork_generation` in every forked child — the guard costs
  nothing, makes the process-local lifecycle explicit, and asserts the
  pattern any *stateful* cache would need (``repro.lint`` rule RP301
  flags caches without it).
"""

from __future__ import annotations

import os
import random
import secrets

# Per-process cached SystemRandom and the fork counter.  SystemRandom
# is stateless between draws (every call reads the OS CSPRNG), so the
# cache is safe to share; the at-fork hook below resets it anyway so
# children provably never reuse a parent object.
_PROCESS_RNG: random.Random | None = None
_FORK_GENERATION = 0


def system_rng() -> random.Random:
    """A cryptographically secure RNG backed by the OS."""
    return secrets.SystemRandom()


def process_rng() -> random.Random:
    """The per-process shared :class:`secrets.SystemRandom`.

    Safe under ``fork`` and ``spawn``: draws read the kernel CSPRNG, so
    parent and children can never replay each other's stream, and the
    registered at-fork guard re-creates the instance in each forked
    child regardless.  Prefer this inside worker tasks over caching an
    RNG in module state yourself.
    """
    global _PROCESS_RNG
    if _PROCESS_RNG is None:
        _PROCESS_RNG = secrets.SystemRandom()
    return _PROCESS_RNG


def fork_generation() -> int:
    """How many times this process has been forked *into* (0 in the
    original process, parents included).  Worker code can assert it is
    running post-fork state, and tests can verify the guard fired."""
    return _FORK_GENERATION


def _reset_after_fork() -> None:
    """At-fork child hook: drop inherited RNG state, count the fork."""
    global _PROCESS_RNG, _FORK_GENERATION
    _PROCESS_RNG = None
    _FORK_GENERATION += 1


if hasattr(os, "register_at_fork"):  # not available on all platforms
    os.register_at_fork(after_in_child=_reset_after_fork)


def seeded_rng(seed: int | bytes | str) -> random.Random:
    """A deterministic RNG for tests, examples and benchmarks."""
    # lint: allow[rng-discipline] the one sanctioned Mersenne-Twister
    # constructor; callers outside tests/benchmarks/sim are linted (RP101)
    return random.Random(seed)
