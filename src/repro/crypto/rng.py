"""Randomness sources.

The library takes explicit ``random.Random``-like objects everywhere so
tests and benchmarks are deterministic.  For production use,
:func:`system_rng` adapts :class:`secrets.SystemRandom`;
:func:`seeded_rng` labels the deterministic choice explicitly at call
sites instead of hiding a module-level global.
"""

from __future__ import annotations

import random
import secrets


def system_rng() -> random.Random:
    """A cryptographically secure RNG backed by the OS."""
    return secrets.SystemRandom()


def seeded_rng(seed: int | bytes | str) -> random.Random:
    """A deterministic RNG for tests, examples and benchmarks."""
    # lint: allow[rng-discipline] the one sanctioned Mersenne-Twister
    # constructor; callers outside tests/benchmarks/sim are linted (RP101)
    return random.Random(seed)
