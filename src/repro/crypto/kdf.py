"""A counter-mode key-derivation function (NIST SP 800-108 style).

``derive_key(secret, length, label)`` expands ``secret`` into ``length``
bytes bound to an ASCII ``label``; different labels yield independent
keys, which is how one pairing value can safely feed both the cipher and
the MAC in :mod:`repro.crypto.authenc`.
"""

from __future__ import annotations

import hashlib
import hmac

_BLOCK = 32  # SHA-256 output size.


def derive_key(secret: bytes, length: int, label: str = "repro:kdf") -> bytes:
    """Derive ``length`` pseudo-random bytes from ``secret``.

    HMAC-SHA256 in counter mode: ``K_i = HMAC(secret, i || label)``.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        message = counter.to_bytes(4, "big") + label.encode()
        blocks.append(hmac.new(secret, message, hashlib.sha256).digest())
    return b"".join(blocks)[:length]


def derive_subkeys(secret: bytes, *labels: str, length: int = 32) -> tuple[bytes, ...]:
    """Derive one independent ``length``-byte subkey per label."""
    return tuple(derive_key(secret, length, label) for label in labels)
