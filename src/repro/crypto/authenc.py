"""Encrypt-then-MAC authenticated encryption (the hybrid DEM).

The key establishment side (TRE, ID-TRE, multi-server, ...) produces a
short shared secret; this module turns that secret into confidentiality
*and* integrity for arbitrary-length messages:

1. derive independent cipher and MAC subkeys from the secret,
2. encrypt with the SHA-256-CTR stream cipher under a caller nonce,
3. MAC ``nonce || associated_data || ciphertext``.

Decryption verifies the tag before releasing any plaintext.
"""

from __future__ import annotations

from repro.crypto.kdf import derive_subkeys
from repro.crypto.mac import MAC_BYTES, compute_mac, verify_mac
from repro.crypto.stream import stream_xor
from repro.errors import DecryptionError

_ENC_LABEL = "repro:aead:enc"
_MAC_LABEL = "repro:aead:mac"


def aead_encrypt(
    secret: bytes, nonce: bytes, plaintext: bytes, associated_data: bytes = b""
) -> bytes:
    """Return ``ciphertext || tag`` for ``plaintext`` under ``secret``."""
    enc_key, mac_key = derive_subkeys(secret, _ENC_LABEL, _MAC_LABEL)
    ciphertext = stream_xor(enc_key, nonce, plaintext)
    tag = compute_mac(mac_key, nonce, associated_data, ciphertext)
    return ciphertext + tag


def aead_decrypt(
    secret: bytes, nonce: bytes, sealed: bytes, associated_data: bytes = b""
) -> bytes:
    """Verify and open ``ciphertext || tag``; raises :class:`DecryptionError`."""
    if len(sealed) < MAC_BYTES:
        raise DecryptionError("sealed blob shorter than its MAC tag")
    ciphertext, tag = sealed[:-MAC_BYTES], sealed[-MAC_BYTES:]
    enc_key, mac_key = derive_subkeys(secret, _ENC_LABEL, _MAC_LABEL)
    if not verify_mac(mac_key, tag, nonce, associated_data, ciphertext):
        raise DecryptionError("authentication tag mismatch")
    return stream_xor(enc_key, nonce, ciphertext)
