"""Constant-time comparison helpers.

Python's ``==`` on ``bytes`` short-circuits at the first differing
byte, so comparing an attacker-supplied value against a secret leaks
the length of the matching prefix through timing.  Every secret
comparison in this library (MAC tags, commitments, derived keys) goes
through :func:`bytes_eq`; the RP102 lint rule enforces it.
"""

from __future__ import annotations

import hmac


def bytes_eq(a: bytes, b: bytes) -> bool:
    """Constant-time equality of two byte strings.

    Wraps :func:`hmac.compare_digest` with a strict type check so a
    ``str`` can never silently take the non-constant-time path the
    stdlib allows for ASCII arguments.
    """
    if not isinstance(a, (bytes, bytearray, memoryview)) or not isinstance(
        b, (bytes, bytearray, memoryview)
    ):
        raise TypeError("bytes_eq compares bytes-like values only")
    return hmac.compare_digest(bytes(a), bytes(b))
