"""HMAC-SHA256 message authentication with constant-time verification."""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.ct import bytes_eq

MAC_BYTES = 32


def compute_mac(key: bytes, *parts: bytes) -> bytes:
    """HMAC-SHA256 over length-framed parts (unambiguous concatenation)."""
    mac = hmac.new(key, digestmod=hashlib.sha256)
    for part in parts:
        mac.update(len(part).to_bytes(8, "big"))
        mac.update(part)
    return mac.digest()


def verify_mac(key: bytes, tag: bytes, *parts: bytes) -> bool:
    """Constant-time check of ``tag`` against the recomputed MAC.

    A wrong-length tag can never verify; rejecting it up front keeps
    the comparison length-independent of attacker input.
    """
    if len(tag) != MAC_BYTES:
        return False
    return bytes_eq(tag, compute_mac(key, *parts))
