"""Redacted reprs for key-holding dataclasses.

A dataclass-generated ``__repr__`` renders every field, so a keypair
that reaches a log line, an exception message or an interactive
session prints its secret scalar.  :func:`redacted_repr` replaces the
generated ``__repr__`` with one that renders only the explicitly
whitelisted public fields and shows every other field as
:data:`_REDACTED` — opt-in visibility, so a newly added field is
hidden by default.

Usage::

    @redacted_repr("public")
    @dataclass(frozen=True)
    class ServerKeyPair:
        private: int
        public: ServerPublicKey

``repr(ServerKeyPair(...))`` then prints
``ServerKeyPair(private=<redacted>, public=...)``.

The static analyzer (``repro.lint`` rule RP201) recognizes the
decorator as proof that the generated repr cannot leak.
"""

from __future__ import annotations

import dataclasses

_REDACTED = "<redacted>"


def redacted_repr(*public_fields: str):
    """Class decorator: repr only ``public_fields``, redact the rest.

    Apply *above* ``@dataclass`` so the fields exist when the decorator
    runs.  Unknown names in ``public_fields`` raise immediately — a
    typo must not silently redact the wrong field forever.
    """

    def decorate(cls):
        names = tuple(f.name for f in dataclasses.fields(cls))
        unknown = [name for name in public_fields if name not in names]
        if unknown:
            raise TypeError(
                f"redacted_repr: {cls.__name__} has no field(s) {unknown!r}"
            )

        def __repr__(self) -> str:
            parts = ", ".join(
                f"{name}={getattr(self, name)!r}"
                if name in public_fields
                else f"{name}={_REDACTED}"
                for name in names
            )
            return f"{type(self).__name__}({parts})"

        __repr__.__qualname__ = f"{cls.__qualname__}.__repr__"
        cls.__repr__ = __repr__
        return cls

    return decorate
