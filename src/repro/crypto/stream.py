"""A SHA-256 counter-mode stream cipher.

``keystream(key, nonce, length)`` produces a pseudo-random pad;
``stream_xor`` applies it.  XOR symmetry means encryption and decryption
are the same operation, exactly like the ``M ⊕ H2(K)`` masking step in
the paper's schemes — this module is the general-length extension of
that idea used by the hybrid DEM.
"""

from __future__ import annotations

import hashlib

from repro.encoding import xor_bytes

_BLOCK = 32


def keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """``length`` pad bytes from ``SHA256(key || nonce || counter)`` blocks."""
    if length < 0:
        raise ValueError("length must be non-negative")
    blocks = []
    prefix = len(key).to_bytes(2, "big") + key + len(nonce).to_bytes(2, "big") + nonce
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
        )
    return b"".join(blocks)[:length]


def stream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt ``data`` under ``(key, nonce)``."""
    return xor_bytes(data, keystream(key, nonce, len(data)))
