"""Symmetric building blocks: KDF, stream cipher, MAC, authenticated encryption.

Everything here is built on the standard library's SHA-256/SHA-512 and
``hmac`` — no third-party crypto dependency, in keeping with the
from-scratch mandate.  These primitives carry the data-plane work: the
pairing schemes in :mod:`repro.core` establish short keys and the
encrypt-then-MAC DEM here protects arbitrary-length payloads.
"""

from repro.crypto.ct import bytes_eq
from repro.crypto.kdf import derive_key
from repro.crypto.redact import redacted_repr
from repro.crypto.stream import keystream, stream_xor
from repro.crypto.mac import compute_mac, verify_mac
from repro.crypto.authenc import aead_decrypt, aead_encrypt

__all__ = [
    "bytes_eq",
    "derive_key",
    "keystream",
    "stream_xor",
    "compute_mac",
    "verify_mac",
    "aead_encrypt",
    "aead_decrypt",
    "redacted_repr",
]
