"""Short Weierstrass curves ``y^2 = x^3 + a*x + b`` over Fp or Fp2.

The curve object is generic over the coefficient field: anything with the
element protocol used by :mod:`repro.math.field` / :mod:`repro.math.quadratic`
(arithmetic operators, ``square``, ``inverse``, ``is_zero``, ``to_bytes``)
works.  Scalar multiplication runs in Jacobian projective coordinates so a
``k``-bit multiply costs one field inversion instead of ``~1.5k``.
"""

from __future__ import annotations

from repro.errors import DecodingError, NotOnCurveError, ParameterError
from repro.ec.point import CurvePoint


class EllipticCurve:
    """``y^2 = x^3 + a*x + b`` over an explicit field object."""

    __slots__ = ("field", "a", "b")

    def __init__(self, field, a, b):
        self.field = field
        self.a = a
        self.b = b
        # 4a^3 + 27b^2 != 0 guarantees the curve is non-singular.
        discriminant = a * a * a * 4 + b * b * 27
        if discriminant.is_zero():
            raise ParameterError("singular curve: 4a^3 + 27b^2 == 0")

    def infinity(self) -> CurvePoint:
        return CurvePoint(self, None, None)

    def contains(self, x, y) -> bool:
        """Whether affine coordinates ``(x, y)`` satisfy the curve equation."""
        return (y.square() - (x.square() * x + self.a * x + self.b)).is_zero()

    def point(self, x, y) -> CurvePoint:
        """Construct a point, validating it lies on the curve."""
        if not self.contains(x, y):
            raise NotOnCurveError("coordinates do not satisfy curve equation")
        return CurvePoint(self, x, y)

    def unchecked_point(self, x, y) -> CurvePoint:
        """Construct a point without the on-curve check (internal use)."""
        return CurvePoint(self, x, y)

    def point_from_x(self, x, y_parity: int = 0) -> CurvePoint:
        """Lift ``x`` to a point, choosing the root with the given parity bit.

        Only supported over the base field (Fp), where ``sqrt`` exists on
        elements.  Raises :class:`NotOnCurveError` when ``x^3 + ax + b`` is
        a non-residue.
        """
        rhs = x.square() * x + self.a * x + self.b
        if not rhs.is_square():
            raise NotOnCurveError("x does not lift to a curve point")
        y = rhs.sqrt()
        if y.value % 2 != y_parity % 2:
            y = -y
        return CurvePoint(self, x, y)

    def random_point(self, rng) -> CurvePoint:
        """A random affine point, by rejection sampling on ``x``."""
        while True:
            x = self.field.random(rng)
            rhs = x.square() * x + self.a * x + self.b
            if hasattr(rhs, "is_square") and rhs.is_square():
                y = rhs.sqrt()
                if rng.randrange(2):
                    y = -y
                return CurvePoint(self, x, y)

    def point_from_bytes(self, data: bytes) -> CurvePoint:
        """Decode the uncompressed encoding from ``CurvePoint.to_bytes``.

        Structural failures raise :class:`DecodingError`; coordinates
        that parse but miss the curve raise
        :class:`~repro.errors.NotOnCurveError` (both are
        ``EncodingError`` subclasses in spirit and ``ReproError`` in
        fact).  The on-curve check runs before the point escapes —
        subgroup checks are the caller's job, since a bare curve has no
        distinguished subgroup (``PairingGroup.point_from_bytes`` adds
        it).
        """
        if data == b"\x00":
            return self.infinity()
        if not data or data[0] != 0x04:
            raise DecodingError("bad point encoding prefix")
        body = data[1:]
        half = len(body) // 2
        if len(body) != 2 * half or half != self.field.element_bytes:
            raise DecodingError("bad point encoding length")
        x = self.field.from_bytes(body[:half])
        y = self.field.from_bytes(body[half:])
        return self.point(x, y)

    # ------------------------------------------------------------------
    # Jacobian-coordinate scalar multiplication.
    #
    # A Jacobian triple (X, Y, Z) represents the affine point
    # (X / Z^2, Y / Z^3); infinity is Z == 0.
    # ------------------------------------------------------------------

    def _jacobian_double(self, jp):
        x1, y1, z1 = jp
        if z1.is_zero() or y1.is_zero():
            return (self.field.one(), self.field.one(), self.field.zero())
        ysq = y1.square()
        s = (x1 * ysq) * 4
        m = x1.square() * 3 + self.a * z1.square().square()
        x3 = m.square() - s - s
        y3 = m * (s - x3) - ysq.square() * 8
        z3 = (y1 * z1) * 2
        return (x3, y3, z3)

    def _jacobian_add(self, jp, jq):
        x1, y1, z1 = jp
        x2, y2, z2 = jq
        if z1.is_zero():
            return jq
        if z2.is_zero():
            return jp
        z1sq = z1.square()
        z2sq = z2.square()
        u1 = x1 * z2sq
        u2 = x2 * z1sq
        s1 = y1 * z2sq * z2
        s2 = y2 * z1sq * z1
        if u1 == u2:
            if s1 == s2:
                return self._jacobian_double(jp)
            return (self.field.one(), self.field.one(), self.field.zero())
        h = u2 - u1
        r = s2 - s1
        hsq = h.square()
        hcu = hsq * h
        v = u1 * hsq
        x3 = r.square() - hcu - v - v
        y3 = r * (v - x3) - s1 * hcu
        z3 = z1 * z2 * h
        return (x3, y3, z3)

    def _to_jacobian(self, point: CurvePoint):
        if point.is_infinity:
            return (self.field.one(), self.field.one(), self.field.zero())
        return (point.x, point.y, self.field.one())

    def _from_jacobian(self, jp) -> CurvePoint:
        x, y, z = jp
        if z.is_zero():
            return self.infinity()
        zinv = z.inverse()
        zinv_sq = zinv.square()
        return CurvePoint(self, x * zinv_sq, y * zinv_sq * zinv)

    def scalar_mult(self, point: CurvePoint, scalar: int) -> CurvePoint:
        """``scalar * point`` via a 4-bit fixed-window Jacobian ladder."""
        if scalar == 0 or point.is_infinity:
            return self.infinity()
        if scalar < 0:
            return self.scalar_mult(-point, -scalar)
        if scalar == 1:
            return point
        base = self._to_jacobian(point)
        # Precompute 1P..15P.
        window = [None, base]
        for _ in range(14):
            window.append(self._jacobian_add(window[-1], base))
        result = (self.field.one(), self.field.one(), self.field.zero())
        for nibble_index in range((scalar.bit_length() + 3) // 4 - 1, -1, -1):
            for _ in range(4):
                result = self._jacobian_double(result)
            digit = (scalar >> (4 * nibble_index)) & 0xF
            if digit:
                result = self._jacobian_add(result, window[digit])
        return self._from_jacobian(result)

    def multi_scalar_mult(self, pairs) -> CurvePoint:
        """``sum(k_i * P_i)`` with shared doublings (Shamir's trick).

        ``pairs`` is an iterable of ``(scalar, point)`` tuples.  Used by
        verification equations that combine several terms.
        """
        pairs = [(k, p) for k, p in pairs if k != 0 and not p.is_infinity]
        if not pairs:
            return self.infinity()
        jacobians = []
        scalars = []
        for k, p in pairs:
            if k < 0:
                k, p = -k, -p
            jacobians.append(self._to_jacobian(p))
            scalars.append(k)
        top = max(s.bit_length() for s in scalars)
        result = (self.field.one(), self.field.one(), self.field.zero())
        for bit in range(top - 1, -1, -1):
            result = self._jacobian_double(result)
            for scalar, jac in zip(scalars, jacobians):
                if (scalar >> bit) & 1:
                    result = self._jacobian_add(result, jac)
        return self._from_jacobian(result)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EllipticCurve)
            and other.field == self.field
            and other.a == self.a
            and other.b == self.b
        )

    def __hash__(self) -> int:
        return hash(("EllipticCurve", self.field, self.a, self.b))

    def __repr__(self) -> str:
        return f"EllipticCurve(a={self.a!r}, b={self.b!r} over {self.field!r})"
