"""Short Weierstrass curves ``y^2 = x^3 + a*x + b`` over Fp or Fp2.

The curve object is generic over the coefficient field: anything with the
element protocol used by :mod:`repro.math.field` / :mod:`repro.math.quadratic`
(arithmetic operators, ``square``, ``inverse``, ``is_zero``, ``to_bytes``)
works.  Scalar multiplication runs in Jacobian projective coordinates so a
``k``-bit multiply costs one field inversion instead of ``~1.5k``.
"""

from __future__ import annotations

from repro.errors import DecodingError, NotOnCurveError, ParameterError
from repro.ec.point import CurvePoint
from repro.math.field import FieldElement, PrimeField


class EllipticCurve:
    """``y^2 = x^3 + a*x + b`` over an explicit field object."""

    __slots__ = ("field", "a", "b")

    def __init__(self, field, a, b):
        self.field = field
        self.a = a
        self.b = b
        # 4a^3 + 27b^2 != 0 guarantees the curve is non-singular.
        discriminant = a * a * a * 4 + b * b * 27
        if discriminant.is_zero():
            raise ParameterError("singular curve: 4a^3 + 27b^2 == 0")

    def infinity(self) -> CurvePoint:
        return CurvePoint(self, None, None)

    def contains(self, x, y) -> bool:
        """Whether affine coordinates ``(x, y)`` satisfy the curve equation."""
        return (y.square() - (x.square() * x + self.a * x + self.b)).is_zero()

    def point(self, x, y) -> CurvePoint:
        """Construct a point, validating it lies on the curve."""
        if not self.contains(x, y):
            raise NotOnCurveError("coordinates do not satisfy curve equation")
        return CurvePoint(self, x, y)

    def unchecked_point(self, x, y) -> CurvePoint:
        """Construct a point without the on-curve check (internal use)."""
        return CurvePoint(self, x, y)

    def point_from_x(self, x, y_parity: int = 0) -> CurvePoint:
        """Lift ``x`` to a point, choosing the root with the given parity bit.

        Only supported over the base field (Fp), where ``sqrt`` exists on
        elements.  Raises :class:`NotOnCurveError` when ``x^3 + ax + b`` is
        a non-residue.
        """
        rhs = x.square() * x + self.a * x + self.b
        if not rhs.is_square():
            raise NotOnCurveError("x does not lift to a curve point")
        y = rhs.sqrt()
        if y.value % 2 != y_parity % 2:
            y = -y
        return CurvePoint(self, x, y)

    def random_point(self, rng) -> CurvePoint:
        """A random affine point, by rejection sampling on ``x``."""
        while True:
            x = self.field.random(rng)
            rhs = x.square() * x + self.a * x + self.b
            if hasattr(rhs, "is_square") and rhs.is_square():
                y = rhs.sqrt()
                if rng.randrange(2):
                    y = -y
                return CurvePoint(self, x, y)

    def point_from_bytes(self, data: bytes) -> CurvePoint:
        """Decode the uncompressed encoding from ``CurvePoint.to_bytes``.

        Structural failures raise :class:`DecodingError`; coordinates
        that parse but miss the curve raise
        :class:`~repro.errors.NotOnCurveError` (both are
        ``EncodingError`` subclasses in spirit and ``ReproError`` in
        fact).  The on-curve check runs before the point escapes —
        subgroup checks are the caller's job, since a bare curve has no
        distinguished subgroup (``PairingGroup.point_from_bytes`` adds
        it).
        """
        if data == b"\x00":
            return self.infinity()
        if not data or data[0] != 0x04:
            raise DecodingError("bad point encoding prefix")
        body = data[1:]
        half = len(body) // 2
        if len(body) != 2 * half or half != self.field.element_bytes:
            raise DecodingError("bad point encoding length")
        x = self.field.from_bytes(body[:half])
        y = self.field.from_bytes(body[half:])
        return self.point(x, y)

    # ------------------------------------------------------------------
    # Jacobian-coordinate scalar multiplication.
    #
    # A Jacobian triple (X, Y, Z) represents the affine point
    # (X / Z^2, Y / Z^3); infinity is Z == 0.
    # ------------------------------------------------------------------

    def _jacobian_double(self, jp):
        x1, y1, z1 = jp
        if z1.is_zero() or y1.is_zero():
            return (self.field.one(), self.field.one(), self.field.zero())
        ysq = y1.square()
        s = (x1 * ysq) * 4
        m = x1.square() * 3 + self.a * z1.square().square()
        x3 = m.square() - s - s
        y3 = m * (s - x3) - ysq.square() * 8
        z3 = (y1 * z1) * 2
        return (x3, y3, z3)

    def _jacobian_add(self, jp, jq):
        x1, y1, z1 = jp
        x2, y2, z2 = jq
        if z1.is_zero():
            return jq
        if z2.is_zero():
            return jp
        z1sq = z1.square()
        z2sq = z2.square()
        u1 = x1 * z2sq
        u2 = x2 * z1sq
        s1 = y1 * z2sq * z2
        s2 = y2 * z1sq * z1
        if u1 == u2:
            if s1 == s2:
                return self._jacobian_double(jp)
            return (self.field.one(), self.field.one(), self.field.zero())
        h = u2 - u1
        r = s2 - s1
        hsq = h.square()
        hcu = hsq * h
        v = u1 * hsq
        x3 = r.square() - hcu - v - v
        y3 = r * (v - x3) - s1 * hcu
        z3 = z1 * z2 * h
        return (x3, y3, z3)

    def _jacobian_add_affine(self, jp, ax, ay):
        """Mixed addition of an affine point ``(ax, ay)`` (``Z == 1``).

        Saves the ``Z2``-dependent work of :meth:`_jacobian_add`; this is
        the inner operation of every table-driven multiplication, where
        table entries are batch-normalized to affine.
        """
        x1, y1, z1 = jp
        if z1.is_zero():
            return (ax, ay, self.field.one())
        z1sq = z1.square()
        u2 = ax * z1sq
        s2 = ay * z1sq * z1
        if x1 == u2:
            if y1 == s2:
                return self._jacobian_double(jp)
            return (self.field.one(), self.field.one(), self.field.zero())
        h = u2 - x1
        r = s2 - y1
        hsq = h.square()
        hcu = hsq * h
        v = x1 * hsq
        x3 = r.square() - hcu - v - v
        y3 = r * (v - x3) - y1 * hcu
        z3 = z1 * h
        return (x3, y3, z3)

    def batch_to_affine(self, triples):
        """Normalize Jacobian triples to affine ``(x, y)`` pairs.

        Uses Montgomery's trick: one field inversion for the whole batch
        instead of one per point.  Infinity entries come back as ``None``.
        Over a :class:`~repro.math.field.PrimeField` the inversion runs
        through the field backend's
        :meth:`~repro.math.backend.base.FieldBackend.fp_batch_inv` on
        raw coefficients (same values, no per-step object allocation);
        extension-field batches keep the generic element path.
        """
        if isinstance(self.field, PrimeField):
            return self._batch_to_affine_fp(triples)
        prefix = []
        acc = self.field.one()
        for _, _, z in triples:
            prefix.append(acc)
            if not z.is_zero():
                acc = acc * z
        inv = acc.inverse()
        out: list = [None] * len(triples)
        for index in range(len(triples) - 1, -1, -1):
            x, y, z = triples[index]
            if z.is_zero():
                continue
            zinv = inv * prefix[index]
            inv = inv * z
            zinv_sq = zinv.square()
            out[index] = (x * zinv_sq, y * zinv_sq * zinv)
        return out

    def _batch_to_affine_fp(self, triples):
        """Backend-accelerated base-field batch normalization."""
        field = self.field
        p = field.p
        z_values = [z.value for _, _, z in triples if not z.is_zero()]
        if not z_values:
            return [None] * len(triples)
        z_invs = iter(field.backend.fp_batch_inv(z_values))
        out: list = [None] * len(triples)
        for index, (x, y, z) in enumerate(triples):
            if z.is_zero():
                continue
            zinv = next(z_invs)
            zinv_sq = zinv * zinv % p
            out[index] = (
                FieldElement(field, x.value * zinv_sq % p),
                FieldElement(field, y.value * zinv_sq * zinv % p),
            )
        return out

    def _to_jacobian(self, point: CurvePoint):
        if point.is_infinity:
            return (self.field.one(), self.field.one(), self.field.zero())
        return (point.x, point.y, self.field.one())

    def _from_jacobian(self, jp) -> CurvePoint:
        x, y, z = jp
        if z.is_zero():
            return self.infinity()
        zinv = z.inverse()
        zinv_sq = zinv.square()
        return CurvePoint(self, x * zinv_sq, y * zinv_sq * zinv)

    @staticmethod
    def _window_width(bits: int) -> int:
        """Window width minimizing setup (``2^w - 2`` adds) + loop adds."""
        if bits <= 10:
            return 1
        if bits <= 32:
            return 2
        if bits <= 100:
            return 3
        return 4

    def scalar_mult(self, point: CurvePoint, scalar: int) -> CurvePoint:
        """``scalar * point`` via a fixed-window Jacobian ladder.

        The window is sized by ``scalar.bit_length()``: tiny scalars
        (cofactor-by-12 checks, small test multiples) skip table setup
        entirely rather than paying 14 Jacobian adds for a 16-entry
        window they barely index into.
        """
        if scalar == 0 or point.is_infinity:
            return self.infinity()
        if scalar < 0:
            return self.scalar_mult(-point, -scalar)
        if scalar == 1:
            return point
        base = self._to_jacobian(point)
        bits = scalar.bit_length()
        width = self._window_width(bits)
        if width == 1:
            # Plain double-and-add; a table would cost more than it saves.
            result = base
            for bit in range(bits - 2, -1, -1):
                result = self._jacobian_double(result)
                if (scalar >> bit) & 1:
                    result = self._jacobian_add(result, base)
            return self._from_jacobian(result)
        size = 1 << width
        window = [None, base]
        for _ in range(size - 2):
            window.append(self._jacobian_add(window[-1], base))
        result = (self.field.one(), self.field.one(), self.field.zero())
        mask = size - 1
        for window_index in range((bits + width - 1) // width - 1, -1, -1):
            for _ in range(width):
                result = self._jacobian_double(result)
            digit = (scalar >> (width * window_index)) & mask
            if digit:
                result = self._jacobian_add(result, window[digit])
        return self._from_jacobian(result)

    def multi_scalar_mult(self, pairs, width: int = 4) -> CurvePoint:
        """``sum(k_i * P_i)`` via interleaved wNAF with shared doublings.

        ``pairs`` is an iterable of ``(scalar, point)`` tuples.  Each
        point gets a table of odd multiples ``P, 3P, ..., (2^(w-1)-1)P``
        (batch-normalized to affine in one inversion across all points)
        and each scalar a width-``w`` NAF expansion, so the single
        doubling chain absorbs roughly ``bits/(w+1)`` mixed additions
        per term instead of ``bits/2`` plain additions.  Used by
        verification equations that combine several terms.
        """
        from repro.ec.precompute import wnaf_digits

        pairs = [(k, p) for k, p in pairs if k != 0 and not p.is_infinity]
        if not pairs:
            return self.infinity()
        normalized = []
        for k, p in pairs:
            if k < 0:
                k, p = -k, -p
            normalized.append((k, p))
        if max(k.bit_length() for k, _ in normalized) <= 16:
            width = 2
        odd_count = max(1, 1 << (width - 2))
        flat = []
        digit_lists = []
        for k, p in normalized:
            digit_lists.append(wnaf_digits(k, width))
            jp = self._to_jacobian(p)
            twop = self._jacobian_double(jp)
            odd = [jp]
            for _ in range(odd_count - 1):
                odd.append(self._jacobian_add(odd[-1], twop))
            flat.extend(odd)
        affine = self.batch_to_affine(flat)
        tables = [
            affine[i * odd_count:(i + 1) * odd_count]
            for i in range(len(normalized))
        ]
        top = max(len(digits) for digits in digit_lists)
        result = (self.field.one(), self.field.one(), self.field.zero())
        for position in range(top - 1, -1, -1):
            result = self._jacobian_double(result)
            for digits, table in zip(digit_lists, tables):
                if position >= len(digits):
                    continue
                digit = digits[position]
                if digit == 0:
                    continue
                entry = table[(abs(digit) - 1) // 2]
                if entry is None:
                    continue  # odd multiple hit infinity (tiny-order point)
                ax, ay = entry
                if digit < 0:
                    ay = -ay
                result = self._jacobian_add_affine(result, ax, ay)
        return self._from_jacobian(result)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EllipticCurve)
            and other.field == self.field
            and other.a == self.a
            and other.b == self.b
        )

    def __hash__(self) -> int:
        return hash(("EllipticCurve", self.field, self.a, self.b))

    def __repr__(self) -> str:
        return f"EllipticCurve(a={self.a!r}, b={self.b!r} over {self.field!r})"
