"""Elliptic curve substrate: short Weierstrass curves over Fp and Fp2."""

from repro.ec.curve import EllipticCurve
from repro.ec.point import CurvePoint
from repro.ec.precompute import FixedBaseTable, wnaf_digits

__all__ = ["EllipticCurve", "CurvePoint", "FixedBaseTable", "wnaf_digits"]
