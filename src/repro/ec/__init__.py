"""Elliptic curve substrate: short Weierstrass curves over Fp and Fp2."""

from repro.ec.curve import EllipticCurve
from repro.ec.point import CurvePoint

__all__ = ["EllipticCurve", "CurvePoint"]
