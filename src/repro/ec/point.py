"""Affine points on a short Weierstrass curve.

Points are immutable.  Addition and doubling use the textbook affine
formulas (one field inversion each); scalar multiplication delegates to
the curve's Jacobian-coordinate ladder, which performs a single inversion
at the end.  Both paths are exercised against each other in the tests and
compared in the E12 ablation benchmark.
"""

from __future__ import annotations

from repro.errors import GroupMismatchError


class CurvePoint:
    """A point on an :class:`~repro.ec.curve.EllipticCurve`, or infinity."""

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve, x, y):
        # x is None (and y is None) exactly for the point at infinity.
        self.curve = curve
        self.x = x
        self.y = y

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def _check_same_curve(self, other: "CurvePoint") -> None:
        if not isinstance(other, CurvePoint) or other.curve != self.curve:
            raise GroupMismatchError("points lie on different curves")

    def __add__(self, other: "CurvePoint") -> "CurvePoint":
        self._check_same_curve(other)
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        if self.x == other.x:
            if (self.y + other.y).is_zero():
                return self.curve.infinity()
            return self.double()
        slope = (other.y - self.y) / (other.x - self.x)
        x3 = slope.square() - self.x - other.x
        y3 = slope * (self.x - x3) - self.y
        return CurvePoint(self.curve, x3, y3)

    def double(self) -> "CurvePoint":
        if self.is_infinity or self.y.is_zero():
            return self.curve.infinity()
        slope = (self.x.square() * 3 + self.curve.a) / (self.y * 2)
        x3 = slope.square() - self.x - self.x
        y3 = slope * (self.x - x3) - self.y
        return CurvePoint(self.curve, x3, y3)

    def __neg__(self) -> "CurvePoint":
        if self.is_infinity:
            return self
        return CurvePoint(self.curve, self.x, -self.y)

    def __sub__(self, other: "CurvePoint") -> "CurvePoint":
        return self + (-other)

    def __mul__(self, scalar: int) -> "CurvePoint":
        if not isinstance(scalar, int):
            return NotImplemented
        return self.curve.scalar_mult(self, scalar)

    __rmul__ = __mul__

    def affine_scalar_mult(self, scalar: int) -> "CurvePoint":
        """Double-and-add entirely in affine coordinates (ablation path)."""
        if scalar < 0:
            return (-self).affine_scalar_mult(-scalar)
        result = self.curve.infinity()
        addend = self
        while scalar:
            if scalar & 1:
                result = result + addend
            addend = addend.double()
            scalar >>= 1
        return result

    def to_bytes(self) -> bytes:
        """Uncompressed encoding: ``0x00`` for infinity, else ``x || y``."""
        if self.is_infinity:
            return b"\x00"
        return b"\x04" + self.x.to_bytes() + self.y.to_bytes()

    @classmethod
    def from_bytes(cls, curve, data: bytes) -> "CurvePoint":
        """Inverse of :meth:`to_bytes`, with on-curve validation.

        Delegates to ``curve.point_from_bytes``, which raises
        :class:`~repro.errors.DecodingError` on malformed framing and
        :class:`~repro.errors.NotOnCurveError` on off-curve
        coordinates — decoded coordinates never become a live point
        unvalidated.
        """
        return curve.point_from_bytes(data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CurvePoint):
            return NotImplemented
        if other.curve != self.curve:
            return False
        if self.is_infinity or other.is_infinity:
            return self.is_infinity and other.is_infinity
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self.is_infinity:
            return hash((self.curve, "infinity"))
        return hash((self.curve, self.x, self.y))

    def __repr__(self) -> str:
        if self.is_infinity:
            return "CurvePoint(infinity)"
        return f"CurvePoint({self.x!r}, {self.y!r})"
