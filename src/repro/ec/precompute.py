"""Fixed-argument precomputation for scalar multiplication.

Deployments of the paper's schemes multiply the same handful of points
over and over: the server generator ``G``, its public ``sG``, and each
receiver's ``asG``.  :class:`FixedBaseTable` trades a one-time table
build (all windowed multiples of the base, batch-normalized to affine)
for multiplications that need **zero doublings** — just one mixed
addition per window — which amortizes after a few calls on the same
point.

The module also provides :func:`wnaf_digits`, the signed-digit
expansion shared with :meth:`repro.ec.curve.EllipticCurve.multi_scalar_mult`.

Every fast path here returns exactly the point the direct
:meth:`~repro.ec.curve.EllipticCurve.scalar_mult` would — affine
coordinates are a canonical representation, so equal points serialize
byte-identically (asserted in ``tests/ec/test_precompute.py``).
"""

from __future__ import annotations

from repro.ec.point import CurvePoint
from repro.errors import ParameterError


def wnaf_digits(scalar: int, width: int) -> list[int]:
    """Width-``w`` non-adjacent form of a non-negative scalar, LSB first.

    Digits are zero or odd with ``|d| < 2^(w-1)``, and any two non-zero
    digits are at least ``w`` positions apart, so a left-to-right
    evaluation performs roughly ``bits/(w+1)`` additions.
    """
    if scalar < 0:
        raise ParameterError("wNAF expects a non-negative scalar")
    if width < 2:
        raise ParameterError("wNAF width must be at least 2")
    digits = []
    modulus = 1 << width
    half = 1 << (width - 1)
    while scalar:
        if scalar & 1:
            digit = scalar & (modulus - 1)
            if digit >= half:
                digit -= modulus
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


class FixedBaseTable:
    """Windowed multiples of one fixed point, for repeated ``k * P``.

    The table stores ``d * 2^(j*w) * P`` for every window index ``j``
    and digit ``d in 1..2^w - 1``, normalized to affine with a single
    batch inversion.  A multiplication then reads one entry per window
    and performs only mixed additions — no doublings at all.

    Parameters
    ----------
    point:
        The fixed base ``P``.
    bits:
        Capacity: scalars up to ``2^bits - 1`` take the fast path
        (callers reducing mod the group order pass ``q.bit_length()``).
        Larger or out-of-range scalars fall back to the direct ladder.
    width:
        Window width ``w``; memory is ``(2^w - 1) * ceil(bits/w)``
        affine points, additions per multiply ``~bits/w``.
    """

    __slots__ = ("point", "curve", "width", "bits", "windows", "_rows")

    def __init__(self, point: CurvePoint, bits: int, width: int = 4):
        if not 1 <= width <= 8:
            raise ParameterError("window width must be in 1..8")
        if bits < 1:
            raise ParameterError("table capacity must be at least one bit")
        self.point = point
        self.curve = point.curve
        self.width = width
        self.bits = bits
        self.windows = (bits + width - 1) // width
        self._rows: list[list] = []
        if point.is_infinity:
            return
        curve = self.curve
        size = 1 << width
        base = curve._to_jacobian(point)
        flat = []
        for _ in range(self.windows):
            entry = base
            flat.append(entry)
            for _ in range(size - 2):
                entry = curve._jacobian_add(entry, base)
                flat.append(entry)
            for _ in range(width):
                base = curve._jacobian_double(base)
        affine = curve.batch_to_affine(flat)
        self._rows = [
            affine[j * (size - 1):(j + 1) * (size - 1)]
            for j in range(self.windows)
        ]

    @property
    def table_points(self) -> int:
        """Number of stored affine points (memory ~= 2 field elements each)."""
        return sum(len(row) for row in self._rows)

    def mult(self, scalar: int) -> CurvePoint:
        """``scalar * P``, identical to ``curve.scalar_mult(P, scalar)``."""
        curve = self.curve
        if scalar == 0 or self.point.is_infinity:
            return curve.infinity()
        negate = scalar < 0
        if negate:
            scalar = -scalar
        if scalar.bit_length() > self.bits:
            result = curve.scalar_mult(self.point, scalar)
            return -result if negate else result
        mask = (1 << self.width) - 1
        acc = (curve.field.one(), curve.field.one(), curve.field.zero())
        for window_index in range(self.windows):
            digit = (scalar >> (window_index * self.width)) & mask
            if not digit:
                continue
            entry = self._rows[window_index][digit - 1]
            if entry is None:
                continue  # that multiple is infinity (tiny-order base)
            acc = curve._jacobian_add_affine(acc, entry[0], entry[1])
        result = curve._from_jacobian(acc)
        return -result if negate else result

    def __repr__(self) -> str:
        return (
            f"FixedBaseTable(bits={self.bits}, width={self.width}, "
            f"points={self.table_points})"
        )
