"""Command-line interface: file-based TRE for real-world use.

Usage (``python -m repro <command>`` or see ``--help``):

    repro info
        List parameter sets and element sizes.
    repro server-keygen  --params ss512 --key server.key --pub server.pub
        Create a time server key pair.
    repro user-keygen    --server-pub server.pub --key user.key --pub user.pub
        Create a receiver key pair bound to that server.
    repro encrypt        --server-pub server.pub --receiver-pub user.pub \
                         --time 2031-01-01T00:00Z --infile m.txt --outfile m.tre
        Seal a file until the release time (authenticated hybrid TRE).
    repro issue-update   --server-key server.key --time 2031-01-01T00:00Z \
                         --outfile update.bin
        The server's broadcast for one time instant.
    repro verify-update  --server-pub server.pub --infile update.bin
        Check an update's self-authentication.
    repro decrypt        --user-key user.key --server-pub server.pub \
                         --update update.bin --infile m.tre --outfile m.txt
        Open a sealed file once the update is out.
    repro demo
        Run the whole flow in a temporary directory.

Key files are small text files (version line + ``key=value`` pairs with
hex blobs) so they diff and survive copy-paste.  Randomness comes from
``secrets.SystemRandom``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.core.hybrid_tre import HybridTimedReleaseScheme, HybridTRECiphertext
from repro.core.keys import ServerKeyPair, ServerPublicKey, UserKeyPair, UserPublicKey
from repro.core.timeserver import PassiveTimeServer, TimeBoundKeyUpdate
from repro.crypto.rng import system_rng
from repro.errors import EncodingError, ReproError
from repro.pairing.api import PairingGroup
from repro.pairing.params import PARAMETER_SETS

_MAGIC = "repro-tre v1"


def _write_keyfile(path: Path, kind: str, fields: dict[str, str]) -> None:
    lines = [f"{_MAGIC} {kind}"]
    lines += [f"{name}={value}" for name, value in fields.items()]
    path.write_text("\n".join(lines) + "\n")


def _read_keyfile(path: Path, kind: str) -> dict[str, str]:
    lines = path.read_text().splitlines()
    if not lines or lines[0] != f"{_MAGIC} {kind}":
        raise EncodingError(f"{path} is not a '{kind}' file")
    fields = {}
    for line in lines[1:]:
        if not line.strip():
            continue
        name, _, value = line.partition("=")
        fields[name] = value
    return fields


def _group_from_fields(fields: dict[str, str]) -> PairingGroup:
    return PairingGroup(fields["params"], family=fields.get("family", "A"))


def _load_server_public(path: Path) -> tuple[PairingGroup, ServerPublicKey]:
    fields = _read_keyfile(path, "server-public")
    group = _group_from_fields(fields)
    return group, ServerPublicKey.from_bytes(group, bytes.fromhex(fields["public"]))


# ----------------------------------------------------------------------
# Commands.
# ----------------------------------------------------------------------


def cmd_info(args) -> int:
    from repro.analysis import format_table

    rows = []
    for name, ps in sorted(PARAMETER_SETS.items()):
        rows.append((
            name, ps.p_bits, ps.q_bits, ps.security_bits or "none (toy)"
        ))
    print(format_table(
        ("params", "p bits", "q bits", "security bits"),
        rows,
        title="Available Type-1 parameter sets",
    ))
    return 0


def cmd_server_keygen(args) -> int:
    group = PairingGroup(args.params, family=args.family)
    keypair = ServerKeyPair.generate(group, system_rng())
    common = {"params": args.params, "family": args.family}
    _write_keyfile(Path(args.key), "server-key", {
        **common,
        "private": hex(keypair.private)[2:],
        "public": keypair.public.to_bytes(group).hex(),
    })
    _write_keyfile(Path(args.pub), "server-public", {
        **common,
        "public": keypair.public.to_bytes(group).hex(),
    })
    print(f"server key -> {args.key}, public key -> {args.pub}")
    return 0


def cmd_user_keygen(args) -> int:
    group, server_public = _load_server_public(Path(args.server_pub))
    keypair = UserKeyPair.generate(group, server_public, system_rng())
    common = {"params": group.params.name, "family": group.family}
    _write_keyfile(Path(args.key), "user-key", {
        **common,
        "private": hex(keypair.private)[2:],
        "public": keypair.public.to_bytes(group).hex(),
    })
    _write_keyfile(Path(args.pub), "user-public", {
        **common,
        "public": keypair.public.to_bytes(group).hex(),
    })
    print(f"user key -> {args.key}, public key -> {args.pub}")
    return 0


def cmd_encrypt(args) -> int:
    group, server_public = _load_server_public(Path(args.server_pub))
    user_fields = _read_keyfile(Path(args.receiver_pub), "user-public")
    receiver = UserPublicKey.from_bytes(
        group, bytes.fromhex(user_fields["public"])
    )
    scheme = HybridTimedReleaseScheme(group)
    message = Path(args.infile).read_bytes()
    ciphertext = scheme.encrypt(
        message, receiver, server_public, args.time.encode(), system_rng()
    )
    Path(args.outfile).write_bytes(ciphertext.to_bytes(group))
    print(
        f"sealed {len(message)} bytes until {args.time!r} "
        f"-> {args.outfile} ({ciphertext.size_bytes(group)} bytes)"
    )
    return 0


def cmd_issue_update(args) -> int:
    fields = _read_keyfile(Path(args.server_key), "server-key")
    group = _group_from_fields(fields)
    keypair = ServerKeyPair(
        int(fields["private"], 16),
        ServerPublicKey.from_bytes(group, bytes.fromhex(fields["public"])),
    )
    server = PassiveTimeServer(group, keypair=keypair)
    update = server.publish_update(args.time.encode())
    Path(args.outfile).write_bytes(update.to_bytes(group))
    print(f"time-bound key update for {args.time!r} -> {args.outfile}")
    return 0


def cmd_verify_update(args) -> int:
    group, server_public = _load_server_public(Path(args.server_pub))
    update = TimeBoundKeyUpdate.from_bytes(
        group, Path(args.infile).read_bytes()
    )
    if update.verify(group, server_public):
        print(f"OK: genuine update for {update.time_label!r}")
        return 0
    print("FAIL: update does not verify against this server key")
    return 1


def cmd_decrypt(args) -> int:
    group, server_public = _load_server_public(Path(args.server_pub))
    user_fields = _read_keyfile(Path(args.user_key), "user-key")
    private = int(user_fields["private"], 16)
    update = TimeBoundKeyUpdate.from_bytes(group, Path(args.update).read_bytes())
    if not update.verify(group, server_public):
        print(
            "FAIL: update does not verify against this server key — "
            "refusing to decrypt with a forged update",
            file=sys.stderr,
        )
        return 1
    ciphertext = HybridTRECiphertext.from_bytes(
        group, Path(args.infile).read_bytes()
    )
    scheme = HybridTimedReleaseScheme(group)
    plaintext = scheme.decrypt(ciphertext, private, update, server_public)
    Path(args.outfile).write_bytes(plaintext)
    print(f"decrypted {len(plaintext)} bytes -> {args.outfile}")
    return 0


def cmd_demo(args) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        run = lambda argv: main(argv)  # noqa: E731 - terse on purpose
        (base / "m.txt").write_bytes(b"see you in the future")
        steps = [
            ["server-keygen", "--params", "toy64",
             "--key", str(base / "s.key"), "--pub", str(base / "s.pub")],
            ["user-keygen", "--server-pub", str(base / "s.pub"),
             "--key", str(base / "u.key"), "--pub", str(base / "u.pub")],
            ["encrypt", "--server-pub", str(base / "s.pub"),
             "--receiver-pub", str(base / "u.pub"), "--time", "demo-T",
             "--infile", str(base / "m.txt"), "--outfile", str(base / "m.tre")],
            ["issue-update", "--server-key", str(base / "s.key"),
             "--time", "demo-T", "--outfile", str(base / "u.bin")],
            ["verify-update", "--server-pub", str(base / "s.pub"),
             "--infile", str(base / "u.bin")],
            ["decrypt", "--user-key", str(base / "u.key"),
             "--server-pub", str(base / "s.pub"),
             "--update", str(base / "u.bin"),
             "--infile", str(base / "m.tre"),
             "--outfile", str(base / "out.txt")],
        ]
        for step in steps:
            code = run(step)
            if code != 0:
                return code
        recovered = (base / "out.txt").read_bytes()
        assert recovered == b"see you in the future"
        print("demo complete: plaintext recovered byte-for-byte")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Server-passive timed release encryption (ICDCS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list parameter sets").set_defaults(
        func=cmd_info
    )

    p = sub.add_parser("server-keygen", help="create a time server key pair")
    p.add_argument("--params", default="ss512", choices=sorted(PARAMETER_SETS))
    p.add_argument("--family", default="A", choices=["A", "B"])
    p.add_argument("--key", required=True)
    p.add_argument("--pub", required=True)
    p.set_defaults(func=cmd_server_keygen)

    p = sub.add_parser("user-keygen", help="create a receiver key pair")
    p.add_argument("--server-pub", required=True)
    p.add_argument("--key", required=True)
    p.add_argument("--pub", required=True)
    p.set_defaults(func=cmd_user_keygen)

    p = sub.add_parser("encrypt", help="seal a file until a release time")
    p.add_argument("--server-pub", required=True)
    p.add_argument("--receiver-pub", required=True)
    p.add_argument("--time", required=True)
    p.add_argument("--infile", required=True)
    p.add_argument("--outfile", required=True)
    p.set_defaults(func=cmd_encrypt)

    p = sub.add_parser("issue-update", help="publish the update for a time")
    p.add_argument("--server-key", required=True)
    p.add_argument("--time", required=True)
    p.add_argument("--outfile", required=True)
    p.set_defaults(func=cmd_issue_update)

    p = sub.add_parser("verify-update", help="self-authenticate an update")
    p.add_argument("--server-pub", required=True)
    p.add_argument("--infile", required=True)
    p.set_defaults(func=cmd_verify_update)

    p = sub.add_parser("decrypt", help="open a sealed file with an update")
    p.add_argument("--user-key", required=True)
    p.add_argument("--server-pub", required=True)
    p.add_argument("--update", required=True)
    p.add_argument("--infile", required=True)
    p.add_argument("--outfile", required=True)
    p.set_defaults(func=cmd_decrypt)

    sub.add_parser("demo", help="run the whole flow end to end").set_defaults(
        func=cmd_demo
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse ``argv`` and dispatch; returns the exit code.

    All expected failures (bad files, wrong keys, tampered updates)
    print a one-line ``error:`` message and return 2 — no tracebacks.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
