"""Lightweight operation counting for platform-independent benchmarks.

Wall-clock numbers depend on the host; the *shape* of the paper's
efficiency claims (how many pairings, scalar multiplications and
map-to-point calls each scheme performs) does not.  Every
:class:`~repro.pairing.api.PairingGroup` owns an :class:`OperationCounter`
and bumps it on each counted primitive, so benchmark harnesses can report
exact op counts alongside timings.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager

PAIRING = "pairing"
SCALAR_MULT = "scalar_mult"
POINT_ADD = "point_add"
HASH_TO_GROUP = "hash_to_group"
GT_EXP = "gt_exp"
GT_MUL = "gt_mul"

# Advisory sub-counters for the precomputation fast paths: recorded *in
# addition to* the primary counter above (a table-driven multiply still
# counts as one scalar_mult), so cost-model assertions on the primary
# names stay stable while the fast-path hit rate remains observable.
# GT_FIXED_BASE is the GT analog of FIXED_BASE_MULT: a gt_exp that read
# a windowed GTFixedBaseTable instead of running square-and-multiply.
FIXED_BASE_MULT = "fixed_base_mult"
PAIRING_PRECOMP = "pairing_precomp"
GT_FIXED_BASE = "gt_fixed_base"

# Pairing internals, counted separately so the multi-pairing saving is
# visible: a direct pairing is one Miller loop plus one final
# exponentiation, while a k-fold multi-pairing is k Miller loops and ONE
# final exponentiation.  Like the fast-path counters these ride along
# with the primary ``pairing`` count (a pairing evaluated inside a
# multi-pairing still records one ``pairing``).
MILLER_LOOP = "miller_loop"
FINAL_EXP = "final_exp"
MULTI_PAIRING = "multi_pair"


class OperationCounter:
    """A named multiset of primitive-operation counts."""

    def __init__(self):
        self.counts: Counter[str] = Counter()

    def record(self, name: str, amount: int = 1) -> None:
        self.counts[name] += amount

    def reset(self) -> None:
        self.counts.clear()

    def snapshot(self) -> dict[str, int]:
        return dict(self.counts)

    def total(self, name: str) -> int:
        return self.counts.get(name, 0)

    @contextmanager
    def measure(self):
        """Yield a dict that is filled with the ops recorded in the block."""
        before = Counter(self.counts)
        delta: dict[str, int] = {}
        try:
            yield delta
        finally:
            after = Counter(self.counts)
            after.subtract(before)
            delta.update({k: v for k, v in after.items() if v})

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"OperationCounter({inner})"
