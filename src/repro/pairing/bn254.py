"""BN254 (alt_bn128) — a Type-3 asymmetric pairing backend, from scratch.

The paper's constructions are phrased over a symmetric (Type-1) pairing
because that is what existed in 2005.  Modern deployments of exactly
this design — drand's timelock encryption ("tlock") — run on *Type-3*
pairings ``ê : G1 × G2 → GT`` over pairing-friendly curves like BN254,
where no efficiently computable map between ``G1`` and ``G2`` exists.
This module provides that substrate so :mod:`repro.core.tlock` can
implement the modern descendant and experiment E15 can price Type-1
against Type-3.

Construction (py_ecc-compatible conventions):

* ``G1``: ``y² = x³ + 3`` over ``Fp``; prime order ``q`` (cofactor 1).
* ``G2``: the sextic twist ``y² = x³ + 3/(9+i)`` over
  ``Fp2 = Fp[i]/(i²+1)``; the order-``q`` subgroup has cofactor
  ``2p - q``.
* ``GT ⊂ Fp12`` with ``Fp12 = Fp[w]/(w¹² - 18w⁶ + 82)``; ``G2`` points
  embed into ``E(Fp12)`` via the twist isomorphism.
* The ate Miller loop runs over ``6u + 2 = 29793968203157093288`` with
  two Frobenius correction steps, followed by the reduced
  exponentiation to ``(p¹² - 1)/q`` — computed in the staged form
  ``((f^(p⁶-1))^(p²+1))^((p⁴-p²+1)/q)``, which is ~13× cheaper than the
  monolithic exponent.

Everything runs on the same generic substrate as the Type-1 engine:
:class:`repro.ec.curve.EllipticCurve` over
:class:`repro.math.polyext.PolyExtensionField`.
"""

from __future__ import annotations

import hashlib
import random

from repro.ec.curve import EllipticCurve
from repro.ec.point import CurvePoint
from repro.errors import NotInSubgroupError, ParameterError
from repro.math.field import PrimeField
from repro.math.polyext import PolyElement, PolyExtensionField

# alt_bn128 parameters (Ethereum precompile curve).
FIELD_MODULUS = int(
    "21888242871839275222246405745257275088696311157297823662689037894645226208583"
)
CURVE_ORDER = int(
    "21888242871839275222246405745257275088548364400416034343698204186575808495617"
)
ATE_LOOP_COUNT = 29793968203157093288  # 6u + 2 for u = 4965661367192848881
_LOG_ATE_LOOP_COUNT = 63

G2_COFACTOR = 2 * FIELD_MODULUS - CURVE_ORDER


def _digest(tag: str, *parts: bytes) -> bytes:
    """Domain-tagged SHA-512 over length-framed parts (RP105 pattern)."""
    hasher = hashlib.sha512()
    hasher.update(len(tag).to_bytes(2, "big"))
    hasher.update(tag.encode())
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()


class BN254:
    """The BN254 pairing engine: groups, generators, ate pairing."""

    def __init__(self, backend=None):
        p = FIELD_MODULUS
        self.p = p
        self.q = CURVE_ORDER
        # The backend accelerates G1 (Fp) arithmetic — fixed-base table
        # normalization rides its batch inversion.  The Fp12 tower has
        # its own arithmetic and is unaffected; outputs are identical
        # for every backend.
        self.fp = PrimeField(p, check_prime=False, backend=backend)
        self.backend_name = self.fp.backend.name
        # Fp2 = Fp[i]/(i² + 1); Fp12 = Fp[w]/(w¹² − 18w⁶ + 82).
        self.fq2 = PolyExtensionField(p, (1, 0))
        self.fq12 = PolyExtensionField(
            p, (82, 0, 0, 0, 0, 0, -18, 0, 0, 0, 0, 0)
        )

        self.curve_g1 = EllipticCurve(self.fp, self.fp(0), self.fp(3))
        b2 = self.fq2((3, 0)) / self.fq2((9, 1))
        self.curve_g2 = EllipticCurve(self.fq2, self.fq2.zero(), b2)
        b12 = self.fq12(3)
        self.curve_g12 = EllipticCurve(self.fq12, self.fq12.zero(), b12)

        self.g1 = self.curve_g1.point(self.fp(1), self.fp(2))
        self.g2 = self.curve_g2.point(
            self.fq2((
                10857046999023057135944570762232829481370756359578518086990519993285655852781,
                11559732032986387107991004021392285783925812861821192530917403151452391805634,
            )),
            self.fq2((
                8495653923123431417604973247489272438418190587263600148770280649306958101930,
                4082367875863433681332203403145435568316851327593401208105741076214120093531,
            )),
        )

        # Staged final exponentiation: (p^6-1), (p^2+1), (p^4-p^2+1)/q.
        self._exp_easy1 = p**6 - 1
        self._exp_easy2 = p**2 + 1
        self._exp_hard = (p**4 - p**2 + 1) // self.q

        self.point_bytes_g1 = 1 + 2 * self.fp.element_bytes
        self.point_bytes_g2 = 1 + 2 * self.fq2.element_bytes
        self.gt_bytes = self.fq12.element_bytes
        self.scalar_bytes = (self.q.bit_length() + 7) // 8

    # ------------------------------------------------------------------
    # Group membership.
    # ------------------------------------------------------------------

    def in_g1(self, point: CurvePoint) -> bool:
        """G1 is the whole curve (cofactor 1)."""
        return point.is_infinity or (
            point.curve == self.curve_g1 and self.curve_g1.contains(point.x, point.y)
        )

    def in_g2(self, point: CurvePoint) -> bool:
        if point.is_infinity:
            return True
        if point.curve != self.curve_g2:
            return False
        return (point * self.q).is_infinity

    def clear_g2_cofactor(self, point: CurvePoint) -> CurvePoint:
        return point * G2_COFACTOR

    # ------------------------------------------------------------------
    # Twist: E'(Fp2) -> E(Fp12).
    # ------------------------------------------------------------------

    def twist(self, point: CurvePoint) -> CurvePoint:
        """Map a G2 point onto the Fp12 curve (py_ecc's isomorphism)."""
        if point.is_infinity:
            return self.curve_g12.infinity()
        # Coefficient change Fp[i]/(i²+1) -> Fp[z]/(z² - 18z + 82) with
        # z = w⁶: (a + b·i) -> (a - 9b) + b·z.
        x0, x1 = point.x.coeffs
        y0, y1 = point.y.coeffs
        p = self.p
        nx = self.fq12(
            ((x0 - 9 * x1) % p, 0, 0, 0, 0, 0, x1, 0, 0, 0, 0, 0)
        )
        ny = self.fq12(
            ((y0 - 9 * y1) % p, 0, 0, 0, 0, 0, y1, 0, 0, 0, 0, 0)
        )
        w = self.fq12.x()
        # lint: allow[point-validation] the twist isomorphism maps curve
        # points to curve points; validation happened when `point` was built
        return self.curve_g12.unchecked_point(nx * w.square(), ny * w * w.square())

    def _cast_g1(self, point: CurvePoint) -> CurvePoint:
        return self.curve_g12.unchecked_point(
            self.fq12(point.x.value), self.fq12(point.y.value)
        )

    # ------------------------------------------------------------------
    # Ate pairing.
    # ------------------------------------------------------------------

    @staticmethod
    def _linefunc(p1: CurvePoint, p2: CurvePoint, t: CurvePoint) -> PolyElement:
        """Evaluate at T the (denominator-free) line through P1 and P2."""
        x1, y1 = p1.x, p1.y
        x2, y2 = p2.x, p2.y
        xt, yt = t.x, t.y
        if x1 != x2:
            slope = (y2 - y1) / (x2 - x1)
            return slope * (xt - x1) - (yt - y1)
        if y1 == y2:
            slope = x1.square() * 3 / (y1 * 2)
            return slope * (xt - x1) - (yt - y1)
        return xt - x1

    def _frobenius_point(self, point: CurvePoint, negate_y: bool) -> CurvePoint:
        x = point.x ** self.p
        y = point.y ** self.p
        if negate_y:
            y = -y
        return self.curve_g12.unchecked_point(x, y)

    def miller_loop(self, q_twisted: CurvePoint, p_cast: CurvePoint) -> PolyElement:
        """The ate Miller loop over 6u+2 with Frobenius corrections."""
        if q_twisted.is_infinity or p_cast.is_infinity:
            return self.fq12.one()
        r = q_twisted
        f = self.fq12.one()
        for i in range(_LOG_ATE_LOOP_COUNT, -1, -1):
            f = f * f * self._linefunc(r, r, p_cast)
            r = r.double()
            if ATE_LOOP_COUNT & (1 << i):
                f = f * self._linefunc(r, q_twisted, p_cast)
                r = r + q_twisted
        q1 = self._frobenius_point(q_twisted, negate_y=False)
        nq2 = self._frobenius_point(q1, negate_y=True)
        f = f * self._linefunc(r, q1, p_cast)
        r = r + q1
        f = f * self._linefunc(r, nq2, p_cast)
        return f

    def final_exponentiate(self, f: PolyElement) -> PolyElement:
        """``f^((p¹²-1)/q)`` in the staged easy/hard decomposition."""
        eased = (f ** self._exp_easy1) ** self._exp_easy2
        return eased ** self._exp_hard

    def pair(self, p_point: CurvePoint, q_point: CurvePoint) -> PolyElement:
        """``ê(P, Q)`` for ``P ∈ G1`` and ``Q ∈ G2`` (reduced)."""
        if p_point.is_infinity or q_point.is_infinity:
            return self.fq12.one()
        if not self.in_g1(p_point):
            raise NotInSubgroupError("first pairing argument must lie in G1")
        if q_point.curve != self.curve_g2:
            raise NotInSubgroupError("second pairing argument must lie in G2")
        f = self.miller_loop(self.twist(q_point), self._cast_g1(p_point))
        return self.final_exponentiate(f)

    # ------------------------------------------------------------------
    # Scalars and hashing.
    # ------------------------------------------------------------------

    def random_scalar(self, rng: random.Random) -> int:
        return rng.randrange(1, self.q)

    def hash_to_g1(self, data: bytes, tag: str = "repro:bn254:H1") -> CurvePoint:
        """Try-and-increment onto G1 (cofactor 1, p ≡ 3 mod 4 sqrt)."""
        for counter in range(512):
            digest = _digest(tag, counter.to_bytes(4, "big"), data)
            x = self.fp(int.from_bytes(digest, "big") % self.p)
            rhs = x.square() * x + self.fp(3)
            if rhs.is_zero():
                continue
            if rhs.is_square():
                y = rhs.sqrt()
                if digest[0] & 1:
                    y = -y
                # lint: allow[point-validation] y is a square root of the
                # curve equation's RHS, so (x, y) is on G1 (cofactor 1)
                return self.curve_g1.unchecked_point(x, y)
        raise ParameterError("hash_to_g1 exhausted its attempt budget")

    def gt_to_bytes(self, element: PolyElement) -> bytes:
        return element.to_bytes()

    def mask_bytes(
        self, element: PolyElement, length: int, tag: str = "repro:bn254:H2"
    ) -> bytes:
        encoded = element.to_bytes()
        blocks = []
        for counter in range((length + 63) // 64):
            blocks.append(_digest(tag, counter.to_bytes(4, "big"), encoded))
        return b"".join(blocks)[:length]

    def __repr__(self) -> str:
        return f"BN254(backend={self.backend_name!r})"


_ENGINES: dict[str, BN254] = {}


def bn254(backend: str | None = None) -> BN254:
    """The shared BN254 engine (construction is cheap but not free).

    ``backend`` selects the Fp arithmetic backend (see
    :mod:`repro.math.backend`); ``None`` keeps the pure-python default.
    Engines are cached per resolved backend name.
    """
    from repro.math.backend import resolve_backend_name

    name = resolve_backend_name("python" if backend is None else backend)
    engine = _ENGINES.get(name)
    if engine is None:
        engine = _ENGINES[name] = BN254(backend=name)
    return engine
