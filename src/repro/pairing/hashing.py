"""Hash functions onto the pairing groups and scalar field.

Implements the paper's two random oracles plus a scalar hash used by the
CCA transforms:

* ``H1 : {0,1}* -> G1`` — :func:`hash_to_subgroup`.  Family B uses the
  deterministic Boneh–Franklin MapToPoint (cubing is a bijection when
  ``p % 3 == 2``); family A uses try-and-increment on x-coordinates.
  Both finish with cofactor clearing into the order-``q`` subgroup.
* ``H2 : G2 -> {0,1}^n`` — :func:`hash_gt_to_bytes`, a counter-mode
  KDF over the canonical ``Fp2`` encoding.
* ``H3/H4``-style helpers — :func:`hash_to_scalar` maps arbitrary bytes
  into ``Z_q^*`` (used by Fujisaki–Okamoto and BLS internals).

Every hash is domain-separated with an explicit ASCII tag so that, e.g.,
the time-string oracle and the FO randomness oracle can never collide.
"""

from __future__ import annotations

import hashlib

from repro.ec.point import CurvePoint
from repro.errors import ParameterError
from repro.math.quadratic import QuadraticElement
from repro.pairing.supersingular import SupersingularCurve

_MAX_MAP_ATTEMPTS = 512


def _digest(tag: str, *parts: bytes) -> bytes:
    hasher = hashlib.sha512()
    hasher.update(tag.encode())
    hasher.update(len(parts).to_bytes(2, "big"))
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()


def hash_to_curve_point(
    ssc: SupersingularCurve, data: bytes, tag: str = "repro:H1"
) -> CurvePoint:
    """Map bytes onto ``E(Fp)`` (full curve, before cofactor clearing)."""
    for counter in range(_MAX_MAP_ATTEMPTS):
        seed = _digest(tag, counter.to_bytes(4, "big"), data)
        point = ssc._map_seed_to_point(seed)
        if point is not None and not point.is_infinity:
            return point
    raise ParameterError("hash_to_curve_point exhausted its attempt budget")


def hash_to_subgroup(
    ssc: SupersingularCurve, data: bytes, tag: str = "repro:H1"
) -> CurvePoint:
    """The paper's ``H1``: map bytes into the order-``q`` subgroup.

    Family B needs on average one curve-mapping attempt (deterministic
    cube-root lift); family A needs about two (each x lifts with
    probability 1/2).  The cofactor multiplication dominates either way.
    """
    for counter in range(_MAX_MAP_ATTEMPTS):
        salted = counter.to_bytes(4, "big") + data
        point = hash_to_curve_point(ssc, salted, tag)
        cleared = ssc.clear_cofactor(point)
        if not cleared.is_infinity:
            return cleared
    raise ParameterError("hash_to_subgroup exhausted its attempt budget")


def hash_gt_to_bytes(
    element: QuadraticElement, length: int, tag: str = "repro:H2"
) -> bytes:
    """The paper's ``H2``: derive ``length`` mask bytes from a GT element."""
    encoded = element.to_bytes()
    blocks = []
    for counter in range((length + 63) // 64):
        blocks.append(_digest(tag, counter.to_bytes(4, "big"), encoded))
    return b"".join(blocks)[:length]


def hash_to_scalar(q: int, *parts: bytes, tag: str = "repro:Zq") -> int:
    """Map bytes into ``Z_q^*`` with negligible bias.

    Draws ``2 * len(q)`` bits before reducing, so the statistical
    distance from uniform is about ``2^-q_bits``.
    """
    need = 2 * ((q.bit_length() + 7) // 8)
    stream = b""
    counter = 0
    while len(stream) < need:
        stream += _digest(tag, counter.to_bytes(4, "big"), *parts)
        counter += 1
    value = int.from_bytes(stream[:need], "big") % (q - 1)
    return value + 1


def hash_bytes(*parts: bytes, tag: str = "repro:H") -> bytes:
    """Plain domain-separated SHA-512 over length-framed parts."""
    return _digest(tag, *parts)
