"""Miller's algorithm for evaluating ``f_{q,P}`` at extension-field points.

Two variants are provided:

* :func:`miller_loop_denominator_free` — the BKLS/GHS-optimized loop that
  drops every vertical-line factor.  Correct whenever those factors land
  in a proper subfield killed by the final exponentiation, which holds
  for family A (distorted x-coordinates stay in ``Fp``).

* :func:`miller_loop_general` — the textbook loop evaluating ``f_{q,P}``
  at the divisor ``(S + R) - (R)`` for an auxiliary point ``R``, keeping
  numerator and denominator separate (one ``Fp2`` inversion at the end).
  Correct for any supersingular family, and the only correct choice for
  family B.  This is the "slow but general" arm of the E12 ablation.

Throughout, ``P`` and the intermediate points ``V`` live on ``E(Fp)``
(affine coordinates, slopes in ``Fp``) while the evaluation points live
on ``E(Fp2)``; mixed-field line evaluation embeds the ``Fp`` slope via
``QuadraticElement``'s integer coercion.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.ec.point import CurvePoint
from repro.math.quadratic import QuadraticElement, QuadraticField


def _line_value(v: CurvePoint, w: CurvePoint, s_x, s_y, fp2: QuadraticField):
    """Evaluate at ``(s_x, s_y)`` the line through base-field points V, W.

    Returns the chord/tangent value ``(s_y - y_V) - lambda * (s_x - x_V)``,
    or the vertical value ``s_x - x_V`` when the line through V and W is
    vertical (``W == -V`` or a 2-torsion doubling).
    """
    if v.is_infinity or w.is_infinity:
        # Line "through infinity" contributes the constant 1.
        return fp2.one()
    if v.x == w.x and v.y != w.y:
        return s_x - fp2.from_base(v.x)
    if v.x == w.x:
        # Tangent at V.
        if v.y.is_zero():
            return s_x - fp2.from_base(v.x)
        slope = (v.x.square() * 3 + v.curve.a) / (v.y * 2)
    else:
        slope = (w.y - v.y) / (w.x - v.x)
    return (s_y - fp2.from_base(v.y)) - (s_x - fp2.from_base(v.x)) * slope.value


def _vertical_value(v: CurvePoint, s_x, fp2: QuadraticField):
    """Evaluate the vertical line through V at x-coordinate ``s_x``."""
    if v.is_infinity:
        return fp2.one()
    return s_x - fp2.from_base(v.x)


def miller_loop_denominator_free(
    p_point: CurvePoint,
    s_point: CurvePoint,
    order: int,
    fp2: QuadraticField,
) -> QuadraticElement:
    """``f_{order, P}(S)`` with all vertical-line factors omitted.

    ``p_point`` must have the given (odd prime) order on ``E(Fp)``;
    ``s_point`` lives on ``E(Fp2)``.  The result is only meaningful after
    the reduced-Tate final exponentiation, which is what kills the
    omitted subfield factors.
    """
    if s_point.is_infinity:
        raise ParameterError("cannot evaluate Miller function at infinity")
    s_x, s_y = s_point.x, s_point.y
    f = fp2.one()
    v = p_point
    for bit_index in range(order.bit_length() - 2, -1, -1):
        f = f.square() * _line_value(v, v, s_x, s_y, fp2)
        v = v.double()
        if (order >> bit_index) & 1:
            f = f * _line_value(v, p_point, s_x, s_y, fp2)
            v = v + p_point
    if not v.is_infinity:
        raise ParameterError("point order does not divide the loop order")
    return f


_LINE = 0   # chord/tangent: (s_y - yv) - (s_x - xv) * slope
_VERT = 1   # vertical:      s_x - xv
_ONE = 2    # line through infinity: constant 1


class PrecomputedLines:
    """The line coefficients ``f_{order, P}`` touches, in loop order.

    Every coefficient lives in ``Fp`` (family A keeps ``P`` and all loop
    intermediates on ``E(Fp)``), so a step is four ints: an is-add flag
    plus ``(kind, x_V, y_V, slope)``.  Evaluating the sequence against a
    second argument replays :func:`miller_loop_denominator_free` exactly
    — same field operations in the same order — minus all the point
    arithmetic and slope inversions, which is where the per-pairing
    savings come from.
    """

    __slots__ = ("steps", "order")

    def __init__(self, steps: tuple, order: int):
        self.steps = steps
        self.order = order

    def __len__(self) -> int:
        return len(self.steps)


def _line_coefficients(v: CurvePoint, w: CurvePoint):
    """The ``(kind, x_V, y_V, slope)`` record for the line through V, W."""
    if v.is_infinity or w.is_infinity:
        return (_ONE, 0, 0, 0)
    if v.x == w.x and v.y != w.y:
        return (_VERT, v.x.value, 0, 0)
    if v.x == w.x:
        if v.y.is_zero():
            return (_VERT, v.x.value, 0, 0)
        slope = (v.x.square() * 3 + v.curve.a) / (v.y * 2)
    else:
        slope = (w.y - v.y) / (w.x - v.x)
    return (_LINE, v.x.value, v.y.value, slope.value)


def record_line_sequence(p_point: CurvePoint, order: int) -> PrecomputedLines:
    """Run the denominator-free loop once, keeping only line coefficients.

    ``p_point`` must have the given (odd prime) order on ``E(Fp)``.  The
    returned sequence replays against any number of second arguments via
    :func:`evaluate_line_sequence`.
    """
    steps = []
    v = p_point
    for bit_index in range(order.bit_length() - 2, -1, -1):
        steps.append((False,) + _line_coefficients(v, v))
        v = v.double()
        if (order >> bit_index) & 1:
            steps.append((True,) + _line_coefficients(v, p_point))
            v = v + p_point
    if not v.is_infinity:
        raise ParameterError("point order does not divide the loop order")
    return PrecomputedLines(tuple(steps), order)


def evaluate_line_sequence(
    lines: PrecomputedLines,
    s_point: CurvePoint,
    fp2: QuadraticField,
) -> QuadraticElement:
    """``f_{order, P}(S)`` from cached coefficients.

    Performs the same ``Fp2`` squarings and multiplications as
    :func:`miller_loop_denominator_free` (so the reduced pairing value
    is bit-for-bit identical) but no curve arithmetic.
    """
    if s_point.is_infinity:
        raise ParameterError("cannot evaluate Miller function at infinity")
    s_x, s_y = s_point.x, s_point.y
    f = fp2.one()
    for is_add, kind, xv, yv, slope in lines.steps:
        if not is_add:
            f = f.square()
        if kind == _LINE:
            value = (s_y - yv) - (s_x - xv) * slope
        elif kind == _VERT:
            value = s_x - xv
        else:
            continue
        f = f * value
    return f


def miller_loop_general(
    p_point: CurvePoint,
    s_point: CurvePoint,
    order: int,
    fp2: QuadraticField,
    aux_point: CurvePoint,
) -> QuadraticElement:
    """``f_{order, P}`` evaluated at the divisor ``(S + R) - (R)``.

    ``aux_point`` is ``R``, a point of ``E(Fp2)`` chosen so that no line
    in the loop vanishes on it or on ``S + R``; callers retry with a
    different ``R`` if a zero is hit (raised as :class:`ParameterError`).
    Numerators and denominators accumulate separately so the whole loop
    costs a single ``Fp2`` inversion.
    """
    if s_point.is_infinity:
        raise ParameterError("cannot evaluate Miller function at infinity")
    a_point = s_point + aux_point
    if a_point.is_infinity or aux_point.is_infinity:
        raise ParameterError("degenerate auxiliary point")
    ax, ay = a_point.x, a_point.y
    bx, by = aux_point.x, aux_point.y

    num = fp2.one()
    den = fp2.one()
    v = p_point
    for bit_index in range(order.bit_length() - 2, -1, -1):
        l_a = _line_value(v, v, ax, ay, fp2)
        l_b = _line_value(v, v, bx, by, fp2)
        v2 = v.double()
        v_a = _vertical_value(v2, ax, fp2)
        v_b = _vertical_value(v2, bx, fp2)
        num = num.square() * l_a * v_b
        den = den.square() * l_b * v_a
        v = v2
        if (order >> bit_index) & 1:
            l_a = _line_value(v, p_point, ax, ay, fp2)
            l_b = _line_value(v, p_point, bx, by, fp2)
            v1 = v + p_point
            v_a = _vertical_value(v1, ax, fp2)
            v_b = _vertical_value(v1, bx, fp2)
            num = num * l_a * v_b
            den = den * l_b * v_a
            v = v1
    if not v.is_infinity:
        raise ParameterError("point order does not divide the loop order")
    if num.is_zero() or den.is_zero():
        raise ParameterError("line vanished on auxiliary divisor; retry R")
    return num * den.inverse()
