"""Miller's algorithm for evaluating ``f_{q,P}`` at extension-field points.

Two variants are provided:

* :func:`miller_loop_denominator_free` — the BKLS/GHS-optimized loop that
  drops every vertical-line factor.  Correct whenever those factors land
  in a proper subfield killed by the final exponentiation, which holds
  for family A (distorted x-coordinates stay in ``Fp``).

* :func:`miller_loop_general` — the textbook loop evaluating ``f_{q,P}``
  at the divisor ``(S + R) - (R)`` for an auxiliary point ``R``, keeping
  numerator and denominator separate (one ``Fp2`` inversion at the end).
  Correct for any supersingular family, and the only correct choice for
  family B.  This is the "slow but general" arm of the E12 ablation.

Throughout, ``P`` and the intermediate points ``V`` live on ``E(Fp)``
(affine coordinates, slopes in ``Fp``) while the evaluation points live
on ``E(Fp2)``; mixed-field line evaluation embeds the ``Fp`` slope via
``QuadraticElement``'s integer coercion.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.ec.point import CurvePoint
from repro.math.quadratic import QuadraticElement, QuadraticField


def _line_value(v: CurvePoint, w: CurvePoint, s_x, s_y, fp2: QuadraticField):
    """Evaluate at ``(s_x, s_y)`` the line through base-field points V, W.

    Returns the chord/tangent value ``(s_y - y_V) - lambda * (s_x - x_V)``,
    or the vertical value ``s_x - x_V`` when the line through V and W is
    vertical (``W == -V`` or a 2-torsion doubling).
    """
    if v.is_infinity or w.is_infinity:
        # Line "through infinity" contributes the constant 1.
        return fp2.one()
    if v.x == w.x and v.y != w.y:
        return s_x - fp2.from_base(v.x)
    if v.x == w.x:
        # Tangent at V.
        if v.y.is_zero():
            return s_x - fp2.from_base(v.x)
        slope = (v.x.square() * 3 + v.curve.a) / (v.y * 2)
    else:
        slope = (w.y - v.y) / (w.x - v.x)
    return (s_y - fp2.from_base(v.y)) - (s_x - fp2.from_base(v.x)) * slope.value


def _vertical_value(v: CurvePoint, s_x, fp2: QuadraticField):
    """Evaluate the vertical line through V at x-coordinate ``s_x``."""
    if v.is_infinity:
        return fp2.one()
    return s_x - fp2.from_base(v.x)


def miller_loop_denominator_free(
    p_point: CurvePoint,
    s_point: CurvePoint,
    order: int,
    fp2: QuadraticField,
) -> QuadraticElement:
    """``f_{order, P}(S)`` with all vertical-line factors omitted.

    ``p_point`` must have the given (odd prime) order on ``E(Fp)``;
    ``s_point`` lives on ``E(Fp2)``.  The result is only meaningful after
    the reduced-Tate final exponentiation, which is what kills the
    omitted subfield factors.
    """
    if s_point.is_infinity:
        raise ParameterError("cannot evaluate Miller function at infinity")
    s_x, s_y = s_point.x, s_point.y
    f = fp2.one()
    v = p_point
    for bit_index in range(order.bit_length() - 2, -1, -1):
        f = f.square() * _line_value(v, v, s_x, s_y, fp2)
        v = v.double()
        if (order >> bit_index) & 1:
            f = f * _line_value(v, p_point, s_x, s_y, fp2)
            v = v + p_point
    if not v.is_infinity:
        raise ParameterError("point order does not divide the loop order")
    return f


_LINE = 0   # chord/tangent: (s_y - yv) - (s_x - xv) * slope
_VERT = 1   # vertical:      s_x - xv
_ONE = 2    # line through infinity: constant 1


class PrecomputedLines:
    """The line coefficients ``f_{order, P}`` touches, in loop order.

    Every coefficient lives in ``Fp`` (family A keeps ``P`` and all loop
    intermediates on ``E(Fp)``), so a step is four ints: an is-add flag
    plus ``(kind, x_V, y_V, slope)``.  Evaluating the sequence against a
    second argument replays :func:`miller_loop_denominator_free` exactly
    — same field operations in the same order — minus all the point
    arithmetic and slope inversions, which is where the per-pairing
    savings come from.
    """

    __slots__ = ("steps", "order")

    def __init__(self, steps: tuple, order: int):
        self.steps = steps
        self.order = order

    def __len__(self) -> int:
        return len(self.steps)


def _line_coefficients(v: CurvePoint, w: CurvePoint):
    """The ``(kind, x_V, y_V, slope)`` record for the line through V, W."""
    if v.is_infinity or w.is_infinity:
        return (_ONE, 0, 0, 0)
    if v.x == w.x and v.y != w.y:
        return (_VERT, v.x.value, 0, 0)
    if v.x == w.x:
        if v.y.is_zero():
            return (_VERT, v.x.value, 0, 0)
        slope = (v.x.square() * 3 + v.curve.a) / (v.y * 2)
    else:
        slope = (w.y - v.y) / (w.x - v.x)
    return (_LINE, v.x.value, v.y.value, slope.value)


def record_line_sequence(p_point: CurvePoint, order: int) -> PrecomputedLines:
    """Run the denominator-free loop once, keeping only line coefficients.

    ``p_point`` must have the given (odd prime) order on ``E(Fp)``.  The
    returned sequence replays against any number of second arguments via
    :func:`evaluate_line_sequence`.
    """
    steps = []
    v = p_point
    for bit_index in range(order.bit_length() - 2, -1, -1):
        steps.append((False,) + _line_coefficients(v, v))
        v = v.double()
        if (order >> bit_index) & 1:
            steps.append((True,) + _line_coefficients(v, p_point))
            v = v + p_point
    if not v.is_infinity:
        raise ParameterError("point order does not divide the loop order")
    return PrecomputedLines(tuple(steps), order)


def evaluate_line_sequence(
    lines: PrecomputedLines,
    s_point: CurvePoint,
    fp2: QuadraticField,
) -> QuadraticElement:
    """``f_{order, P}(S)`` from cached coefficients.

    Performs the same ``Fp2`` squarings and multiplications as
    :func:`miller_loop_denominator_free` (so the reduced pairing value
    is bit-for-bit identical) but no curve arithmetic.  The loop works
    on the raw ``(a, b)`` integer coefficients — every step is the same
    exact mod-``p`` computation :class:`QuadraticElement` would perform,
    minus the per-step object allocations, which dominate at this level.
    """
    if s_point.is_infinity:
        raise ParameterError("cannot evaluate Miller function at infinity")
    p = fp2.p
    beta = fp2.beta
    sx_a, sx_b = s_point.x.a, s_point.x.b
    sy_a, sy_b = s_point.y.a, s_point.y.b
    fa, fb = 1, 0
    for is_add, kind, xv, yv, slope in lines.steps:
        if not is_add:
            a2 = fa * fa
            b2 = fb * fb
            fa, fb = (a2 + beta * b2) % p, 2 * fa * fb % p
        if kind == _LINE:
            va = (sy_a - yv - (sx_a - xv) * slope) % p
            # Family A distorts to a purely-real x, so the line value's
            # ``u`` coefficient is the constant ``sy_b`` — no multiply.
            vb = (sy_b - sx_b * slope) % p if sx_b else sy_b
        elif kind == _VERT:
            va = (sx_a - xv) % p
            vb = sx_b
        else:
            continue
        if vb:
            ac = fa * va
            bd = fb * vb
            fa, fb = (
                (ac + beta * bd) % p,
                ((fa + fb) * (va + vb) - ac - bd) % p,
            )
        else:
            fa, fb = fa * va % p, fb * va % p
    return QuadraticElement(fp2, fa, fb)


def evaluate_line_sequences_product(
    tasks,
    fp2: QuadraticField,
) -> QuadraticElement:
    """``Π f_{order, P_i}(S_i)^{±1}`` with ONE shared squaring chain.

    ``tasks`` is a sequence of ``(lines, s_point, conjugate)`` triples:
    cached coefficients from :func:`record_line_sequence`, the ``E(Fp2)``
    evaluation point, and whether this factor enters the product
    conjugated (the unitary trick for exponent ``-1`` — after the final
    exponentiation ``FE(conj(f)) == FE(f)^-1``, so a conjugation here
    replaces a GT inversion there).

    Every sequence must be recorded for the same loop ``order``: the
    double/add step pattern is a function of the order alone, so the
    sequences align step-for-step and the accumulator squaring — one
    ``Fp2`` squaring per doubling step, normally paid once *per pairing*
    — is paid once for the whole product.  Because conjugation is a ring
    homomorphism and ``Fp2`` arithmetic is exact, the result equals the
    product of the individual :func:`evaluate_line_sequence` values
    (conjugated where requested) bit for bit.
    """
    tasks = list(tasks)
    if not tasks:
        return fp2.one()
    order = tasks[0][0].order
    length = len(tasks[0][0].steps)
    prepared = []
    for lines, s_point, conjugate in tasks:
        if lines.order != order or len(lines.steps) != length:
            raise ParameterError(
                "line sequences disagree on the loop order; "
                "multi-pairing requires one shared order"
            )
        if s_point.is_infinity:
            raise ParameterError("cannot evaluate Miller function at infinity")
        prepared.append((
            lines.steps,
            s_point.x.a, s_point.x.b,
            s_point.y.a, s_point.y.b,
            conjugate,
        ))
    # Same integer-level loop as evaluate_line_sequence, with one shared
    # accumulator: each step squares once and folds in every task's line
    # value (conjugation = negating the ``b`` coefficient).
    p = fp2.p
    beta = fp2.beta
    shared_steps = prepared[0][0]
    fa, fb = 1, 0
    for index in range(length):
        if not shared_steps[index][0]:  # is_add flag, shared by all tasks
            a2 = fa * fa
            b2 = fb * fb
            fa, fb = (a2 + beta * b2) % p, 2 * fa * fb % p
        for steps, sx_a, sx_b, sy_a, sy_b, conjugate in prepared:
            _, kind, xv, yv, slope = steps[index]
            if kind == _LINE:
                va = (sy_a - yv - (sx_a - xv) * slope) % p
                # Purely-real distorted x (family A): the ``u``
                # coefficient is the constant ``sy_b`` — no multiply.
                vb = (sy_b - sx_b * slope) % p if sx_b else sy_b
            elif kind == _VERT:
                va = (sx_a - xv) % p
                vb = sx_b
            else:
                continue
            if conjugate:
                vb = -vb % p
            if vb:
                ac = fa * va
                bd = fb * vb
                fa, fb = (
                    (ac + beta * bd) % p,
                    ((fa + fb) * (va + vb) - ac - bd) % p,
                )
            else:
                fa, fb = fa * va % p, fb * va % p
    return QuadraticElement(fp2, fa, fb)


def miller_loop_general(
    p_point: CurvePoint,
    s_point: CurvePoint,
    order: int,
    fp2: QuadraticField,
    aux_point: CurvePoint,
) -> QuadraticElement:
    """``f_{order, P}`` evaluated at the divisor ``(S + R) - (R)``.

    ``aux_point`` is ``R``, a point of ``E(Fp2)`` chosen so that no line
    in the loop vanishes on it or on ``S + R``; callers retry with a
    different ``R`` if a zero is hit (raised as :class:`ParameterError`).
    Numerators and denominators accumulate separately so the whole loop
    costs a single ``Fp2`` inversion.
    """
    if s_point.is_infinity:
        raise ParameterError("cannot evaluate Miller function at infinity")
    a_point = s_point + aux_point
    if a_point.is_infinity or aux_point.is_infinity:
        raise ParameterError("degenerate auxiliary point")
    ax, ay = a_point.x, a_point.y
    bx, by = aux_point.x, aux_point.y

    num = fp2.one()
    den = fp2.one()
    v = p_point
    for bit_index in range(order.bit_length() - 2, -1, -1):
        l_a = _line_value(v, v, ax, ay, fp2)
        l_b = _line_value(v, v, bx, by, fp2)
        v2 = v.double()
        v_a = _vertical_value(v2, ax, fp2)
        v_b = _vertical_value(v2, bx, fp2)
        num = num.square() * l_a * v_b
        den = den.square() * l_b * v_a
        v = v2
        if (order >> bit_index) & 1:
            l_a = _line_value(v, p_point, ax, ay, fp2)
            l_b = _line_value(v, p_point, bx, by, fp2)
            v1 = v + p_point
            v_a = _vertical_value(v1, ax, fp2)
            v_b = _vertical_value(v1, bx, fp2)
            num = num * l_a * v_b
            den = den * l_b * v_a
            v = v1
    if not v.is_infinity:
        raise ParameterError("point order does not divide the loop order")
    if num.is_zero() or den.is_zero():
        raise ParameterError("line vanished on auxiliary divisor; retry R")
    return num * den.inverse()
