"""Miller's algorithm for evaluating ``f_{q,P}`` at extension-field points.

Two variants are provided:

* :func:`miller_loop_denominator_free` — the BKLS/GHS-optimized loop that
  drops every vertical-line factor.  Correct whenever those factors land
  in a proper subfield killed by the final exponentiation, which holds
  for family A (distorted x-coordinates stay in ``Fp``).

* :func:`miller_loop_general` — the textbook loop evaluating ``f_{q,P}``
  at the divisor ``(S + R) - (R)`` for an auxiliary point ``R``, keeping
  numerator and denominator separate (one ``Fp2`` inversion at the end).
  Correct for any supersingular family, and the only correct choice for
  family B.  This is the "slow but general" arm of the E12 ablation.

Throughout, ``P`` and the intermediate points ``V`` live on ``E(Fp)``
(affine coordinates, slopes in ``Fp``) while the evaluation points live
on ``E(Fp2)``; mixed-field line evaluation embeds the ``Fp`` slope via
``QuadraticElement``'s integer coercion.
"""

from __future__ import annotations

from repro.encoding import int_from_bytes, int_to_bytes
from repro.errors import EncodingError, ParameterError
from repro.ec.point import CurvePoint
from repro.math.quadratic import QuadraticElement, QuadraticField


def _line_value(v: CurvePoint, w: CurvePoint, s_x, s_y, fp2: QuadraticField):
    """Evaluate at ``(s_x, s_y)`` the line through base-field points V, W.

    Returns the chord/tangent value ``(s_y - y_V) - lambda * (s_x - x_V)``,
    or the vertical value ``s_x - x_V`` when the line through V and W is
    vertical (``W == -V`` or a 2-torsion doubling).
    """
    if v.is_infinity or w.is_infinity:
        # Line "through infinity" contributes the constant 1.
        return fp2.one()
    if v.x == w.x and v.y != w.y:
        return s_x - fp2.from_base(v.x)
    if v.x == w.x:
        # Tangent at V.
        if v.y.is_zero():
            return s_x - fp2.from_base(v.x)
        slope = (v.x.square() * 3 + v.curve.a) / (v.y * 2)
    else:
        slope = (w.y - v.y) / (w.x - v.x)
    return (s_y - fp2.from_base(v.y)) - (s_x - fp2.from_base(v.x)) * slope.value


def _vertical_value(v: CurvePoint, s_x, fp2: QuadraticField):
    """Evaluate the vertical line through V at x-coordinate ``s_x``."""
    if v.is_infinity:
        return fp2.one()
    return s_x - fp2.from_base(v.x)


def miller_loop_denominator_free(
    p_point: CurvePoint,
    s_point: CurvePoint,
    order: int,
    fp2: QuadraticField,
) -> QuadraticElement:
    """``f_{order, P}(S)`` with all vertical-line factors omitted.

    ``p_point`` must have the given (odd prime) order on ``E(Fp)``;
    ``s_point`` lives on ``E(Fp2)``.  The result is only meaningful after
    the reduced-Tate final exponentiation, which is what kills the
    omitted subfield factors.
    """
    if s_point.is_infinity:
        raise ParameterError("cannot evaluate Miller function at infinity")
    s_x, s_y = s_point.x, s_point.y
    f = fp2.one()
    v = p_point
    for bit_index in range(order.bit_length() - 2, -1, -1):
        f = f.square() * _line_value(v, v, s_x, s_y, fp2)
        v = v.double()
        if (order >> bit_index) & 1:
            f = f * _line_value(v, p_point, s_x, s_y, fp2)
            v = v + p_point
    if not v.is_infinity:
        raise ParameterError("point order does not divide the loop order")
    return f


_LINE = 0   # chord/tangent: (s_y - yv) - (s_x - xv) * slope
_VERT = 1   # vertical:      s_x - xv
_ONE = 2    # line through infinity: constant 1


class PrecomputedLines:
    """The line coefficients ``f_{order, P}`` touches, in loop order.

    Every coefficient lives in ``Fp`` (family A keeps ``P`` and all loop
    intermediates on ``E(Fp)``), so a step is four ints: an is-add flag
    plus ``(kind, x_V, y_V, slope)``.  Evaluating the sequence against a
    second argument replays :func:`miller_loop_denominator_free` exactly
    — same field operations in the same order — minus all the point
    arithmetic and slope inversions, which is where the per-pairing
    savings come from.

    ``steps`` are always *canonical* integers in ``[0, p)`` regardless
    of the evaluating backend; a backend that wants its own
    representation (Montgomery residues, ``mpz``) converts once through
    :meth:`backend_steps` and the converted tuple is cached here per
    backend name.  The canonical steps are also what
    :meth:`to_bytes` serializes, so a sequence recorded under one
    backend rehydrates identically under any other.
    """

    __slots__ = ("steps", "order", "_backend_steps")

    def __init__(self, steps: tuple, order: int):
        self.steps = steps
        self.order = order
        self._backend_steps: dict[str, tuple] = {}

    def __len__(self) -> int:
        return len(self.steps)

    def backend_steps(self, backend) -> tuple:
        """The steps in ``backend``'s kernel representation (cached)."""
        converted = self._backend_steps.get(backend.name)
        if converted is None:
            converted = backend.convert_steps(self.steps)
            self._backend_steps[backend.name] = converted
        return converted

    # ------------------------------------------------------------------
    # Wire format: ship recorded lines to worker processes instead of
    # re-recording per worker.  Layout (all big-endian):
    #   order_len(2) || order || step_count(4) ||
    #   per step: flags(1: is_add<<2 | kind) || xv || yv || slope
    # with xv/yv/slope fixed-width at ``element_bytes``.
    # ------------------------------------------------------------------

    def to_bytes(self, element_bytes: int) -> bytes:
        order_blob = int_to_bytes(
            self.order, (self.order.bit_length() + 7) // 8 or 1
        )
        parts = [
            len(order_blob).to_bytes(2, "big"),
            order_blob,
            len(self.steps).to_bytes(4, "big"),
        ]
        for is_add, kind, xv, yv, slope in self.steps:
            parts.append(bytes([(int(is_add) << 2) | kind]))
            parts.append(int_to_bytes(xv, element_bytes))
            parts.append(int_to_bytes(yv, element_bytes))
            parts.append(int_to_bytes(slope, element_bytes))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes, element_bytes: int) -> "PrecomputedLines":
        if len(data) < 6:
            raise EncodingError("truncated line-sequence encoding")
        order_len = int.from_bytes(data[:2], "big")
        offset = 2 + order_len
        if len(data) < offset + 4:
            raise EncodingError("truncated line-sequence encoding")
        order = int_from_bytes(data[2:offset])
        count = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        step_size = 1 + 3 * element_bytes
        if len(data) != offset + count * step_size:
            raise EncodingError("line-sequence length mismatch")
        steps = []
        for _ in range(count):
            flags = data[offset]
            kind = flags & 0x03
            if kind not in (_LINE, _VERT, _ONE) or flags >> 3:
                raise EncodingError("bad line-step flags")
            xv = int_from_bytes(data[offset + 1:offset + 1 + element_bytes])
            yv = int_from_bytes(
                data[offset + 1 + element_bytes:offset + 1 + 2 * element_bytes]
            )
            slope = int_from_bytes(
                data[offset + 1 + 2 * element_bytes:offset + step_size]
            )
            steps.append((bool(flags >> 2), kind, xv, yv, slope))
            offset += step_size
        return cls(tuple(steps), order)


def _line_coefficients(v: CurvePoint, w: CurvePoint):
    """The ``(kind, x_V, y_V, slope)`` record for the line through V, W."""
    if v.is_infinity or w.is_infinity:
        return (_ONE, 0, 0, 0)
    if v.x == w.x and v.y != w.y:
        return (_VERT, v.x.value, 0, 0)
    if v.x == w.x:
        if v.y.is_zero():
            return (_VERT, v.x.value, 0, 0)
        slope = (v.x.square() * 3 + v.curve.a) / (v.y * 2)
    else:
        slope = (w.y - v.y) / (w.x - v.x)
    return (_LINE, v.x.value, v.y.value, slope.value)


def record_line_sequence(p_point: CurvePoint, order: int) -> PrecomputedLines:
    """Run the denominator-free loop once, keeping only line coefficients.

    ``p_point`` must have the given (odd prime) order on ``E(Fp)``.  The
    returned sequence replays against any number of second arguments via
    :func:`evaluate_line_sequence`.
    """
    steps = []
    v = p_point
    for bit_index in range(order.bit_length() - 2, -1, -1):
        steps.append((False,) + _line_coefficients(v, v))
        v = v.double()
        if (order >> bit_index) & 1:
            steps.append((True,) + _line_coefficients(v, p_point))
            v = v + p_point
    if not v.is_infinity:
        raise ParameterError("point order does not divide the loop order")
    return PrecomputedLines(tuple(steps), order)


def record_line_sequence_fast(
    p_point: CurvePoint, order: int
) -> PrecomputedLines:
    """:func:`record_line_sequence` with batch inversion — same steps.

    The affine recorder pays one extended-Euclid inversion per loop
    step (the slope denominator), which dominates a cold pairing.  This
    recorder walks the identical double/add schedule in Jacobian
    coordinates on raw integers, batch-normalizes every intermediate
    ``V`` to affine with ONE field inversion
    (:meth:`~repro.math.backend.base.FieldBackend.fp_batch_inv`), then
    resolves all slope denominators with a second batch inversion.
    Affine coordinates are canonical, so the recorded ``steps`` tuple is
    byte-identical to :func:`record_line_sequence`'s — the two are
    interchangeable everywhere, only the recording cost differs
    (~8x cheaper at ss512).
    """
    field = p_point.curve.field
    backend = field.backend
    p = field.p
    a_coeff = p_point.curve.a.value
    px, py = p_point.x.value, p_point.y.value
    # Walk the chain in Jacobian coordinates, remembering V's projective
    # coordinates at each line-evaluation site (doubling lines evaluate
    # at V *before* the doubling; addition lines at V after it).
    x, y, z = px, py, 1
    sched = []
    for bit_index in range(order.bit_length() - 2, -1, -1):
        sched.append((False, x, y, z))
        if z == 0 or y == 0:
            x, y, z = 1, 1, 0
        else:
            ysq = y * y % p
            s = 4 * x * ysq % p
            m = (3 * x * x + a_coeff * pow(z, 4, p)) % p
            x, y, z = (
                (m * m - 2 * s) % p,
                (m * (s - (m * m - 2 * s)) - 8 * ysq * ysq) % p,
                2 * y * z % p,
            )
        if (order >> bit_index) & 1:
            sched.append((True, x, y, z))
            if z == 0:
                x, y, z = px, py, 1
            else:
                z1sq = z * z % p
                u2 = px * z1sq % p
                s2 = py * z1sq * z % p
                if x == u2 and y != s2:
                    x, y, z = 1, 1, 0
                elif x == u2:
                    ysq = y * y % p
                    s = 4 * x * ysq % p
                    m = (3 * x * x + a_coeff * pow(z, 4, p)) % p
                    x, y, z = (
                        (m * m - 2 * s) % p,
                        (m * (s - (m * m - 2 * s)) - 8 * ysq * ysq) % p,
                        2 * y * z % p,
                    )
                else:
                    h = (u2 - x) % p
                    r = (s2 - y) % p
                    hsq = h * h % p
                    hcu = hsq * h % p
                    v = x * hsq % p
                    x3 = (r * r - hcu - 2 * v) % p
                    x, y, z = (
                        x3,
                        (r * (v - x3) - y * hcu) % p,
                        z * h % p,
                    )
    if z != 0:
        raise ParameterError("point order does not divide the loop order")
    # First batch inversion: normalize every finite V to affine.
    z_invs = iter(
        backend.fp_batch_inv([vz for _, _, _, vz in sched if vz != 0])
    )
    affine = []
    for is_add, vx, vy, vz in sched:
        if vz == 0:
            affine.append((is_add, None))
        else:
            zi = next(z_invs)
            zi_sq = zi * zi % p
            affine.append((is_add, (vx * zi_sq % p, vy * zi_sq * zi % p)))
    # Second batch inversion: all slope denominators at once.
    denominators: list[int] = []
    metas = []
    for is_add, coords in affine:
        if coords is None:
            metas.append((is_add, _ONE, 0, 0, None))
            continue
        xv, yv = coords
        if is_add and xv == px and yv != py:
            metas.append((is_add, _VERT, xv, 0, None))
            continue
        if is_add and xv != px:
            numerator = (py - yv) % p
            denominator = (px - xv) % p
        else:
            # Tangent at V (also the doubling-an-equal-point add case).
            if yv == 0:
                metas.append((is_add, _VERT, xv, 0, None))
                continue
            numerator = (3 * xv * xv + a_coeff) % p
            denominator = 2 * yv % p
        metas.append((is_add, _LINE, xv, yv, (numerator, len(denominators))))
        denominators.append(denominator)
    inverses = backend.fp_batch_inv(denominators) if denominators else []
    steps = []
    for is_add, kind, xv, yv, extra in metas:
        if kind == _LINE:
            numerator, inv_index = extra
            steps.append(
                (is_add, _LINE, xv, yv, numerator * inverses[inv_index] % p)
            )
        else:
            steps.append((is_add, kind, xv, 0, 0))
    return PrecomputedLines(tuple(steps), order)


def evaluate_line_sequence(
    lines: PrecomputedLines,
    s_point: CurvePoint,
    fp2: QuadraticField,
) -> QuadraticElement:
    """``f_{order, P}(S)`` from cached coefficients.

    Performs the same ``Fp2`` squarings and multiplications as
    :func:`miller_loop_denominator_free` (so the reduced pairing value
    is bit-for-bit identical) but no curve arithmetic.  The integer loop
    runs in the field's arithmetic backend
    (:meth:`~repro.math.backend.base.FieldBackend.eval_line_sequence`):
    the python backend executes the seed library's raw mod-``p`` loop
    verbatim, the Montgomery backend the lazy-reduction REDC kernel —
    canonical in, canonical out, identical bytes either way.
    """
    if s_point.is_infinity:
        raise ParameterError("cannot evaluate Miller function at infinity")
    backend = fp2.backend
    fa, fb = backend.eval_line_sequence(
        lines.backend_steps(backend),
        *backend.convert_coords(
            s_point.x.a, s_point.x.b, s_point.y.a, s_point.y.b
        ),
        fp2.beta,
    )
    return QuadraticElement(fp2, fa, fb)


def evaluate_line_sequences_product(
    tasks,
    fp2: QuadraticField,
) -> QuadraticElement:
    """``Π f_{order, P_i}(S_i)^{±1}`` with ONE shared squaring chain.

    ``tasks`` is a sequence of ``(lines, s_point, conjugate)`` triples:
    cached coefficients from :func:`record_line_sequence`, the ``E(Fp2)``
    evaluation point, and whether this factor enters the product
    conjugated (the unitary trick for exponent ``-1`` — after the final
    exponentiation ``FE(conj(f)) == FE(f)^-1``, so a conjugation here
    replaces a GT inversion there).

    Every sequence must be recorded for the same loop ``order``: the
    double/add step pattern is a function of the order alone, so the
    sequences align step-for-step and the accumulator squaring — one
    ``Fp2`` squaring per doubling step, normally paid once *per pairing*
    — is paid once for the whole product.  Because conjugation is a ring
    homomorphism and ``Fp2`` arithmetic is exact, the result equals the
    product of the individual :func:`evaluate_line_sequence` values
    (conjugated where requested) bit for bit.
    """
    tasks = list(tasks)
    if not tasks:
        return fp2.one()
    backend = fp2.backend
    order = tasks[0][0].order
    length = len(tasks[0][0].steps)
    prepared = []
    for lines, s_point, conjugate in tasks:
        if lines.order != order or len(lines.steps) != length:
            raise ParameterError(
                "line sequences disagree on the loop order; "
                "multi-pairing requires one shared order"
            )
        if s_point.is_infinity:
            raise ParameterError("cannot evaluate Miller function at infinity")
        prepared.append((
            lines.backend_steps(backend),
            *backend.convert_coords(
                s_point.x.a, s_point.x.b, s_point.y.a, s_point.y.b
            ),
            conjugate,
        ))
    # Same integer-level kernel as evaluate_line_sequence, with one
    # shared accumulator: each step squares once and folds in every
    # task's line value (conjugation = negating the ``b`` coefficient).
    fa, fb = backend.eval_line_sequences_product(prepared, fp2.beta)
    return QuadraticElement(fp2, fa, fb)


def miller_loop_general(
    p_point: CurvePoint,
    s_point: CurvePoint,
    order: int,
    fp2: QuadraticField,
    aux_point: CurvePoint,
) -> QuadraticElement:
    """``f_{order, P}`` evaluated at the divisor ``(S + R) - (R)``.

    ``aux_point`` is ``R``, a point of ``E(Fp2)`` chosen so that no line
    in the loop vanishes on it or on ``S + R``; callers retry with a
    different ``R`` if a zero is hit (raised as :class:`ParameterError`).
    Numerators and denominators accumulate separately so the whole loop
    costs a single ``Fp2`` inversion.
    """
    if s_point.is_infinity:
        raise ParameterError("cannot evaluate Miller function at infinity")
    a_point = s_point + aux_point
    if a_point.is_infinity or aux_point.is_infinity:
        raise ParameterError("degenerate auxiliary point")
    ax, ay = a_point.x, a_point.y
    bx, by = aux_point.x, aux_point.y

    num = fp2.one()
    den = fp2.one()
    v = p_point
    for bit_index in range(order.bit_length() - 2, -1, -1):
        l_a = _line_value(v, v, ax, ay, fp2)
        l_b = _line_value(v, v, bx, by, fp2)
        v2 = v.double()
        v_a = _vertical_value(v2, ax, fp2)
        v_b = _vertical_value(v2, bx, fp2)
        num = num.square() * l_a * v_b
        den = den.square() * l_b * v_a
        v = v2
        if (order >> bit_index) & 1:
            l_a = _line_value(v, p_point, ax, ay, fp2)
            l_b = _line_value(v, p_point, bx, by, fp2)
            v1 = v + p_point
            v_a = _vertical_value(v1, ax, fp2)
            v_b = _vertical_value(v1, bx, fp2)
            num = num * l_a * v_b
            den = den * l_b * v_a
            v = v1
    if not v.is_infinity:
        raise ParameterError("point order does not divide the loop order")
    if num.is_zero() or den.is_zero():
        raise ParameterError("line vanished on auxiliary divisor; retry R")
    return num * den.inverse()
