"""The modified (reduced) Tate pairing ``ê(P, Q) = f_{q,P}(phi(Q))^((p^2-1)/q)``.

``P`` and ``Q`` both come from the order-``q`` subgroup of ``E(Fp)``; the
distortion map ``phi`` moves ``Q`` off the base field, which makes the
pairing non-degenerate on ``G1 x G1`` (a *symmetric* / Type-1 pairing,
exactly the ``ê : G1 x G1 -> G2`` interface the paper's schemes use).

The final exponentiation factors as ``(p - 1) * c`` since
``(p^2 - 1)/q = (p - 1)(p + 1)/q`` and ``p + 1 = c*q``:

* ``f^(p-1)`` is one conjugation and one inversion, because the
  Frobenius on ``Fp2`` is conjugation;
* the remaining ``^c`` is a plain square-and-multiply, on an element
  that is now *unitary* (norm 1), so its inverse is its conjugate.
"""

from __future__ import annotations

import hashlib

from repro.errors import NotInSubgroupError, ParameterError
from repro.ec.point import CurvePoint
from repro.math.quadratic import QuadraticElement, unitary_exp
from repro.pairing.miller import (
    PrecomputedLines,
    evaluate_line_sequence,
    evaluate_line_sequences_product,
    miller_loop_denominator_free,
    miller_loop_general,
    record_line_sequence,
    record_line_sequence_fast,
)
from repro.pairing.supersingular import FAMILY_A, SupersingularCurve


def unitary_pow(base: QuadraticElement, exponent: int) -> QuadraticElement:
    """``base ** exponent`` assuming ``norm(base) == 1``.

    Negative exponents cost only a conjugation.  Delegates to
    :func:`repro.math.quadratic.unitary_exp` — width-4 wNAF recoding
    with free signed digits plus cyclotomic squaring (2 base-field
    multiplications per squaring instead of 3), which speeds up every
    final exponentiation and GT exponentiation in the library.  The
    returned element is exactly what naive square-and-multiply yields.
    """
    return unitary_exp(base, exponent)


class TatePairing:
    """Modified Tate pairing engine bound to one supersingular curve."""

    def __init__(self, ssc: SupersingularCurve):
        self.ssc = ssc
        self.fp2 = ssc.fp2
        # Derived lazily: family A never touches them, and even family B
        # only needs them on the first pairing, not at construction.
        self._aux_points = None

    @property
    def aux_points(self) -> list[CurvePoint]:
        """Auxiliary divisor points for the general loop, derived on first use."""
        if self._aux_points is None:
            self._aux_points = self._derive_aux_points()
        return self._aux_points

    def _derive_aux_points(self, count: int = 8) -> list[CurvePoint]:
        """Deterministic auxiliary divisor points for the general loop.

        Base-field points suffice: the only requirements are support
        disjoint from ``div(f_P) = q(P) - q(O)`` and no accidental line
        zeros, both of which the retry loop in :meth:`pair` enforces.
        """
        points = []
        counter = 0
        rng_tag = f"repro:tate-aux:{self.ssc.params.name}:{self.ssc.family}"
        while len(points) < count:
            # lint: allow[hash-domain] fixed-width counter after a constant
            # tag; reframing would move the derived auxiliary points
            seed = hashlib.sha512(
                rng_tag.encode() + counter.to_bytes(4, "big")
            ).digest()
            counter += 1
            candidate = self.ssc._map_seed_to_point(seed)
            if candidate is None or candidate.is_infinity:
                continue
            x = self.fp2.from_base(candidate.x)
            y = self.fp2.from_base(candidate.y)
            points.append(self.ssc.ext_curve.unchecked_point(x, y))
        return points

    def pair(self, p_point: CurvePoint, q_point: CurvePoint) -> QuadraticElement:
        """Compute ``ê(P, Q)`` for subgroup points P, Q of ``E(Fp)``.

        Returns the identity of ``G2`` when either input is infinity,
        mirroring the bilinear extension ``ê(O, Q) = 1``.
        """
        if p_point.is_infinity or q_point.is_infinity:
            return self.fp2.one()
        if p_point.curve != self.ssc.curve or q_point.curve != self.ssc.curve:
            raise NotInSubgroupError("pairing inputs must lie on E(Fp)")
        s_point = self.ssc.distort(q_point)
        if self.ssc.family == FAMILY_A:
            if self.fp2.backend.prefers_recorded_miller:
                # Record-then-evaluate: the Jacobian recorder replaces
                # the per-step egcd inversions (which dominate a cold
                # affine loop) with two batch inversions, and the
                # evaluation runs in the backend's kernel.  Byte-
                # identical to the affine loop — see
                # record_line_sequence_fast.
                f = evaluate_line_sequence(
                    self._record(p_point), s_point, self.fp2
                )
            else:
                f = miller_loop_denominator_free(
                    p_point, s_point, self.ssc.q, self.fp2
                )
        else:
            f = self._general_miller(p_point, s_point)
        return self.final_exponentiation(f)

    def _record(self, p_point: CurvePoint) -> PrecomputedLines:
        """Record ``P``'s line sequence via the backend-preferred path."""
        if self.fp2.backend.prefers_recorded_miller:
            return record_line_sequence_fast(p_point, self.ssc.q)
        return record_line_sequence(p_point, self.ssc.q)

    def precompute_lines(self, p_point: CurvePoint) -> PrecomputedLines:
        """Cache the Miller-loop line coefficients for a fixed ``P``.

        The denominator-free (family A) loop's lines depend only on
        ``P`` and the loop order ``q``; the returned sequence feeds
        :meth:`pair_with_precomp` for any number of second arguments,
        skipping all per-pairing curve arithmetic and slope inversions.
        Since the pairing is symmetric, callers with a fixed *second*
        argument simply swap it into the ``P`` slot.
        """
        if self.ssc.family != FAMILY_A:
            raise ParameterError(
                "line precomputation requires the denominator-free "
                "(family A) Miller loop"
            )
        if p_point.is_infinity:
            raise ParameterError("cannot precompute lines for infinity")
        if p_point.curve != self.ssc.curve:
            raise NotInSubgroupError("pairing inputs must lie on E(Fp)")
        return self._record(p_point)

    def pair_with_precomp(
        self, lines: PrecomputedLines, q_point: CurvePoint
    ) -> QuadraticElement:
        """``ê(P, Q)`` from :meth:`precompute_lines` output for ``P``.

        Byte-identical to :meth:`pair` on the same arguments: the line
        evaluation performs the same ``Fp2`` operations in the same
        order, and the final exponentiation is shared.
        """
        if q_point.is_infinity:
            return self.fp2.one()
        if q_point.curve != self.ssc.curve:
            raise NotInSubgroupError("pairing inputs must lie on E(Fp)")
        s_point = self.ssc.distort(q_point)
        f = evaluate_line_sequence(lines, s_point, self.fp2)
        return self.final_exponentiation(f)

    def multi_pair(self, pairs, exponents=None) -> QuadraticElement:
        """``Π ê(P_i, Q_i)^{e_i}`` with ONE shared final exponentiation.

        ``pairs`` is a sequence of ``(P, Q)`` where ``P`` is either a
        subgroup point of ``E(Fp)`` or a :class:`PrecomputedLines`
        recorded for one (family A), and ``Q`` is a subgroup point;
        ``exponents`` is an optional matching sequence of ``+1``/``-1``
        (default all ``+1``).

        A product of ``k`` pairings normally costs ``k`` Miller loops
        *and* ``k`` final exponentiations.  Here the Miller loops run in
        lockstep accumulating into a single ``Fp2`` product (on family A
        the per-iteration accumulator squaring is shared too), negative
        exponents enter as conjugated Miller values (valid because
        ``FE(conj(f)) == FE(f)^-1`` for the even-embedding-degree
        reduced Tate pairing — the Frobenius on ``Fp2`` is conjugation),
        and the final exponentiation is applied once to the product.
        The result is bit-for-bit equal to the product of the individual
        :meth:`pair` values (inverted where ``e_i == -1``): the final
        exponentiation and conjugation are ring homomorphisms and every
        field operation is exact.

        Pairs with an infinity argument contribute the identity factor,
        mirroring ``ê(O, Q) == 1``.
        """
        pairs = list(pairs)
        if exponents is None:
            exponents = [1] * len(pairs)
        else:
            exponents = list(exponents)
            if len(exponents) != len(pairs):
                raise ParameterError("one exponent per pair required")
            if any(e not in (1, -1) for e in exponents):
                raise ParameterError("multi_pair exponents must be +1 or -1")
        live = []
        for (first, q_point), exponent in zip(pairs, exponents):
            if isinstance(first, PrecomputedLines):
                if q_point.is_infinity:
                    continue
                if q_point.curve != self.ssc.curve:
                    raise NotInSubgroupError("pairing inputs must lie on E(Fp)")
            else:
                if first.is_infinity or q_point.is_infinity:
                    continue
                if first.curve != self.ssc.curve or q_point.curve != self.ssc.curve:
                    raise NotInSubgroupError("pairing inputs must lie on E(Fp)")
            live.append((first, q_point, exponent))
        if not live:
            return self.fp2.one()
        if self.ssc.family == FAMILY_A:
            tasks = []
            for first, q_point, exponent in live:
                lines = (
                    first
                    if isinstance(first, PrecomputedLines)
                    else self._record(first)
                )
                tasks.append((lines, self.ssc.distort(q_point), exponent < 0))
            f = evaluate_line_sequences_product(tasks, self.fp2)
        else:
            f = self.fp2.one()
            for first, q_point, exponent in live:
                if isinstance(first, PrecomputedLines):
                    raise ParameterError(
                        "precomputed lines require the family A Miller loop"
                    )
                g = self._general_miller(first, self.ssc.distort(q_point))
                f = f * (g.conjugate() if exponent < 0 else g)
        return self.final_exponentiation(f)

    def _general_miller(self, p_point, s_point) -> QuadraticElement:
        last_error = None
        for aux in self.aux_points:
            try:
                return miller_loop_general(
                    p_point, s_point, self.ssc.q, self.fp2, aux
                )
            except ParameterError as exc:
                last_error = exc
        raise ParameterError(
            f"all auxiliary points failed for general Miller loop: {last_error}"
        )

    def final_exponentiation(self, f: QuadraticElement) -> QuadraticElement:
        """Raise a Miller value to ``(p^2 - 1)/q = (p - 1) * c``."""
        if f.is_zero():
            raise ParameterError("Miller value is zero; degenerate input")
        g = f.conjugate() * f.inverse()
        return unitary_pow(g, self.ssc.cofactor)
