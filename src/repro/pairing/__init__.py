"""Type-1 (symmetric) bilinear pairing substrate, built from scratch.

The paper needs a symmetric pairing ``ê : G1 × G1 → G2`` on a Gap
Diffie-Hellman group, which it notes "can be found in supersingular
elliptic curves over a finite field, with the bilinear pairing derived
from a Weil or Tate pairing" (§4).  This package implements exactly that:

* :mod:`repro.pairing.params` — frozen parameter sets ``p = c*q - 1``.
* :mod:`repro.pairing.supersingular` — the two classic supersingular
  families over ``Fp`` with embedding degree 2 and their distortion maps.
* :mod:`repro.pairing.miller` — Miller's algorithm (denominator-free and
  general divisor-based variants).
* :mod:`repro.pairing.tate` — the modified (reduced) Tate pairing.
* :mod:`repro.pairing.hashing` — hash-to-group and hash-to-scalar maps.
* :mod:`repro.pairing.api` — the :class:`~repro.pairing.api.PairingGroup`
  facade every scheme in :mod:`repro.core` builds on.
"""

from repro.pairing.api import GTElement, PairingGroup
from repro.pairing.params import PARAMETER_SETS, ParameterSet, get_parameter_set

__all__ = [
    "PairingGroup",
    "GTElement",
    "ParameterSet",
    "PARAMETER_SETS",
    "get_parameter_set",
]
