"""Frozen supersingular pairing parameter sets.

Each set fixes a subgroup order ``q`` (prime), a cofactor ``c`` with
``12 | c``, and the field prime ``p = c*q - 1``.  The congruences implied
by ``12 | c`` make both curve families available over the same ``p``:

* ``p % 4 == 3`` — family A (``y^2 = x^3 + x``) is supersingular and
  ``-1`` is a quadratic non-residue, giving ``Fp2 = Fp[i]``.
* ``p % 3 == 2`` — family B (``y^2 = x^3 + 1``) is supersingular, cubing
  is a bijection on ``Fp`` (deterministic MapToPoint), and ``-3`` is a
  non-residue so the cube root of unity lives in ``Fp2``.

Both families have ``#E(Fp) = p + 1 = c*q``, so the curves contain a
subgroup of prime order ``q`` with embedding degree 2.

The sets were generated offline by a Miller–Rabin search; the test suite
(``tests/pairing/test_params.py``) re-verifies every arithmetic property
above including the primality of ``p`` and ``q``.  ``toy64`` exists
purely so the test suite runs fast; it offers no security.  ``ss512``
matches the ~80-bit security level contemporary with the paper (2005);
``ss1024``/``ss1536`` scale up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class ParameterSet:
    """A supersingular pairing parameter set with ``p = c*q - 1``."""

    name: str
    q: int
    c: int
    p: int
    security_bits: int

    def __post_init__(self):
        if self.p != self.c * self.q - 1:
            raise ParameterError(f"{self.name}: p != c*q - 1")
        if self.c % 12 != 0:
            raise ParameterError(f"{self.name}: cofactor must be divisible by 12")

    @property
    def q_bits(self) -> int:
        return self.q.bit_length()

    @property
    def p_bits(self) -> int:
        return self.p.bit_length()


_TOY64 = ParameterSet(
    name="toy64",
    q=17324573639174612641,
    c=56346417254833363021322204064,
    p=976177655035019623064670474984617878259555973023,
    security_bits=0,
)

_SS512 = ParameterSet(
    name="ss512",
    q=1097116832682633065414916214177683499430470180217,
    c=int(
        "86779639211405360377956684777979365700346491991701721934192262914337"
        "95237020159396430800672383425070216644"
    ),
    p=int(
        "95207402912958678376164264118375042947488052284914401299718711100617"
        "92069207516746488027620165364891851699911905518014505106436356727758"
        "857230621912931747"
    ),
    security_bits=80,
)

_SS1024 = ParameterSet(
    name="ss1024",
    q=18633204877915252091713576077002433735569804243970114821986794682049,
    c=int(
        "58792011430149523618074087429746611680814478273210312259986891935405"
        "46770772297063619126746117870159257180294573650661410880765912664507"
        "65859665412903795809769132988645967900912151416461335408814143049617"
        "7727691725238350991927721038471979480"
    ),
    p=int(
        "10954835941627113597570175960527834943544119520123983368633316901266"
        "04596556661931090490004715147256401928062797617755802447264618231106"
        "08970150143639744250042190652081897941794478673726668332502565990012"
        "17219506302754309459833741589037696708418704318232514732995403116619"
        "9858320308491374503998167762252354519"
    ),
    security_bits=112,
)

_SS1536 = ParameterSet(
    name="ss1536",
    q=int(
        "86343045684770797795557719236360470292247633428061077362717743556856"
        "789963717"
    ),
    c=int(
        "17618545241947464729833343382892716821325924510284587287968297937957"
        "56118726192676935016238389342847144640179028119991959982206487550808"
        "27639593998234068682452750815092418334799590296501270997320594566616"
        "46344125568375290906781495066330699831866240725864294350351936448233"
        "70162695553761150985887717125840495350280922224926511781436824176053"
        "6000688925148882557131937206751830001392616940"
    ),
    p=int(
        "15212388567246711161294061343332821017052336649868428218963772005744"
        "60709100810889911065305856125829551706264578760273220373077451338121"
        "49411449464390406565265719317538284019157944715548585410286866148084"
        "92381471684202793563021435722820159056107058876307067635428810881196"
        "38416636541498426324503206672331596551138102918801574215432469937289"
        "22913713307835664392429848807157551656090671864214326185288220952489"
        "0357826509659938791520022633556868977970967494279565979"
    ),
    security_bits=128,
)


PARAMETER_SETS: dict[str, ParameterSet] = {
    ps.name: ps for ps in (_TOY64, _SS512, _SS1024, _SS1536)
}

DEFAULT_PARAMETER_SET = "ss512"


def get_parameter_set(name: str) -> ParameterSet:
    """Look up a parameter set by name, with a helpful error message."""
    try:
        return PARAMETER_SETS[name]
    except KeyError:
        known = ", ".join(sorted(PARAMETER_SETS))
        raise ParameterError(f"unknown parameter set {name!r}; known: {known}")
