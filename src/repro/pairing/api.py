"""The public pairing-group facade used by every scheme in the library.

A :class:`PairingGroup` bundles a supersingular curve family, its Tate
pairing engine, the hash maps, serialization, and an operation counter
behind one object with the exact algebraic interface of the paper's §4:

* ``G1`` — the additive order-``q`` subgroup of ``E(Fp)`` (curve points);
* ``G2`` (called GT here to avoid clashing with Type-3 terminology) —
  the multiplicative order-``q`` subgroup of ``Fp2*``, wrapped in
  :class:`GTElement`;
* ``ê = group.pair`` — bilinear, non-degenerate, efficiently computable.

Example::

    group = PairingGroup("toy64")
    s = group.random_scalar(rng)
    left = group.pair(group.mul(group.generator, s), group.generator)
    right = group.pair(group.generator, group.generator) ** s
    assert left == right
"""

from __future__ import annotations

import os
import random
import weakref

from repro.ec.point import CurvePoint
from repro.ec.precompute import FixedBaseTable
from repro.errors import GroupMismatchError, NotInSubgroupError, ParameterError
from repro.math.quadratic import GTFixedBaseTable, QuadraticElement, unitary_exp
from repro.pairing import hashing
from repro.pairing.opcount import (
    FINAL_EXP,
    FIXED_BASE_MULT,
    GT_EXP,
    GT_FIXED_BASE,
    GT_MUL,
    HASH_TO_GROUP,
    MILLER_LOOP,
    MULTI_PAIRING,
    PAIRING,
    PAIRING_PRECOMP,
    POINT_ADD,
    SCALAR_MULT,
    OperationCounter,
)
from repro.pairing.miller import PrecomputedLines
from repro.pairing.params import ParameterSet, get_parameter_set
from repro.pairing.supersingular import FAMILY_A, SupersingularCurve
from repro.pairing.tate import TatePairing, unitary_pow


class GTElement:
    """An element of the order-``q`` target group, always unitary."""

    __slots__ = ("group", "value")

    def __init__(self, group: "PairingGroup", value: QuadraticElement):
        self.group = group
        self.value = value

    def _check(self, other: "GTElement") -> None:
        if not isinstance(other, GTElement) or other.group is not self.group:
            raise GroupMismatchError("GT elements from different groups")

    def __mul__(self, other: "GTElement") -> "GTElement":
        self._check(other)
        self.group.counters.record(GT_MUL)
        return GTElement(self.group, self.value * other.value)

    def __truediv__(self, other: "GTElement") -> "GTElement":
        self._check(other)
        self.group.counters.record(GT_MUL)
        return GTElement(self.group, self.value * other.value.conjugate())

    def __pow__(self, exponent: int) -> "GTElement":
        # Routed through the group so a GTFixedBaseTable cached by
        # precompute_gt is picked up transparently (same element either
        # way; the table only changes the wall-clock cost).
        return self.group.gt_exp(self, exponent)

    def inverse(self) -> "GTElement":
        # Unitary: the conjugate is the inverse.
        return GTElement(self.group, self.value.conjugate())

    def is_identity(self) -> bool:
        return self.value.is_one()

    def to_bytes(self) -> bytes:
        return self.value.to_bytes()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GTElement)
            and other.group is self.group
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("GT", self.value))

    def __repr__(self) -> str:
        return f"GTElement({self.value!r})"


class PairingPrecomputation:
    """Cached Miller-line coefficients for one fixed pairing argument.

    Built by :meth:`PairingGroup.precompute_pairing`.  On family A the
    line coefficients of ``f_{q,P}`` are recorded once; :meth:`pair`
    then evaluates them against any second argument, skipping all curve
    arithmetic in the Miller loop.  On family B (no denominator-free
    loop) the object transparently falls back to the direct pairing, so
    callers can precompute unconditionally.
    """

    __slots__ = ("group", "point", "lines")

    def __init__(self, group: "PairingGroup", point: CurvePoint):
        self.group = group
        self.point = point
        self.lines = None
        if group.family == FAMILY_A and not point.is_infinity:
            group.ssc.ensure_in_subgroup(point)
            self.lines = group.tate.precompute_lines(point)

    @classmethod
    def from_lines(cls, group: "PairingGroup", point: CurvePoint, lines):
        """Wrap already-recorded lines without re-recording them.

        The rehydration half of
        :meth:`PairingGroup.export_pairing_lines` — worker processes
        install tables the parent recorded once instead of each paying
        the recording cost.  The lines are trusted to belong to
        ``point`` (they came from this library's own export).
        """
        precomp = cls.__new__(cls)
        precomp.group = group
        precomp.point = point
        precomp.lines = lines
        return precomp

    def pair(self, q_point: CurvePoint) -> "GTElement":
        """``ê(P, Q)`` — byte-identical to ``group.pair(P, Q)``."""
        self.group.counters.record(PAIRING)
        if not q_point.is_infinity and not self.point.is_infinity:
            self.group.counters.record(MILLER_LOOP)
            self.group.counters.record(FINAL_EXP)
        return GTElement(self.group, self._pair_value(q_point))

    def _pair_value(self, q_point: CurvePoint) -> QuadraticElement:
        if self.lines is None:
            return self.group.tate.pair(self.point, q_point)
        self.group.counters.record(PAIRING_PRECOMP)
        return self.group.tate.pair_with_precomp(self.lines, q_point)

    def __repr__(self) -> str:
        kind = "lines" if self.lines is not None else "fallback"
        return f"PairingPrecomputation({kind}, steps={len(self.lines or ())})"


# Every live group, so forked children can drop precomputation caches
# they inherited from the parent.  The caches are pure accelerators
# (byte-identical results with or without them), but letting a child
# keep probing — and lazily extending — a copy-on-write copy of the
# parent's tables means parent and child caches silently diverge, and
# each lazy extension forces a private page copy.  Clearing in the
# child is the fork-safe discipline (lint rules RP302/RP304); entries
# are weak so the registry never extends a group's lifetime.
_LIVE_GROUPS: "weakref.WeakSet[PairingGroup]" = weakref.WeakSet()


def _clear_caches_after_fork() -> None:
    """At-fork child hook: each group rebuilds caches on demand."""
    for group in _LIVE_GROUPS:
        group.clear_precomputations()


if hasattr(os, "register_at_fork"):  # not available on all platforms
    os.register_at_fork(after_in_child=_clear_caches_after_fork)


class PairingGroup:
    """A symmetric pairing group ``ê : G1 × G1 → GT`` with hashing.

    Parameters
    ----------
    params:
        A parameter-set name (``"toy64"``, ``"ss512"``, ...) or a
        :class:`~repro.pairing.params.ParameterSet`.
    family:
        Supersingular family, ``"A"`` (default; denominator-free Miller
        loop) or ``"B"`` (deterministic MapToPoint, general Miller loop).
    backend:
        Field-arithmetic backend (see :mod:`repro.math.backend`):
        ``"python"``, ``"montgomery"``, ``"gmpy2"``, or ``"auto"``
        (the default, also chosen for ``None``) which picks the fastest
        available.  Every group element and wire format is byte-identical
        across backends; only the wall clock changes.
    """

    def __init__(self, params="ss512", family: str = FAMILY_A,
                 backend: str | None = None):
        if isinstance(params, str):
            params = get_parameter_set(params)
        if not isinstance(params, ParameterSet):
            raise ParameterError("params must be a name or ParameterSet")
        self.params = params
        self.family = family
        self.ssc = SupersingularCurve(
            params, family, backend="auto" if backend is None else backend
        )
        self.backend = self.ssc.fp.backend
        self.backend_name = self.backend.name
        self.tate = TatePairing(self.ssc)
        self.counters = OperationCounter()
        self.q = params.q
        self.generator = self.ssc.generator
        self.point_bytes = 1 + 2 * self.ssc.fp.element_bytes
        self.gt_bytes = 2 * self.ssc.fp.element_bytes
        self.scalar_bytes = (self.q.bit_length() + 7) // 8
        # Fixed-argument caches, populated only by explicit precompute
        # calls; mul/pair/gt_exp probe them with a dict lookup per call.
        self._fixed_base: dict[CurvePoint, FixedBaseTable] = {}
        self._pairing_precomp: dict[CurvePoint, PairingPrecomputation] = {}
        self._gt_fixed_base: dict[QuadraticElement, GTFixedBaseTable] = {}
        # lint: allow[RP302] per-process bookkeeping by design: every
        # process tracks the groups *it* constructed so the at-fork hook
        # can clear inherited caches; divergence across processes is the
        # point, and WeakSet entries die with their groups
        _LIVE_GROUPS.add(self)

    # ------------------------------------------------------------------
    # Scalars.
    # ------------------------------------------------------------------

    def random_scalar(self, rng: random.Random) -> int:
        """A uniform element of ``Z_q^*``."""
        return rng.randrange(1, self.q)

    def hash_to_scalar(self, *parts: bytes, tag: str = "repro:Zq") -> int:
        return hashing.hash_to_scalar(self.q, *parts, tag=tag)

    # ------------------------------------------------------------------
    # G1 operations (counted).
    # ------------------------------------------------------------------

    def identity(self) -> CurvePoint:
        return self.ssc.curve.infinity()

    def mul(self, point: CurvePoint, scalar: int) -> CurvePoint:
        self.counters.record(SCALAR_MULT)
        table = self._fixed_base.get(point)
        if table is not None:
            self.counters.record(FIXED_BASE_MULT)
            return table.mult(scalar % self.q)
        return point * (scalar % self.q)

    def precompute(self, point: CurvePoint, width: int = 4) -> FixedBaseTable:
        """Build (and cache) a fixed-base table for ``point``.

        Subsequent :meth:`mul` calls on the same point use the table —
        zero doublings, one mixed addition per ``width``-bit window —
        and return byte-identical results.  Amortizes after a handful of
        multiplications; see ``docs/PERFORMANCE.md`` for the memory /
        break-even numbers.  :meth:`clear_precomputations` frees tables.
        """
        table = self._fixed_base.get(point)
        if table is None or table.width != width:
            table = FixedBaseTable(point, self.q.bit_length(), width=width)
            self._fixed_base[point] = table
        return table

    def add(self, left: CurvePoint, right: CurvePoint) -> CurvePoint:
        self.counters.record(POINT_ADD)
        return left + right

    def negate(self, point: CurvePoint) -> CurvePoint:
        return -point

    def hash_to_g1(self, data: bytes, tag: str = "repro:H1") -> CurvePoint:
        """The paper's ``H1 : {0,1}* → G1`` random oracle."""
        self.counters.record(HASH_TO_GROUP)
        return hashing.hash_to_subgroup(self.ssc, data, tag)

    def random_point(self, rng: random.Random) -> CurvePoint:
        """A uniform element of the order-``q`` subgroup."""
        return self.mul(self.generator, self.random_scalar(rng))

    def in_group(self, point: CurvePoint) -> bool:
        return self.ssc.in_subgroup(point)

    def point_to_bytes(self, point: CurvePoint) -> bytes:
        encoded = point.to_bytes()
        if len(encoded) == 1:
            # Pad the infinity encoding to the fixed width so all G1
            # serializations have equal length.
            return encoded.ljust(self.point_bytes, b"\x00")
        return encoded

    def point_from_bytes(self, data: bytes) -> CurvePoint:
        if data[:1] == b"\x00":
            return self.identity()
        point = self.ssc.curve.point_from_bytes(data)
        self.ssc.ensure_in_subgroup(point)
        return point

    # ------------------------------------------------------------------
    # Compressed encoding: x plus one parity bit, ~half the bytes.
    # Useful when broadcast size matters (the time-bound key update is
    # exactly one point); decompression costs one square root.
    # ------------------------------------------------------------------

    @property
    def compressed_point_bytes(self) -> int:
        return 1 + self.ssc.fp.element_bytes

    def point_to_bytes_compressed(self, point: CurvePoint) -> bytes:
        """``prefix || x`` with the y-parity in the prefix (02/03)."""
        if point.is_infinity:
            return b"\x00".ljust(self.compressed_point_bytes, b"\x00")
        prefix = 0x02 | (point.y.value & 1)
        return bytes([prefix]) + point.x.to_bytes()

    def point_from_bytes_compressed(self, data: bytes) -> CurvePoint:
        from repro.errors import DecodingError

        if len(data) != self.compressed_point_bytes:
            raise DecodingError(
                f"expected {self.compressed_point_bytes} compressed bytes, "
                f"got {len(data)}"
            )
        if data[0] == 0x00:
            if any(data[1:]):
                raise DecodingError("bad infinity encoding")
            return self.identity()
        if data[0] not in (0x02, 0x03):
            raise DecodingError("bad compressed-point prefix")
        x = self.ssc.fp.from_bytes(data[1:])
        point = self.ssc.curve.point_from_x(x, y_parity=data[0] & 1)
        self.ssc.ensure_in_subgroup(point)
        return point

    # ------------------------------------------------------------------
    # Pairing and GT.
    # ------------------------------------------------------------------

    def pair(self, p_point: CurvePoint, q_point: CurvePoint) -> GTElement:
        """The symmetric bilinear map ``ê(P, Q)``.

        If either argument has cached Miller lines (see
        :meth:`precompute_pairing`), the pairing is evaluated from them
        — symmetry lets a cached *second* argument swap into the fixed
        slot.  Results are identical either way.
        """
        self.counters.record(PAIRING)
        if not p_point.is_infinity and not q_point.is_infinity:
            self.counters.record(MILLER_LOOP)
            self.counters.record(FINAL_EXP)
        precomp = self._pairing_precomp.get(p_point)
        if precomp is not None:
            return GTElement(self, precomp._pair_value(q_point))
        precomp = self._pairing_precomp.get(q_point)
        if precomp is not None:
            return GTElement(self, precomp._pair_value(p_point))
        return GTElement(self, self.tate.pair(p_point, q_point))

    def multi_pair(self, pairs, exponents=None) -> GTElement:
        """``Π ê(P_i, Q_i)^{e_i}`` with ONE shared final exponentiation.

        ``pairs`` is a sequence of ``(P, Q)`` point pairs and
        ``exponents`` an optional matching sequence of ``+1``/``-1``
        (default all ``+1`` — a plain pairing product).  The Miller
        loops run in lockstep into a single accumulator and the final
        exponentiation is applied once, so a product that would cost
        ``k`` pairings and ``k`` final exponentiations costs ``k``
        Miller loops and one final exponentiation; negative exponents
        cost one ``Fp2`` conjugation per line instead of a GT inversion.
        Cached Miller lines (:meth:`precompute_pairing`) are picked up
        on either argument of each pair, exactly like :meth:`pair`.

        The result is byte-identical to computing ``group.pair`` per
        pair and multiplying (inverting the ``e_i == -1`` factors).
        """
        pairs = list(pairs)
        if not pairs:
            return self.gt_identity()
        resolved = []
        live = 0
        for p_point, q_point in pairs:
            self.counters.record(PAIRING)
            if not p_point.is_infinity and not q_point.is_infinity:
                self.counters.record(MILLER_LOOP)
                live += 1
            first, second = p_point, q_point
            precomp = self._pairing_precomp.get(p_point)
            if precomp is not None and precomp.lines is not None:
                first, second = precomp.lines, q_point
                self.counters.record(PAIRING_PRECOMP)
            else:
                precomp = self._pairing_precomp.get(q_point)
                if precomp is not None and precomp.lines is not None:
                    # Symmetric pairing: a cached second argument swaps
                    # into the fixed slot.
                    first, second = precomp.lines, p_point
                    self.counters.record(PAIRING_PRECOMP)
            resolved.append((first, second))
        self.counters.record(MULTI_PAIRING)
        if live:
            self.counters.record(FINAL_EXP)
        return GTElement(self, self.tate.multi_pair(resolved, exponents))

    def pair_ratio_is_one(self, numerators, denominators=()) -> bool:
        """Verify ``Π ê(numerators) == Π ê(denominators)`` in one shot.

        The pairing-product equation behind every verification in the
        library (BLS, update self-authentication, receiver-key
        well-formedness, threshold shares, resilient node keys) checked
        with a single multi-pairing: one combined Miller loop and one
        final exponentiation instead of one of each per pairing.

        As a verifier entry point this rejects degenerate equations: if
        any input point is the point at infinity the check returns
        ``False`` (an infinity factor contributes the identity, which
        would let a forged element cancel out of the equation).  Callers
        comparing products that may legitimately contain infinity use
        :meth:`multi_pair` directly.
        """
        numerators = list(numerators)
        denominators = list(denominators)
        for p_point, q_point in (*numerators, *denominators):
            if p_point.is_infinity or q_point.is_infinity:
                return False
        exponents = [1] * len(numerators) + [-1] * len(denominators)
        return self.multi_pair([*numerators, *denominators], exponents).is_identity()

    def precompute_pairing(self, point: CurvePoint) -> PairingPrecomputation:
        """Cache Miller lines for a fixed pairing argument.

        Returns a :class:`PairingPrecomputation` whose ``pair(Q)``
        evaluates ``ê(point, Q)`` from the cached lines; :meth:`pair`
        also probes this cache on both arguments, so existing call
        sites speed up without changes.  On family B the returned
        object falls back to the direct pairing (no denominator-free
        loop to cache).  :meth:`clear_precomputations` frees the cache.
        """
        precomp = self._pairing_precomp.get(point)
        if precomp is None:
            precomp = PairingPrecomputation(self, point)
            self._pairing_precomp[point] = precomp
        return precomp

    # ------------------------------------------------------------------
    # Shipping precomputed lines between processes.  Layout:
    #   count(4) || per entry: point(point_bytes) || lines_len(4) || lines
    # Everything is canonical bytes, so a blob exported under one
    # backend installs identically under any other.
    # ------------------------------------------------------------------

    def export_pairing_lines(self, points) -> bytes:
        """Serialize cached Miller lines for ``points`` into one blob.

        Records any missing lines first (family A only).  The blob feeds
        :meth:`install_pairing_lines` in another process — typically a
        :func:`repro.parallel.parallel_map` worker, which then never
        re-records lines the parent already paid for.
        """
        if self.family != FAMILY_A:
            raise ParameterError(
                "line export requires the denominator-free (family A) loop"
            )
        points = list(points)
        parts = [len(points).to_bytes(4, "big")]
        element_bytes = self.ssc.fp.element_bytes
        for point in points:
            precomp = self.precompute_pairing(point)
            if precomp.lines is None:
                raise ParameterError("cannot export lines for infinity")
            parts.append(self.point_to_bytes(point))
            blob = precomp.lines.to_bytes(element_bytes)
            parts.append(len(blob).to_bytes(4, "big"))
            parts.append(blob)
        return b"".join(parts)

    def install_pairing_lines(self, data: bytes) -> int:
        """Install an :meth:`export_pairing_lines` blob into this group.

        Returns the number of entries installed.  Subsequent
        :meth:`pair` / :meth:`multi_pair` calls on the covered points hit
        the cache exactly as if :meth:`precompute_pairing` had recorded
        them locally — same bytes, none of the recording cost.
        """
        from repro.errors import DecodingError, EncodingError

        if len(data) < 4:
            raise DecodingError("truncated pairing-lines blob")
        count = int.from_bytes(data[:4], "big")
        offset = 4
        element_bytes = self.ssc.fp.element_bytes
        installed = []
        for _ in range(count):
            if len(data) < offset + self.point_bytes + 4:
                raise DecodingError("truncated pairing-lines blob")
            point = self.point_from_bytes(
                data[offset:offset + self.point_bytes]
            )
            offset += self.point_bytes
            blob_len = int.from_bytes(data[offset:offset + 4], "big")
            offset += 4
            if len(data) < offset + blob_len:
                raise DecodingError("truncated pairing-lines blob")
            try:
                lines = PrecomputedLines.from_bytes(
                    data[offset:offset + blob_len], element_bytes
                )
            except EncodingError as exc:
                raise DecodingError(str(exc)) from exc
            offset += blob_len
            installed.append((point, lines))
        if offset != len(data):
            raise DecodingError("trailing bytes in pairing-lines blob")
        for point, lines in installed:
            self._pairing_precomp[point] = PairingPrecomputation.from_lines(
                self, point, lines
            )
        return len(installed)

    def clear_precomputations(self) -> None:
        """Drop all fixed-base tables, cached Miller lines, and GT tables.

        Long-running processes that precompute per-epoch updates (e.g.
        archive catch-up over thousands of labels) call this to bound
        memory; correctness is unaffected.
        """
        self._fixed_base.clear()
        self._pairing_precomp.clear()
        self._gt_fixed_base.clear()

    def gt_exp(self, gt: GTElement, exponent: int) -> GTElement:
        """``gt ** exponent`` (exponent reduced mod ``q``).

        The single entry point every GT exponentiation goes through
        (``GTElement.__pow__`` delegates here): if the base has a table
        cached by :meth:`precompute_gt` the exponentiation is
        table-driven — one ``Fp2`` multiplication per window, zero
        squarings — and the advisory ``gt_fixed_base`` counter records
        the hit.  Without a table it runs the wNAF/cyclotomic-squaring
        ladder.  The result is the same group element either way.
        """
        if not isinstance(gt, GTElement) or gt.group is not self:
            raise GroupMismatchError("gt_exp expects a GT element of this group")
        self.counters.record(GT_EXP)
        exponent %= self.q
        table = self._gt_fixed_base.get(gt.value)
        if table is not None:
            self.counters.record(GT_FIXED_BASE)
            return GTElement(self, table.exp(exponent))
        return GTElement(self, unitary_exp(gt.value, exponent))

    def precompute_gt(self, base: GTElement, width: int = 4) -> GTFixedBaseTable:
        """Build (and cache) a windowed exponentiation table for ``base``.

        The GT analog of :meth:`precompute`: subsequent ``base ** k``
        (equivalently :meth:`gt_exp`) calls on the same element read one
        stored power per ``width``-bit window of ``k`` — **zero
        squarings** — and return the identical group element.  This is
        the sender-side fast path: once ``g = ê(asG, H1(T))`` is cached
        for a fixed (receiver, T), every encryption costs one
        table-driven GT exponentiation instead of a pairing.  Memory is
        ``(2^width - 1) * ceil(q_bits/width)`` Fp2 elements;
        :meth:`clear_precomputations` frees the tables.
        """
        table = self._gt_fixed_base.get(base.value)
        if table is None or table.width != width:
            table = GTFixedBaseTable(base.value, self.q.bit_length(), width=width)
            self._gt_fixed_base[base.value] = table
        return table

    def gt_identity(self) -> GTElement:
        return GTElement(self, self.ssc.fp2.one())

    def ensure_in_gt(self, value: QuadraticElement) -> QuadraticElement:
        """Reject ``Fp2`` elements outside the order-``q`` target group.

        Membership needs two facts: the element is unitary (norm 1, so
        the conjugate is the inverse every GT operation relies on) and
        its order divides ``q``.  Accepting anything else would let a
        malicious serialization smuggle in a small-order element and
        bias the masks derived from it.
        """
        if not (value * value.conjugate()).is_one():
            raise NotInSubgroupError("GT element is not unitary")
        if not unitary_pow(value, self.q).is_one():
            raise NotInSubgroupError("GT element is outside the order-q subgroup")
        return value

    def gt_from_bytes(self, data: bytes, check: bool = True) -> GTElement:
        """Decode a GT element, validating subgroup membership.

        ``check=False`` skips the order check for bytes from a trusted
        in-process source (it costs one ``q``-bit exponentiation).
        """
        value = self.ssc.fp2.from_bytes(data)
        if check:
            self.ensure_in_gt(value)
        return GTElement(self, value)

    def mask_bytes(self, gt: GTElement, length: int, tag: str = "repro:H2") -> bytes:
        """The paper's ``H2 : G2 → {0,1}^n`` mask-derivation oracle."""
        return hashing.hash_gt_to_bytes(gt.value, length, tag)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PairingGroup)
            and other.params == self.params
            and other.family == self.family
        )

    def __hash__(self) -> int:
        return hash(("PairingGroup", self.params.name, self.family))

    def __repr__(self) -> str:
        return (
            f"PairingGroup({self.params.name!r}, family={self.family!r}, "
            f"backend={self.backend_name!r})"
        )
