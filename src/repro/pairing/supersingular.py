"""The two classic supersingular curve families and their distortion maps.

Family A — ``y^2 = x^3 + x`` over ``Fp`` with ``p % 4 == 3``.
    Supersingular with ``#E(Fp) = p + 1``.  The distortion map is
    ``phi(x, y) = (-x, i*y)`` with ``i^2 = -1`` in ``Fp2 = Fp[i]``.  Its
    key property for fast pairing: ``x``-coordinates of distorted points
    stay in the base field, so all vertical-line evaluations land in
    ``Fp*`` and are annihilated by the final exponentiation — Miller's
    algorithm can skip denominators entirely.

Family B — ``y^2 = x^3 + 1`` over ``Fp`` with ``p % 3 == 2``.
    Supersingular with ``#E(Fp) = p + 1``.  The distortion map is
    ``phi(x, y) = (zeta*x, y)`` where ``zeta = (-1 + sqrt(-3)) / 2`` is a
    primitive cube root of unity in ``Fp2``.  Distorted x-coordinates are
    proper ``Fp2`` elements, so denominators must be kept — the general
    divisor-based Miller loop is required.  Its compensating advantage is
    a *deterministic* hash-to-curve (cubing is a bijection when
    ``p % 3 == 2``), the classic Boneh–Franklin MapToPoint.

Both families are exposed through :class:`SupersingularCurve`, which owns
the base curve ``E(Fp)``, the extension curve ``E(Fp2)`` (where distorted
points live), the distortion map, and a deterministically derived
generator of the order-``q`` subgroup.
"""

from __future__ import annotations

import hashlib

from repro.errors import NotInSubgroupError, ParameterError
from repro.ec.curve import EllipticCurve
from repro.ec.point import CurvePoint
from repro.math.field import PrimeField
from repro.math.modular import inverse_mod
from repro.math.quadratic import QuadraticField
from repro.pairing.params import ParameterSet

FAMILY_A = "A"
FAMILY_B = "B"


class SupersingularCurve:
    """A supersingular curve/distortion-map pair over a parameter set."""

    def __init__(self, params: ParameterSet, family: str = FAMILY_A,
                 backend=None):
        if family not in (FAMILY_A, FAMILY_B):
            raise ParameterError(f"unknown curve family {family!r}")
        self.params = params
        self.family = family
        self.q = params.q
        self.cofactor = params.c
        self.p = params.p

        self.fp = PrimeField(params.p, check_prime=False, backend=backend)
        if family == FAMILY_A:
            if params.p % 4 != 3:
                raise ParameterError("family A needs p % 4 == 3")
            beta = -1
            a_coeff, b_coeff = self.fp(1), self.fp(0)
        else:
            if params.p % 3 != 2:
                raise ParameterError("family B needs p % 3 == 2")
            beta = -3
            a_coeff, b_coeff = self.fp(0), self.fp(1)
        self.fp2 = QuadraticField(self.fp, beta)
        self.curve = EllipticCurve(self.fp, a_coeff, b_coeff)
        self.ext_curve = EllipticCurve(
            self.fp2,
            self.fp2.from_base(a_coeff),
            self.fp2.from_base(b_coeff),
        )
        if family == FAMILY_B:
            # zeta = (-1 + u) / 2 with u = sqrt(-3): a primitive cube root
            # of unity, zeta^3 == 1 and zeta != 1.
            inv2 = inverse_mod(2, self.p)
            self._zeta = self.fp2((self.p - 1) * inv2, inv2)
            if self._zeta * self._zeta * self._zeta != self.fp2.one():
                raise ParameterError("zeta is not a cube root of unity")

        self.generator = self._derive_generator()

    # ------------------------------------------------------------------
    # Distortion map.
    # ------------------------------------------------------------------

    def distort(self, point: CurvePoint) -> CurvePoint:
        """Apply the family's distortion map, landing in ``E(Fp2)``.

        The image of an order-``q`` base-field point is an order-``q``
        point linearly independent from it, which is what makes the
        modified Tate pairing non-degenerate on ``G1 x G1``.
        """
        if point.is_infinity:
            return self.ext_curve.infinity()
        x = self.fp2.from_base(point.x)
        y = self.fp2.from_base(point.y)
        if self.family == FAMILY_A:
            # lint: allow[point-validation] distortion maps send curve points
            # to curve points; the input was validated when constructed
            return self.ext_curve.unchecked_point(-x, y * self.fp2.u())
        # lint: allow[point-validation] same argument for the family-B map
        return self.ext_curve.unchecked_point(x * self._zeta, y)

    # ------------------------------------------------------------------
    # Subgroup utilities.
    # ------------------------------------------------------------------

    def clear_cofactor(self, point: CurvePoint) -> CurvePoint:
        """Project a curve point into the order-``q`` subgroup."""
        return point * self.cofactor

    def in_subgroup(self, point: CurvePoint) -> bool:
        """Whether a point lies in the prime-order-``q`` subgroup."""
        if point.is_infinity:
            return True
        if point.curve != self.curve:
            return False
        return (point * self.q).is_infinity

    def ensure_in_subgroup(self, point: CurvePoint) -> CurvePoint:
        if not self.in_subgroup(point):
            raise NotInSubgroupError("point is outside the order-q subgroup")
        return point

    def _derive_generator(self) -> CurvePoint:
        """A fixed generator, derived by hashing a domain tag to the curve.

        Deterministic so that two parties constructing the same
        ``(parameter set, family)`` agree on ``G`` without communication.
        The scheme itself lets the *server* pick ``G``; this is just the
        library default.
        """
        tag = f"repro:generator:{self.params.name}:{self.family}".encode()
        counter = 0
        while True:
            # lint: allow[hash-domain] tag is the only variable-length part
            # and the counter suffix is fixed-width; reframing would change
            # every derived generator and the cross-version test vectors
            seed = hashlib.sha512(tag + counter.to_bytes(4, "big")).digest()
            candidate = self._map_seed_to_point(seed)
            if candidate is not None:
                point = self.clear_cofactor(candidate)
                if not point.is_infinity:
                    return point
            counter += 1

    def _map_seed_to_point(self, seed: bytes) -> CurvePoint | None:
        """Map a hash output to a curve point (not yet cofactor-cleared)."""
        value = int.from_bytes(seed, "big") % self.p
        if self.family == FAMILY_B:
            # Deterministic: x = (y^2 - 1)^(1/3) always succeeds.
            y = self.fp(value)
            x = (y.square() - self.fp(1)).cube_root()
            return self.curve.unchecked_point(x, y)
        # Family A: try x = value, succeed iff x^3 + x is a square.
        x = self.fp(value)
        rhs = x.square() * x + x
        if not rhs.is_square():
            return None
        y = rhs.sqrt()
        if seed[0] & 1:
            y = -y
        return self.curve.unchecked_point(x, y)

    def __repr__(self) -> str:
        return (
            f"SupersingularCurve(family={self.family}, "
            f"params={self.params.name})"
        )
