"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError`, so a
caller can catch the whole family with a single ``except`` clause while the
library itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ParameterError(ReproError):
    """A parameter set, curve, or group was configured inconsistently."""


class BackendUnavailableError(ParameterError):
    """A field-arithmetic backend was requested but cannot be used here.

    Raised when an explicitly named backend (e.g. ``"gmpy2"``) is not
    installed in this environment.  The ``"auto"`` selector never raises
    this — it probes and falls back instead.
    """


class NotOnCurveError(ReproError):
    """Coordinates handed to a curve do not satisfy its equation."""


class NotInSubgroupError(ReproError):
    """A point is on the curve but outside the prime-order subgroup."""


class FieldMismatchError(ReproError):
    """Two field elements from different fields were combined."""


class GroupMismatchError(ReproError):
    """Two group elements (or a key and a group) disagree on parameters."""


class EncodingError(ReproError):
    """A byte string could not be decoded into the expected object."""


class DecodingError(EncodingError):
    """Malformed bytes at a deserialization boundary.

    Raised when wire input fails structural validation — bad framing,
    wrong length, an unknown prefix, or coordinates that do not lie on
    the expected curve/subgroup.  Subclasses :class:`EncodingError` so
    existing ``except EncodingError`` handlers keep working.
    """


class KeyValidationError(ReproError):
    """A public key failed its well-formedness check (Encrypt step 1)."""


class DecryptionError(ReproError):
    """Authenticated decryption failed (wrong key, wrong update, or tamper)."""


class UpdateVerificationError(ReproError):
    """A time-bound key update failed its self-authentication check."""


class UpdateNotAvailableError(ReproError):
    """The time server was asked for an update whose time has not passed."""


class PolicyError(ReproError):
    """A policy-lock condition set was malformed or unsatisfied."""


class ProtocolError(ReproError):
    """An interactive protocol (e.g. the COT baseline) was misused."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class ParallelExecutionError(ReproError):
    """A worker process in the parallel batch engine raised an exception.

    Carries the worker-side traceback text so the failure is diagnosable
    from the parent process; raised instead of letting the pool hang or
    silently drop the failed shard.
    """


# ----------------------------------------------------------------------
# Service-layer taxonomy (repro.service).
#
# Retry policies are driven by *exception type*, never by string
# matching: everything under :class:`TransientServiceError` is worth
# retrying (possibly against a different source), everything under
# :class:`PermanentServiceError` is not — repeating the same request
# can only fail the same way.  Security failures (a forged update) stay
# in their own classes above; they are never retried against the same
# payload, only against other sources.
# ----------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for time-server service-layer failures."""


class TransientServiceError(ServiceError):
    """A failure that may succeed on retry (timeout, outage, bad bytes
    on the wire).  Retry policies catch exactly this class."""


class ServiceTimeoutError(TransientServiceError):
    """A request exceeded its per-attempt timeout or overall deadline."""


class ServiceUnavailableError(TransientServiceError):
    """The node is down, restarting, or has not published the requested
    update yet; the request is fine and should be retried later."""


class CircuitOpenError(TransientServiceError):
    """The circuit breaker for a source is open; the request was not
    sent.  Transient by definition — the breaker half-opens after its
    reset timeout."""


class PermanentServiceError(ServiceError):
    """The request itself is invalid (malformed, unknown type); retrying
    the identical request cannot succeed."""
