"""repro — a from-scratch reproduction of Chan & Blake (ICDCS 2005),
"Scalable, Server-Passive, User-Anonymous Timed Release Cryptography".

The package layers as follows (bottom-up):

* :mod:`repro.math`, :mod:`repro.ec`, :mod:`repro.pairing` — the
  Gap-Diffie-Hellman substrate: big-integer fields, supersingular curves
  and the modified Tate pairing.
* :mod:`repro.crypto` — symmetric building blocks (KDF, stream cipher,
  MAC, authenticated encryption).
* :mod:`repro.core` — the paper's contributions: the TRE and ID-TRE
  schemes, the passive time server, BLS time-bound key updates, CCA
  transforms, multi-server encryption, policy locks, key insulation and
  the certification helpers.
* :mod:`repro.baselines` — every comparator the paper discusses
  (time-lock puzzles, escrow agents, Rivest's server, Mont's vault,
  conditional oblivious transfer, and the hybrid PKE+IBE construction).
* :mod:`repro.sim` — a discrete-event network simulator used to run the
  paper's motivating scenarios (sealed-bid auctions, programming
  contests) end to end.

Quickstart::

    from repro import PairingGroup, TimedReleaseScheme, PassiveTimeServer
    import random

    rng = random.Random(7)
    group = PairingGroup("toy64")
    scheme = TimedReleaseScheme(group)
    server = PassiveTimeServer(group, rng=rng)
    receiver = scheme.generate_user_keypair(server.public_key, rng)

    ct = scheme.encrypt(b"bid: $1M", receiver.public, server.public_key,
                        b"2026-01-01T00:00Z", rng)
    update = server.publish_update(b"2026-01-01T00:00Z")
    print(scheme.decrypt(ct, receiver, update))
"""

from repro.pairing.api import GTElement, PairingGroup
from repro.pairing.params import PARAMETER_SETS, ParameterSet, get_parameter_set

__version__ = "1.0.0"

__all__ = [
    "PairingGroup",
    "GTElement",
    "ParameterSet",
    "PARAMETER_SETS",
    "get_parameter_set",
    "TimedReleaseScheme",
    "IdentityTimedReleaseScheme",
    "PassiveTimeServer",
    "TimeBoundKeyUpdate",
    "__version__",
]


def __getattr__(name):
    # Lazy imports keep `import repro` cheap and avoid circular imports
    # while still exposing the headline classes at the top level.
    if name in ("TimedReleaseScheme", "UserKeyPair"):
        from repro.core import tre

        return getattr(tre, name)
    if name == "IdentityTimedReleaseScheme":
        from repro.core.idtre import IdentityTimedReleaseScheme

        return IdentityTimedReleaseScheme
    if name in ("PassiveTimeServer", "TimeBoundKeyUpdate"):
        from repro.core import timeserver

        return getattr(timeserver, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
