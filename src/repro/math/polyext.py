"""Generic polynomial extension fields ``Fp[x]/(m(x))``.

The Type-1 pairing only needs ``Fp2``; the Type-3 BN254 backend
(:mod:`repro.pairing.bn254`) needs ``Fp2`` and ``Fp12`` with different
reduction polynomials.  This module provides a degree-agnostic
implementation: coefficients are plain ints mod ``p``, multiplication
is schoolbook followed by reduction, and inversion runs the extended
Euclidean algorithm over ``Fp[x]``.

The element protocol matches :mod:`repro.math.field` /
:mod:`repro.math.quadratic` (operators, ``square``, ``inverse``,
``is_zero``, ``to_bytes``), so :class:`repro.ec.curve.EllipticCurve`
works over these fields unchanged — the BN254 curve and its twist reuse
the exact same group-law code as the supersingular curves.
"""

from __future__ import annotations

from repro.encoding import int_from_bytes, int_to_bytes
from repro.errors import EncodingError, FieldMismatchError, ParameterError
from repro.math.modular import inverse_mod


class PolyExtensionField:
    """``Fp[x] / (x^deg - modulus_tail(x))`` presented as a field object.

    ``modulus_coeffs`` are the low-order coefficients ``c_0..c_{deg-1}``
    of the monic reduction polynomial ``x^deg + c_{deg-1} x^{deg-1} +
    ... + c_0`` (same convention as py_ecc, with signs included).
    """

    __slots__ = ("p", "degree", "modulus_coeffs", "element_bytes", "_base_bytes")

    def __init__(self, p: int, modulus_coeffs: tuple[int, ...]):
        if not modulus_coeffs:
            raise ParameterError("modulus must have positive degree")
        self.p = p
        self.degree = len(modulus_coeffs)
        self.modulus_coeffs = tuple(c % p for c in modulus_coeffs)
        self._base_bytes = (p.bit_length() + 7) // 8
        self.element_bytes = self.degree * self._base_bytes

    def __call__(self, coeffs) -> "PolyElement":
        if isinstance(coeffs, int):
            coeffs = [coeffs] + [0] * (self.degree - 1)
        coeffs = [c % self.p for c in coeffs]
        if len(coeffs) != self.degree:
            raise ParameterError(
                f"expected {self.degree} coefficients, got {len(coeffs)}"
            )
        return PolyElement(self, tuple(coeffs))

    def zero(self) -> "PolyElement":
        return self(0)

    def one(self) -> "PolyElement":
        return self(1)

    def x(self) -> "PolyElement":
        """The adjoined root (the class of ``x``)."""
        coeffs = [0] * self.degree
        coeffs[1 % self.degree] = 1
        return PolyElement(self, tuple(coeffs))

    def random(self, rng) -> "PolyElement":
        return PolyElement(
            self, tuple(rng.randrange(self.p) for _ in range(self.degree))
        )

    def from_bytes(self, data: bytes) -> "PolyElement":
        if len(data) != self.element_bytes:
            raise EncodingError(
                f"expected {self.element_bytes} bytes, got {len(data)}"
            )
        coeffs = []
        for i in range(self.degree):
            chunk = data[i * self._base_bytes:(i + 1) * self._base_bytes]
            value = int_from_bytes(chunk)
            if value >= self.p:
                raise EncodingError("coefficient exceeds field modulus")
            coeffs.append(value)
        return PolyElement(self, tuple(coeffs))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PolyExtensionField)
            and other.p == self.p
            and other.modulus_coeffs == self.modulus_coeffs
        )

    def __hash__(self) -> int:
        return hash(("PolyExtensionField", self.p, self.modulus_coeffs))

    def __repr__(self) -> str:
        return f"PolyExtensionField(deg={self.degree}, p~2^{self.p.bit_length()})"


def _poly_rounded_div(a: list[int], b: list[int], p: int) -> list[int]:
    """Polynomial division (quotient only) over Fp."""
    dega = _deg(a)
    degb = _deg(b)
    temp = list(a)
    quotient = [0] * (dega - degb + 1)
    inv_lead = inverse_mod(b[degb], p)
    for i in range(dega - degb, -1, -1):
        quotient[i] = (quotient[i] + temp[degb + i] * inv_lead) % p
        for c in range(degb + 1):
            temp[c + i] = (temp[c + i] - b[c] * quotient[i]) % p
    return quotient[: _deg(quotient) + 1]


def _deg(poly: list[int]) -> int:
    d = len(poly) - 1
    while d and poly[d] == 0:
        d -= 1
    return d


class PolyElement:
    """An element of a :class:`PolyExtensionField`; immutable."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field: PolyExtensionField, coeffs: tuple[int, ...]):
        self.field = field
        self.coeffs = coeffs

    def _coerce(self, other):
        if isinstance(other, PolyElement):
            if other.field != self.field:
                raise FieldMismatchError("elements of different extension fields")
            return other
        if isinstance(other, int):
            return self.field(other)
        return NotImplemented

    def __add__(self, other) -> "PolyElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        p = self.field.p
        return PolyElement(
            self.field,
            tuple((a + b) % p for a, b in zip(self.coeffs, other.coeffs)),
        )

    __radd__ = __add__

    def __sub__(self, other) -> "PolyElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        p = self.field.p
        return PolyElement(
            self.field,
            tuple((a - b) % p for a, b in zip(self.coeffs, other.coeffs)),
        )

    def __rsub__(self, other) -> "PolyElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other - self

    def __mul__(self, other) -> "PolyElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        p = self.field.p
        degree = self.field.degree
        product = [0] * (2 * degree - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                product[i + j] += a * b
        # Reduce x^k for k >= degree using the monic modulus.
        mod = self.field.modulus_coeffs
        for exp in range(2 * degree - 2, degree - 1, -1):
            top = product[exp] % p
            if top:
                product[exp] = 0
                base = exp - degree
                for i, c in enumerate(mod):
                    product[base + i] -= top * c
        return PolyElement(self.field, tuple(c % p for c in product[:degree]))

    __rmul__ = __mul__

    def __neg__(self) -> "PolyElement":
        p = self.field.p
        return PolyElement(self.field, tuple(-c % p for c in self.coeffs))

    def __truediv__(self, other) -> "PolyElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self * other.inverse()

    def __rtruediv__(self, other) -> "PolyElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other * self.inverse()

    def __pow__(self, exponent: int) -> "PolyElement":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = self.field.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def square(self) -> "PolyElement":
        return self * self

    def inverse(self) -> "PolyElement":
        """Extended Euclid over ``Fp[x]`` (py_ecc's algorithm)."""
        if self.is_zero():
            raise ParameterError("zero has no inverse")
        p = self.field.p
        degree = self.field.degree
        lm, hm = [1] + [0] * degree, [0] * (degree + 1)
        low = list(self.coeffs) + [0]
        high = list(self.field.modulus_coeffs) + [1]
        while _deg(low):
            quotient = _poly_rounded_div(high, low, p)
            quotient += [0] * (degree + 1 - len(quotient))
            nm = list(hm)
            new = list(high)
            for i in range(degree + 1):
                for j in range(degree + 1 - i):
                    nm[i + j] = (nm[i + j] - lm[i] * quotient[j]) % p
                    new[i + j] = (new[i + j] - low[i] * quotient[j]) % p
            hm, lm = lm, nm
            high, low = low, new
        inv_lead = inverse_mod(low[0], p)
        return PolyElement(
            self.field, tuple(c * inv_lead % p for c in lm[:degree])
        )

    def is_zero(self) -> bool:
        return all(c == 0 for c in self.coeffs)

    def is_one(self) -> bool:
        return self.coeffs[0] == 1 and all(c == 0 for c in self.coeffs[1:])

    def to_bytes(self) -> bytes:
        width = self.field._base_bytes
        return b"".join(int_to_bytes(c, width) for c in self.coeffs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.coeffs[0] == other % self.field.p and all(
                c == 0 for c in self.coeffs[1:]
            )
        return (
            isinstance(other, PolyElement)
            and other.field == self.field
            and other.coeffs == self.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.field.modulus_coeffs, self.coeffs))

    def __repr__(self) -> str:
        return f"PolyElement{self.coeffs}"
