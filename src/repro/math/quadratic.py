"""The quadratic extension ``Fp2 = Fp[u] / (u^2 - beta)``.

``beta`` must be a quadratic non-residue of ``Fp``.  The two supersingular
curve families use ``beta = -1`` (family A, so ``u = i``) and ``beta = -3``
(family B, where the primitive cube root of unity is ``(-1 + u) / 2``).

The Frobenius map ``x -> x^p`` acts as conjugation (``a + b*u -> a - b*u``)
because ``u^p = u * (u^2)^((p-1)/2) = -u`` for non-residue ``beta``.  The
pairing's final exponentiation exploits this: ``f^(p-1) = conj(f) / f``.
"""

from __future__ import annotations

from repro.encoding import int_from_bytes, int_to_bytes
from repro.errors import EncodingError, FieldMismatchError, ParameterError
from repro.math.field import PrimeField
from repro.math.modular import is_quadratic_residue

__all__ = [
    "QuadraticField",
    "QuadraticElement",
    "cyclotomic_square",
    "unitary_exp",
    "GTFixedBaseTable",
]


class QuadraticField:
    """``Fp[u]/(u^2 - beta)`` for a quadratic non-residue ``beta``.

    The field-arithmetic backend is inherited from the base field, so a
    :class:`~repro.pairing.api.PairingGroup` constructed with
    ``backend="montgomery"`` routes its ``Fp2`` inversions and unitary
    exponentiations through the same provider as its ``Fp`` layer.
    """

    __slots__ = ("base", "p", "beta", "element_bytes", "backend")

    def __init__(self, base: PrimeField, beta: int):
        beta %= base.p
        if is_quadratic_residue(beta, base.p):
            raise ParameterError("beta must be a quadratic non-residue")
        self.base = base
        self.p = base.p
        self.beta = beta
        self.element_bytes = 2 * base.element_bytes
        self.backend = base.backend

    def __call__(self, a: int, b: int = 0) -> "QuadraticElement":
        return QuadraticElement(self, a % self.p, b % self.p)

    def zero(self) -> "QuadraticElement":
        return QuadraticElement(self, 0, 0)

    def one(self) -> "QuadraticElement":
        return QuadraticElement(self, 1, 0)

    def u(self) -> "QuadraticElement":
        """The adjoined square root of ``beta``."""
        return QuadraticElement(self, 0, 1)

    def from_base(self, value) -> "QuadraticElement":
        """Embed an ``Fp`` element (or int) into ``Fp2``."""
        if hasattr(value, "value"):
            value = value.value
        return QuadraticElement(self, value % self.p, 0)

    def from_bytes(self, data: bytes) -> "QuadraticElement":
        half = self.base.element_bytes
        if len(data) != 2 * half:
            raise EncodingError(f"expected {2 * half} bytes, got {len(data)}")
        a = int_from_bytes(data[:half])
        b = int_from_bytes(data[half:])
        if a >= self.p or b >= self.p:
            raise EncodingError("encoded coefficient exceeds field modulus")
        return QuadraticElement(self, a, b)

    def random(self, rng) -> "QuadraticElement":
        return QuadraticElement(self, rng.randrange(self.p), rng.randrange(self.p))

    def order(self) -> int:
        """The number of elements, ``p^2``."""
        return self.p * self.p

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QuadraticField)
            and other.p == self.p
            and other.beta == self.beta
        )

    def __hash__(self) -> int:
        return hash(("QuadraticField", self.p, self.beta))

    def __repr__(self) -> str:
        return f"QuadraticField(p~2^{self.p.bit_length()}, beta={self.beta - self.p})"


class QuadraticElement:
    """``a + b*u`` with ``u^2 = beta``; immutable and hashable."""

    __slots__ = ("field", "a", "b")

    def __init__(self, field: QuadraticField, a: int, b: int):
        self.field = field
        self.a = a
        self.b = b

    def _coerce(self, other) -> "QuadraticElement":
        if isinstance(other, QuadraticElement):
            if other.field != self.field:
                raise FieldMismatchError("elements belong to different Fp2 fields")
            return other
        if isinstance(other, int):
            return QuadraticElement(self.field, other % self.field.p, 0)
        if hasattr(other, "value") and hasattr(other, "field"):
            # An Fp element over the same prime.
            if other.field.p != self.field.p:
                raise FieldMismatchError("base field modulus mismatch")
            return QuadraticElement(self.field, other.value, 0)
        return NotImplemented

    def __add__(self, other) -> "QuadraticElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        p = self.field.p
        return QuadraticElement(
            self.field, (self.a + other.a) % p, (self.b + other.b) % p
        )

    __radd__ = __add__

    def __sub__(self, other) -> "QuadraticElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        p = self.field.p
        return QuadraticElement(
            self.field, (self.a - other.a) % p, (self.b - other.b) % p
        )

    def __rsub__(self, other) -> "QuadraticElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other - self

    def __mul__(self, other) -> "QuadraticElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        p = self.field.p
        beta = self.field.beta
        # (a + bu)(c + du) = (ac + beta*bd) + (ad + bc)u
        ac = self.a * other.a
        bd = self.b * other.b
        cross = (self.a + self.b) * (other.a + other.b) - ac - bd
        return QuadraticElement(self.field, (ac + beta * bd) % p, cross % p)

    __rmul__ = __mul__

    def __neg__(self) -> "QuadraticElement":
        p = self.field.p
        return QuadraticElement(self.field, -self.a % p, -self.b % p)

    def __truediv__(self, other) -> "QuadraticElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self * other.inverse()

    def __rtruediv__(self, other) -> "QuadraticElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other * self.inverse()

    def __pow__(self, exponent: int) -> "QuadraticElement":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = self.field.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def square(self) -> "QuadraticElement":
        p = self.field.p
        beta = self.field.beta
        # (a + bu)^2 = (a^2 + beta*b^2) + 2ab*u
        a2 = self.a * self.a
        b2 = self.b * self.b
        return QuadraticElement(
            self.field, (a2 + beta * b2) % p, 2 * self.a * self.b % p
        )

    def norm(self) -> int:
        """The norm ``a^2 - beta*b^2``, an element of ``Fp`` (as int)."""
        p = self.field.p
        return (self.a * self.a - self.field.beta * self.b * self.b) % p

    def inverse(self) -> "QuadraticElement":
        p = self.field.p
        norm = self.norm()
        if norm == 0:
            raise ParameterError("zero has no inverse in Fp2")
        inv_norm = self.field.backend.fp_inv(norm)
        return QuadraticElement(
            self.field, self.a * inv_norm % p, -self.b * inv_norm % p
        )

    def conjugate(self) -> "QuadraticElement":
        """``a - b*u``, which equals the Frobenius ``self ** p``."""
        return QuadraticElement(self.field, self.a, -self.b % self.field.p)

    def unitary_inverse(self) -> "QuadraticElement":
        """Inverse assuming ``norm == 1`` (holds after final exponentiation).

        For unitary elements the conjugate *is* the inverse, which makes
        GT-exponentiation with negative digits cheap.
        """
        return self.conjugate()

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    def is_one(self) -> bool:
        return self.a == 1 and self.b == 0

    def in_base_field(self) -> bool:
        return self.b == 0

    def to_bytes(self) -> bytes:
        half = self.field.base.element_bytes
        return int_to_bytes(self.a, half) + int_to_bytes(self.b, half)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.b == 0 and self.a == other % self.field.p
        return (
            isinstance(other, QuadraticElement)
            and other.field == self.field
            and other.a == self.a
            and other.b == self.b
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.field.beta, self.a, self.b))

    def __repr__(self) -> str:
        return f"Fp2({self.a} + {self.b}u)"


# ----------------------------------------------------------------------
# Fast exponentiation for *unitary* elements (norm == 1).
#
# The order-q target group GT of the reduced Tate pairing lives in the
# norm-1 ("cyclotomic") subgroup of Fp2*: the final exponentiation's
# ^(p-1) step maps every Miller value there.  Two structural freebies
# follow, and the GT hot path (one exponentiation per encryption once
# the pairing is cached) is built on both:
#
# * the inverse is the conjugate, so signed-digit exponent recodings
#   cost nothing extra for their negative digits;
# * squaring needs only 2 base-field multiplications instead of the
#   generic 3: with a^2 - beta*b^2 == 1 the real part of
#   (a + bu)^2 = (a^2 + beta*b^2) + 2ab*u collapses to 2a^2 - 1.
# ----------------------------------------------------------------------


def cyclotomic_square(x: QuadraticElement) -> QuadraticElement:
    """``x * x`` assuming ``norm(x) == 1`` — 2 base mults instead of 3.

    For unitary ``x = a + bu``: ``beta*b^2 = a^2 - 1``, so the square is
    ``(2a^2 - 1) + 2ab*u``.  Exact (the same field element
    :meth:`QuadraticElement.square` returns) whenever the norm really is
    one; callers are responsible for that invariant, which holds for
    every element produced by the pairing's final exponentiation.
    """
    p = x.field.p
    return QuadraticElement(
        x.field, (2 * x.a * x.a - 1) % p, 2 * x.a * x.b % p
    )


def unitary_exp(
    base: QuadraticElement, exponent: int, width: int = 4
) -> QuadraticElement:
    """``base ** exponent`` for unitary ``base``, wNAF + cyclotomic squaring.

    The signed-digit (width-``w`` NAF) recoding halves the window table
    (odd positive digits only — negative digits conjugate for free) and
    the ~``bits`` loop squarings each cost 2 base-field multiplications
    instead of 3.  Negative exponents conjugate the base first.

    The ladder itself runs in the field's arithmetic backend
    (:meth:`repro.math.backend.base.FieldBackend.unitary_exp`) on raw
    coefficients: the python backend executes the identical integer
    steps this function used to perform on ``QuadraticElement`` objects,
    the Montgomery backend runs the same ladder in its ``R = 2^k``
    domain, and both return exactly the element the naive
    square-and-multiply would.
    """
    if width < 2 or width > 8:
        raise ParameterError("wNAF width must be in 2..8")
    field = base.field
    a, b = field.backend.unitary_exp(
        base.a, base.b, exponent, field.beta, width
    )
    return QuadraticElement(field, a, b)


class GTFixedBaseTable:
    """Windowed powers of one fixed unitary element, for repeated ``g^k``.

    The GT analog of :class:`repro.ec.precompute.FixedBaseTable`: stores
    ``g^(d * 2^(j*w))`` for every window index ``j`` and digit
    ``d in 1..2^w - 1``, so an exponentiation reads one entry per
    ``w``-bit window and performs only multiplications — **zero
    squarings**.  A sender encrypting many messages to one
    ``(receiver, T)`` pair builds the table once; every later
    ``g^r`` costs ~``bits/w`` Fp2 multiplications.

    Parameters mirror the EC table: ``bits`` is the capacity (scalars
    reduced mod the group order fit in ``order.bit_length()`` bits;
    larger exponents fall back to :func:`unitary_exp`), ``width`` the
    window size (memory is ``(2^w - 1) * ceil(bits/w)`` Fp2 elements).
    Negative exponents conjugate the (unitary) result for free.
    """

    __slots__ = ("base", "field", "width", "bits", "windows", "_rows")

    def __init__(self, base: QuadraticElement, bits: int, width: int = 4):
        if not 1 <= width <= 8:
            raise ParameterError("window width must be in 1..8")
        if bits < 1:
            raise ParameterError("table capacity must be at least one bit")
        if not (base * base.conjugate()).is_one():
            raise ParameterError(
                "GT fixed-base tables require a unitary element (norm 1)"
            )
        self.base = base
        self.field = base.field
        self.width = width
        self.bits = bits
        self.windows = (bits + width - 1) // width
        size = 1 << width
        rows: list[list[QuadraticElement]] = []
        window_base = base
        for _ in range(self.windows):
            entry = window_base
            row = [entry]
            for _ in range(size - 2):
                entry = entry * window_base
                row.append(entry)
            rows.append(row)
            for _ in range(width):
                window_base = cyclotomic_square(window_base)
        self._rows = rows

    @property
    def table_elements(self) -> int:
        """Stored Fp2 elements (memory ~= 2 base-field ints each)."""
        return sum(len(row) for row in self._rows)

    def exp(self, exponent: int) -> QuadraticElement:
        """``base ** exponent``, identical to the direct exponentiation."""
        if exponent == 0:
            return self.field.one()
        negate = exponent < 0
        if negate:
            exponent = -exponent
        if exponent.bit_length() > self.bits:
            result = unitary_exp(self.base, exponent)
            return result.conjugate() if negate else result
        mask = (1 << self.width) - 1
        result = None
        for window_index in range(self.windows):
            digit = (exponent >> (window_index * self.width)) & mask
            if not digit:
                continue
            entry = self._rows[window_index][digit - 1]
            result = entry if result is None else result * entry
        if result is None:  # pragma: no cover - exponent != 0 above
            result = self.field.one()
        return result.conjugate() if negate else result

    def __repr__(self) -> str:
        return (
            f"GTFixedBaseTable(bits={self.bits}, width={self.width}, "
            f"elements={self.table_elements})"
        )
