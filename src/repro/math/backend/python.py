"""The pure-python reference backend.

Exactly the arithmetic the library shipped before the backend layer
existed: native big-int ``%`` everywhere, extended-Euclid inversion, the
inline Miller-loop and unitary-exponentiation integer loops (now the
generic :class:`~repro.math.backend.base.FieldBackend` bodies with the
identity lift).  It is the portability and auditability baseline — every
other backend is property-tested byte-identical against it.
"""

from __future__ import annotations

from repro.math.backend.base import FieldBackend
from repro.math.modular import inverse_mod


class PythonBackend(FieldBackend):
    """Native-int arithmetic; the behavioral reference for all backends."""

    name = "python"
    prefers_recorded_miller = False

    def fp_mul(self, x: int, y: int) -> int:
        return x * y % self.p

    def fp_sqr(self, x: int) -> int:
        return x * x % self.p

    def fp_inv(self, x: int) -> int:
        # The seed library's inversion: extended Euclid, with its
        # ParameterError on non-invertible input preserved verbatim.
        return inverse_mod(x, self.p)
