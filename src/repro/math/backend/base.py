"""The narrow field-arithmetic interface every backend implements.

A :class:`FieldBackend` is bound to one prime modulus ``p`` and exposes

* scalar ``Fp`` operations (add/sub/mul/sqr/inv/pow) on canonical
  integers in ``[0, p)``,
* batch inversion (the Montgomery trick: ``n`` inverses for the price
  of one plus ``3(n-1)`` multiplications),
* ``Fp2 = Fp[u]/(u^2 - beta)`` operations on coefficient pairs, and
* the three pairing hot-loop kernels — line-sequence evaluation, the
  shared-squaring multi-pairing product, and unitary (cyclotomic)
  exponentiation — that dominate every pairing's wall clock.

Backends trade representation for speed *inside* kernels only.  At the
object layer (``FieldElement``, ``QuadraticElement``, ``CurvePoint``)
every value is a canonical integer in ``[0, p)`` regardless of backend,
so wire formats, hashes and test vectors are byte-identical across
backends by construction; a backend that uses an internal domain (the
Montgomery backend's ``R = 2^k`` residues) converts at kernel entry and
exit, amortizing the conversions over the whole loop.

The base class implements every kernel generically over the integer
type returned by :meth:`FieldBackend.lift` — the pure-python backend
lifts to native ``int`` (making the base loops exactly the code that
previously lived inline in ``repro.pairing.miller`` and
``repro.math.quadratic``), the gmpy2 backend lifts to ``mpz``.  Only
:meth:`fp_inv` is abstract.
"""

from __future__ import annotations

from repro.errors import ParameterError

# Line-step kinds, shared with repro.pairing.miller (kept numerically
# identical; miller.py re-exports them as _LINE/_VERT/_ONE).
LINE = 0   # chord/tangent: (s_y - yv) - (s_x - xv) * slope
VERT = 1   # vertical:      s_x - xv
ONE = 2    # line through infinity: constant 1


class FieldBackend:
    """Arithmetic provider for one prime modulus.

    Subclasses set :attr:`name` and implement :meth:`fp_inv`; everything
    else has a generic implementation they may override for speed.
    :attr:`prefers_recorded_miller` tells the Tate engine whether a
    one-shot pairing should record the Miller-loop line sequence
    (Jacobian chain + batch inversion — no per-step ``egcd``) instead of
    running the per-step affine loop.
    """

    name = "abstract"
    prefers_recorded_miller = False

    def __init__(self, p: int):
        # Deliberately permissive: PrimeField(n, check_prime=False) on a
        # composite modulus is a supported construction (ops mod n, with
        # inverses defined only for coprime elements); backends that
        # genuinely need more (Montgomery: odd p) tighten this themselves.
        if p < 2:
            raise ParameterError("field backends require a modulus >= 2")
        self.p = p
        self._p_lifted = self.lift(p)

    # ------------------------------------------------------------------
    # Integer lifting.
    # ------------------------------------------------------------------

    def lift(self, x: int):
        """Coerce an int into the backend's preferred integer type."""
        return x

    # ------------------------------------------------------------------
    # Fp scalar operations (canonical ints in [0, p)).
    # ------------------------------------------------------------------

    def fp_add(self, x: int, y: int) -> int:
        return (x + y) % self.p

    def fp_sub(self, x: int, y: int) -> int:
        return (x - y) % self.p

    def fp_mul(self, x: int, y: int) -> int:
        return int(self.lift(x) * y % self.p)

    def fp_sqr(self, x: int) -> int:
        x = self.lift(x)
        return int(x * x % self.p)

    def fp_pow(self, x: int, exponent: int) -> int:
        return pow(x, exponent, self.p)

    def fp_inv(self, x: int) -> int:
        raise NotImplementedError

    def fp_batch_inv(self, values) -> list[int]:
        """Invert every value with ONE field inversion (Montgomery trick).

        Raises :class:`~repro.errors.ParameterError` via :meth:`fp_inv`
        if any value is zero (the prefix product is then zero).  Returns
        canonical ints, same order as the input.
        """
        values = [self.lift(v) for v in values]
        if not values:
            return []
        p = self._p_lifted
        prefix = [0] * len(values)
        acc = self.lift(1)
        for index, value in enumerate(values):
            prefix[index] = acc
            acc = acc * value % p
        inv = self.lift(self.fp_inv(int(acc)))
        out = [0] * len(values)
        for index in range(len(values) - 1, -1, -1):
            out[index] = int(inv * prefix[index] % p)
            inv = inv * values[index] % p
        return out

    # ------------------------------------------------------------------
    # Fp2 operations on coefficient pairs (a + b*u, u^2 = beta).
    # ------------------------------------------------------------------

    def fp2_mul(self, ar: int, ai: int, br: int, bi: int, beta: int):
        """Karatsuba ``(ar + ai*u)(br + bi*u)`` — 3 mults, lazy sums."""
        p = self._p_lifted
        ar, ai = self.lift(ar), self.lift(ai)
        ac = ar * br
        bd = ai * bi
        cross = (ar + ai) * (br + bi) - ac - bd
        return int((ac + beta * bd) % p), int(cross % p)

    def fp2_sqr(self, ar: int, ai: int, beta: int):
        p = self._p_lifted
        ar, ai = self.lift(ar), self.lift(ai)
        a2 = ar * ar
        b2 = ai * ai
        return int((a2 + beta * b2) % p), int(2 * ar * ai % p)

    def fp2_inv(self, ar: int, ai: int, beta: int):
        """Inverse via the norm: ``(a - bu) / (a^2 - beta*b^2)``."""
        p = self.p
        norm = (ar * ar - beta * ai * ai) % p
        if norm == 0:
            raise ParameterError("zero has no inverse in Fp2")
        inv_norm = self.fp_inv(norm)
        return int(ar * inv_norm % p), int(-ai * inv_norm % p)

    # ------------------------------------------------------------------
    # Miller-loop kernels.  ``steps`` are the canonical
    # (is_add, kind, xv, yv, slope) tuples recorded by
    # repro.pairing.miller; convert_steps may re-represent them once per
    # (lines, backend) pair — the result is cached by PrecomputedLines.
    # ------------------------------------------------------------------

    def convert_steps(self, steps: tuple) -> tuple:
        return steps

    def convert_coords(self, sxa: int, sxb: int, sya: int, syb: int):
        """Lift one evaluation point's coefficients for the kernels."""
        return (self.lift(sxa), self.lift(sxb), self.lift(sya), self.lift(syb))

    def eval_line_sequence(self, steps, sxa, sxb, sya, syb, beta):
        """Accumulate ``Π line_i(S)`` with one Fp2 square per doubling.

        ``steps`` must come from :meth:`convert_steps`; the coordinates
        from :meth:`convert_coords`.  Returns canonical ``(a, b)`` ints.
        This loop is the former ``evaluate_line_sequence`` integer body,
        verbatim — the python backend runs exactly the seed code path.
        """
        p = self._p_lifted
        fa, fb = self.lift(1), self.lift(0)
        for is_add, kind, xv, yv, slope in steps:
            if not is_add:
                a2 = fa * fa
                b2 = fb * fb
                fa, fb = (a2 + beta * b2) % p, 2 * fa * fb % p
            if kind == LINE:
                va = (sya - yv - (sxa - xv) * slope) % p
                # Family A distorts to a purely-real x, so the line
                # value's ``u`` coefficient is the constant ``syb``.
                vb = (syb - sxb * slope) % p if sxb else syb
            elif kind == VERT:
                va = (sxa - xv) % p
                vb = sxb
            else:
                continue
            if vb:
                ac = fa * va
                bd = fb * vb
                fa, fb = (
                    (ac + beta * bd) % p,
                    ((fa + fb) * (va + vb) - ac - bd) % p,
                )
            else:
                fa, fb = fa * va % p, fb * va % p
        return int(fa), int(fb)

    def eval_line_sequences_product(self, tasks, beta):
        """``Π f_i(S_i)^{±1}`` with ONE shared squaring chain.

        ``tasks`` is a list of ``(steps, sxa, sxb, sya, syb, conjugate)``
        with steps/coords already converted; all step sequences must be
        aligned (same loop order — the caller checks).  Conjugation is
        a negated ``b`` coefficient, exactly as in the object layer.
        """
        p = self._p_lifted
        shared_steps = tasks[0][0]
        fa, fb = self.lift(1), self.lift(0)
        for index in range(len(shared_steps)):
            if not shared_steps[index][0]:  # is_add flag, shared by all
                a2 = fa * fa
                b2 = fb * fb
                fa, fb = (a2 + beta * b2) % p, 2 * fa * fb % p
            for steps, sxa, sxb, sya, syb, conjugate in tasks:
                _, kind, xv, yv, slope = steps[index]
                if kind == LINE:
                    va = (sya - yv - (sxa - xv) * slope) % p
                    vb = (syb - sxb * slope) % p if sxb else syb
                elif kind == VERT:
                    va = (sxa - xv) % p
                    vb = sxb
                else:
                    continue
                if conjugate:
                    vb = -vb % p
                if vb:
                    ac = fa * va
                    bd = fb * vb
                    fa, fb = (
                        (ac + beta * bd) % p,
                        ((fa + fb) * (va + vb) - ac - bd) % p,
                    )
                else:
                    fa, fb = fa * va % p, fb * va % p
        return int(fa), int(fb)

    # ------------------------------------------------------------------
    # Unitary (norm-1) exponentiation: wNAF + cyclotomic squaring.
    # ------------------------------------------------------------------

    def unitary_exp(self, a: int, b: int, exponent: int, beta: int,
                    width: int = 4):
        """``(a + bu) ** exponent`` for unitary ``a + bu``.

        The integer transcription of the former object-level
        ``repro.math.quadratic.unitary_exp`` ladder: width-``w`` NAF
        digits, free negative digits via conjugation, and cyclotomic
        squaring ``(2a^2 - 1, 2ab)``.  Same exact mod-``p`` arithmetic,
        so the result is bit-identical to the object path.
        """
        p = self._p_lifted
        beta = self.lift(beta)
        if exponent < 0:
            b = -b % p
            exponent = -exponent
        if exponent == 0:
            return 1, 0
        a, b = self.lift(a), self.lift(b)
        odd_powers = [(a, b)]
        if width > 2:
            sq_a, sq_b = (2 * a * a - 1) % p, 2 * a * b % p
            for _ in range((1 << (width - 2)) - 1):
                pa, pb = odd_powers[-1]
                ac = pa * sq_a
                bd = pb * sq_b
                odd_powers.append((
                    (ac + beta * bd) % p,
                    ((pa + pb) * (sq_a + sq_b) - ac - bd) % p,
                ))
        ra = rb = None
        for digit in reversed(_wnaf_digits_signed(exponent, width)):
            if ra is not None:
                ra, rb = (2 * ra * ra - 1) % p, 2 * ra * rb % p
            if digit:
                ea, eb = odd_powers[abs(digit) >> 1]
                if digit < 0:
                    eb = -eb % p
                if ra is None:
                    ra, rb = ea, eb
                else:
                    ac = ra * ea
                    bd = rb * eb
                    ra, rb = (
                        (ac + beta * bd) % p,
                        ((ra + rb) * (ea + eb) - ac - bd) % p,
                    )
        if ra is None:  # pragma: no cover - exponent != 0 above
            return 1, 0
        return int(ra), int(rb)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(p~2^{self.p.bit_length()})"


def _wnaf_digits_signed(exponent: int, width: int) -> list[int]:
    """Width-``w`` NAF of a non-negative exponent, LSB first (odd
    digits, ``|d| < 2^(w-1)``); the multiplicative twin of
    :func:`repro.ec.precompute.wnaf_digits`.  Lives here (not in
    ``repro.math.quadratic``) so the backend layer has no import edge
    back into the object layer.
    """
    digits = []
    modulus = 1 << width
    half = 1 << (width - 1)
    while exponent:
        if exponent & 1:
            digit = exponent & (modulus - 1)
            if digit >= half:
                digit -= modulus
            exponent -= digit
        else:
            digit = 0
        digits.append(digit)
        exponent >>= 1
    return digits
