"""Pluggable field-arithmetic backends.

Three implementations of the narrow
:class:`~repro.math.backend.base.FieldBackend` interface:

``"python"``
    The seed library's pure-python arithmetic, extracted behind the
    interface byte-identically.  Portability/auditability baseline.
``"montgomery"``
    Montgomery-form Fp (R = 2^k residues, CIOS-style REDC in pure
    python ints) with lazy-reduction Fp² kernels and batch-inversion
    Miller-loop recording.  Pure python, no dependencies.
``"gmpy2"``
    GMP-backed ``mpz`` arithmetic behind a soft import; raises
    :class:`~repro.errors.BackendUnavailableError` when requested
    explicitly but not installed.

``"auto"`` (the :class:`~repro.pairing.api.PairingGroup` default) probes
gmpy2 and falls back to the Montgomery backend — the fastest option
that is always present.

Backend instances are cached per ``(name, p)``: they are deterministic,
stateless-after-construction arithmetic providers, so sharing one across
every field object with the same modulus is safe.  The cache is cleared
in forked children purely as cache hygiene (entries are rebuilt on
demand and cannot diverge — construction is a pure function of the
public modulus).
"""

from __future__ import annotations

import os

from repro.errors import BackendUnavailableError, ParameterError
from repro.math.backend.base import FieldBackend
from repro.math.backend.gmp import Gmpy2Backend, gmpy2_available
from repro.math.backend.montgomery import MontgomeryBackend
from repro.math.backend.python import PythonBackend

__all__ = [
    "FieldBackend",
    "PythonBackend",
    "MontgomeryBackend",
    "Gmpy2Backend",
    "BACKEND_NAMES",
    "available_backends",
    "gmpy2_available",
    "resolve_backend_name",
    "get_backend",
]

# The selectable names, in documentation order.  Populated at import
# time and never mutated (read-only registry for the conc analyzer).
BACKEND_NAMES = ("python", "montgomery", "gmpy2")

_BACKEND_CLASSES = {
    "python": PythonBackend,
    "montgomery": MontgomeryBackend,
    "gmpy2": Gmpy2Backend,
}

# Per-(name, modulus) instance cache.  Cleared after fork (cache
# hygiene, same idiom as the worker group cache in repro.parallel).
_INSTANCES: dict[tuple[str, int], FieldBackend] = {}

if hasattr(os, "register_at_fork"):  # not available on all platforms
    os.register_at_fork(after_in_child=_INSTANCES.clear)


def available_backends() -> tuple[str, ...]:
    """The backend names usable in this environment."""
    return tuple(
        name for name in BACKEND_NAMES
        if name != "gmpy2" or gmpy2_available()
    )


def resolve_backend_name(name: str | None) -> str:
    """Map a user-facing selector (including ``None``/``"auto"``) to a
    concrete backend name.

    ``None`` and ``"auto"`` probe gmpy2 and fall back to Montgomery.
    An explicit unavailable name raises
    :class:`~repro.errors.BackendUnavailableError`; an unknown name
    raises :class:`~repro.errors.ParameterError`.
    """
    if name is None or name == "auto":
        return "gmpy2" if gmpy2_available() else "montgomery"
    if name not in _BACKEND_CLASSES:
        raise ParameterError(
            f"unknown field backend {name!r}; known: "
            f"{', '.join(BACKEND_NAMES)} (or 'auto')"
        )
    if name == "gmpy2" and not gmpy2_available():
        raise BackendUnavailableError(
            "backend 'gmpy2' requested but the gmpy2 module is not "
            "installed; use backend='auto' to fall back automatically"
        )
    return name


def get_backend(name: str | FieldBackend | None, p: int) -> FieldBackend:
    """The (cached) backend instance for ``name`` over modulus ``p``.

    ``name`` may be a selector string (``"python"``, ``"montgomery"``,
    ``"gmpy2"``, ``"auto"``/``None``) or an already-constructed
    :class:`FieldBackend`, which is returned as-is when its modulus
    matches.
    """
    if isinstance(name, FieldBackend):
        if name.p != p:
            raise ParameterError(
                "backend instance is bound to a different modulus"
            )
        return name
    resolved = resolve_backend_name(name)
    key = (resolved, p)
    backend = _INSTANCES.get(key)
    if backend is None:
        backend = _BACKEND_CLASSES[resolved](p)
        _INSTANCES[key] = backend
    return backend
