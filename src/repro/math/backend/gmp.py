"""Optional gmpy2 backend behind a soft import.

When `gmpy2 <https://pypi.org/project/gmpy2/>`_ is installed, its
GMP-backed ``mpz`` integers replace native ints inside the kernels:
``lift`` wraps operands once at kernel entry (line-sequence steps are
converted once and cached), after which every ``*`` and ``%`` in the
generic base-class loops dispatches to GMP.  Inversion uses
``gmpy2.invert`` and modular powers use ``gmpy2.powmod``.

When gmpy2 is missing this module still imports cleanly —
:func:`gmpy2_available` reports ``False``, the ``"auto"`` selector falls
back to the Montgomery backend, and an *explicit* ``backend="gmpy2"``
request raises :class:`~repro.errors.BackendUnavailableError`.  Nothing
is ever installed on the user's behalf.

All kernel results are coerced back to canonical python ints so the
object layer (and every serialization) never sees an ``mpz``.
"""

from __future__ import annotations

from repro.errors import BackendUnavailableError, ParameterError
from repro.math.backend.base import FieldBackend

try:  # soft dependency: absence must not break import
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - exercised on gmpy2-free CI legs
    _gmpy2 = None


def gmpy2_available() -> bool:
    """Whether the optional gmpy2 module is importable here."""
    return _gmpy2 is not None


class Gmpy2Backend(FieldBackend):
    """GMP-accelerated arithmetic via ``gmpy2.mpz`` lifting."""

    name = "gmpy2"
    # Recording (batch-inverse) beats the per-step egcd loop under GMP
    # too: gmpy2.invert is faster than pure-python egcd, but one batch
    # inversion is still faster than hundreds of invert calls.
    prefers_recorded_miller = True

    def __init__(self, p: int):
        if _gmpy2 is None:
            raise BackendUnavailableError(
                "backend 'gmpy2' requested but the gmpy2 module is not "
                "installed; use backend='auto' to fall back automatically"
            )
        super().__init__(p)

    def lift(self, x: int):
        return _gmpy2.mpz(x)

    def fp_mul(self, x: int, y: int) -> int:
        return int(self.lift(x) * y % self._p_lifted)

    def fp_pow(self, x: int, exponent: int) -> int:
        return int(_gmpy2.powmod(x, exponent, self._p_lifted))

    def fp_inv(self, x: int) -> int:
        x %= self.p
        if x == 0:
            raise ParameterError("0 has no inverse")
        try:
            return int(_gmpy2.invert(x, self._p_lifted))
        except ZeroDivisionError as exc:  # non-coprime under composite p
            raise ParameterError(
                f"{x} is not invertible modulo {self.p}"
            ) from exc

    def convert_steps(self, steps: tuple) -> tuple:
        lift = self.lift
        return tuple(
            (is_add, kind, lift(xv), lift(yv), lift(slope))
            for is_add, kind, xv, yv, slope in steps
        )
