"""Montgomery-form Fp backend with lazy-reduction Fp² kernels.

Values inside the kernels live in the Montgomery domain: ``x`` is
represented by ``x·R mod p`` with ``R = 2^k``.  One REDC (a masked
multiply, a shift, at most one conditional subtraction — no division by
``p``) replaces every ``% p`` after a product, and additions/negations
stay in-domain for free.  Conversion happens only at kernel entry/exit
(steps are converted once per line sequence and cached), so the object
layer — and therefore every wire format and test vector — still sees
canonical integers.

Two deliberate choices, both measured on the seed hardware:

* **Headroom, not tightness.**  ``k = bits(p) + 3`` gives ``R ≥ 8p``,
  so the lazy-reduction Fp² sums (Karatsuba cross terms offset by
  ``2p²`` to stay non-negative) still satisfy ``T < R·p`` and REDC needs
  only the single conditional subtraction.  An Fp² multiply is then 3
  big-int products and exactly 2 REDCs — the reductions the schoolbook
  form would spend on ``ac`` and ``bd`` individually are *deferred
  across the accumulator sum*, which is where this backend beats the
  eager-``%`` path inside ``evaluate_line_sequences_product``.

* **Inversion is the enemy, not multiplication.**  On CPython a single
  Montgomery multiply is *not* faster than the builtin ``a*b % p`` (the
  interpreter dispatch dominates at these operand sizes); what is slow
  is the per-step ``egcd`` slope inversion of the affine Miller loop —
  ~70% of a cold ss512 pairing.  This backend therefore sets
  ``prefers_recorded_miller``: the Tate engine records the line
  sequence via a Jacobian double/add chain plus TWO batch inversions
  (:meth:`~repro.math.backend.base.FieldBackend.fp_batch_inv`) and
  evaluates it with the Montgomery kernels.  That is where the measured
  ≥ 1.5x on a full pairing comes from.

The ``beta == -1`` fast paths (family A: the square is
``((a+b)(a-b), 2ab)``) fall back to the generic base-class kernels for
any other ``beta``, so family B stays correct, just unaccelerated.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.math.backend.base import LINE, VERT, FieldBackend, _wnaf_digits_signed


class MontgomeryBackend(FieldBackend):
    """CIOS-style Montgomery REDC over pure python ints."""

    name = "montgomery"
    prefers_recorded_miller = True

    def __init__(self, p: int):
        super().__init__(p)
        if p % 2 == 0:
            raise ParameterError(
                "the montgomery backend requires an odd modulus"
            )
        # R = 2^k with three bits of headroom: lazy Fp² accumulations
        # reach ~6p² < R·p, keeping REDC single-subtraction.
        self.k = p.bit_length() + 3
        self.R = 1 << self.k
        self.mask = self.R - 1
        # -p^{-1} mod R: the REDC folding constant.  Derived from the
        # public modulus only — nothing here is secret material.
        self.np = (-pow(p, -1, self.R)) & self.mask
        self.r1 = self.R % p          # 1 in the Montgomery domain
        self.r2 = self.R * self.R % p  # conversion factor: to_mont(x) = redc(x*r2)
        self.p2 = p * p               # lazy-sum offsets keep terms >= 0
        self.p2_2 = 2 * self.p2

    # ------------------------------------------------------------------
    # Domain plumbing.
    # ------------------------------------------------------------------

    def redc(self, t: int) -> int:
        """Montgomery reduction: ``t·R^{-1} mod p`` for ``0 <= t < R·p``."""
        p = self.p
        m = ((t & self.mask) * self.np) & self.mask
        t = (t + m * p) >> self.k
        return t - p if t >= p else t

    def to_mont(self, x: int) -> int:
        return self.redc(x * self.r2)

    def from_mont(self, x: int) -> int:
        return self.redc(x)

    # ------------------------------------------------------------------
    # Fp scalar operations (canonical in, canonical out; the Montgomery
    # domain never leaks past a method boundary).
    # ------------------------------------------------------------------

    def fp_mul(self, x: int, y: int) -> int:
        # One conversion each way wraps a single REDC multiply; scalar
        # one-off products stay correct, bulk work goes through the
        # kernels where conversion amortizes.
        return self.redc(self.redc(self.to_mont(x) * self.to_mont(y)))

    def fp_sqr(self, x: int) -> int:
        xm = self.to_mont(x)
        return self.redc(self.redc(xm * xm))

    def fp_inv(self, x: int) -> int:
        x %= self.p
        if x == 0:
            raise ParameterError("0 has no inverse")
        # CPython's pow(x, -1, p) is ~2.3x faster than the pure-python
        # extended Euclid at 512 bits, with identical output.
        try:
            return pow(x, -1, self.p)
        except ValueError as exc:
            raise ParameterError(
                f"{x} is not invertible modulo {self.p}"
            ) from exc

    # ------------------------------------------------------------------
    # Kernel-side step/coordinate conversion (cached by the caller).
    # ------------------------------------------------------------------

    def convert_steps(self, steps: tuple) -> tuple:
        to_m = self.to_mont
        return tuple(
            (is_add, kind, to_m(xv), to_m(yv), to_m(slope))
            for is_add, kind, xv, yv, slope in steps
        )

    def convert_coords(self, sxa, sxb, sya, syb):
        to_m = self.to_mont
        return (to_m(sxa), to_m(sxb), to_m(sya), to_m(syb))

    # ------------------------------------------------------------------
    # Fp2 coefficient ops — beta == -1 (family A) fast paths.
    # ------------------------------------------------------------------

    def _is_minus_one(self, beta: int) -> bool:
        return beta % self.p == self.p - 1

    def fp2_mul(self, ar, ai, br, bi, beta):
        if not self._is_minus_one(beta):
            return super().fp2_mul(ar, ai, br, bi, beta)
        redc = self.redc
        am, bm = self.to_mont(ar), self.to_mont(ai)
        cm, dm = self.to_mont(br), self.to_mont(bi)
        ac = am * cm
        bd = bm * dm
        real = redc(ac - bd + self.p2)
        cross = redc((am + bm) * (cm + dm) - ac - bd + self.p2_2)
        return self.from_mont(real), self.from_mont(cross)

    def fp2_sqr(self, ar, ai, beta):
        if not self._is_minus_one(beta):
            return super().fp2_sqr(ar, ai, beta)
        redc = self.redc
        am, bm = self.to_mont(ar), self.to_mont(ai)
        real = redc((am + bm) * (am - bm + self.p))
        cross = redc(2 * am * bm)
        return self.from_mont(real), self.from_mont(cross)

    # ------------------------------------------------------------------
    # Miller kernels, beta == -1.  The loop invariants:
    #   * every named value (fa, fb, va, vb, xv, yv, slope, s-coords)
    #     is in the Montgomery domain and < p;
    #   * products are reduced by ONE redc; sums of products carry the
    #     +p2 / +2*p2 offsets so redc's input stays in [0, R*p).
    # ------------------------------------------------------------------

    def eval_line_sequence(self, steps, sxa, sxb, sya, syb, beta):
        if not self._is_minus_one(beta):
            return super().eval_line_sequence(steps, sxa, sxb, sya, syb, beta)
        p = self.p
        p2, p2_2 = self.p2, self.p2_2
        mask, np_, k = self.mask, self.np, self.k
        fa, fb = self.r1, 0
        for is_add, kind, xv, yv, slope in steps:
            if not is_add:
                # beta = -1 square: real = (a+b)(a-b), cross = 2ab.
                t = (fa + fb) * (fa - fb + p)
                m = ((t & mask) * np_) & mask
                t = (t + m * p) >> k
                ra = t - p if t >= p else t
                t = 2 * fa * fb
                m = ((t & mask) * np_) & mask
                t = (t + m * p) >> k
                fb = t - p if t >= p else t
                fa = ra
            if kind == LINE:
                t = (sxa - xv + p) * slope
                m = ((t & mask) * np_) & mask
                t = (t + m * p) >> k
                t = t - p if t >= p else t
                va = (sya - yv - t + 2 * p) % p
                if sxb:
                    t = sxb * slope
                    m = ((t & mask) * np_) & mask
                    t = (t + m * p) >> k
                    t = t - p if t >= p else t
                    vb = (syb - t + p) % p
                else:
                    vb = syb
            elif kind == VERT:
                va = (sxa - xv + p) % p
                vb = sxb
            else:
                continue
            if vb:
                ac = fa * va
                bd = fb * vb
                t = ac - bd + p2
                m = ((t & mask) * np_) & mask
                t = (t + m * p) >> k
                ra = t - p if t >= p else t
                t = (fa + fb) * (va + vb) - ac - bd + p2_2
                m = ((t & mask) * np_) & mask
                t = (t + m * p) >> k
                fb = t - p if t >= p else t
                fa = ra
            else:
                t = fa * va
                m = ((t & mask) * np_) & mask
                t = (t + m * p) >> k
                ra = t - p if t >= p else t
                t = fb * va
                m = ((t & mask) * np_) & mask
                t = (t + m * p) >> k
                fb = t - p if t >= p else t
                fa = ra
        return self.from_mont(fa), self.from_mont(fb)

    def eval_line_sequences_product(self, tasks, beta):
        if not self._is_minus_one(beta):
            return super().eval_line_sequences_product(tasks, beta)
        p = self.p
        p2, p2_2 = self.p2, self.p2_2
        redc = self.redc
        shared_steps = tasks[0][0]
        fa, fb = self.r1, 0
        for index in range(len(shared_steps)):
            if not shared_steps[index][0]:
                fa, fb = (
                    redc((fa + fb) * (fa - fb + p)),
                    redc(2 * fa * fb),
                )
            for steps, sxa, sxb, sya, syb, conjugate in tasks:
                _, kind, xv, yv, slope = steps[index]
                if kind == LINE:
                    va = (sya - yv - redc((sxa - xv + p) * slope) + 2 * p) % p
                    vb = (syb - redc(sxb * slope) + p) % p if sxb else syb
                elif kind == VERT:
                    va = (sxa - xv + p) % p
                    vb = sxb
                else:
                    continue
                if conjugate:
                    vb = p - vb if vb else 0
                if vb:
                    ac = fa * va
                    bd = fb * vb
                    fa, fb = (
                        redc(ac - bd + p2),
                        redc((fa + fb) * (va + vb) - ac - bd + p2_2),
                    )
                else:
                    fa, fb = redc(fa * va), redc(fb * va)
        return self.from_mont(fa), self.from_mont(fb)

    def unitary_exp(self, a, b, exponent, beta, width=4):
        if not self._is_minus_one(beta):
            return super().unitary_exp(a, b, exponent, beta, width)
        p = self.p
        p2, p2_2, r1 = self.p2, self.p2_2, self.r1
        redc = self.redc
        if exponent < 0:
            b = p - b if b else 0
            exponent = -exponent
        if exponent == 0:
            return 1, 0
        xa, xb = self.to_mont(a), self.to_mont(b)
        odd_powers = [(xa, xb)]
        if width > 2:
            # Cyclotomic square in-domain: mont(2a²-1) = redc(2·am²) - r1.
            sq_a = (redc(2 * xa * xa) - r1 + p) % p
            sq_b = redc(2 * xa * xb)
            for _ in range((1 << (width - 2)) - 1):
                pa, pb = odd_powers[-1]
                ac = pa * sq_a
                bd = pb * sq_b
                odd_powers.append((
                    redc(ac - bd + p2),
                    redc((pa + pb) * (sq_a + sq_b) - ac - bd + p2_2),
                ))
        ra = rb = None
        for digit in reversed(_wnaf_digits_signed(exponent, width)):
            if ra is not None:
                ra, rb = (redc(2 * ra * ra) - r1 + p) % p, redc(2 * ra * rb)
            if digit:
                ea, eb = odd_powers[abs(digit) >> 1]
                if digit < 0:
                    eb = p - eb if eb else 0
                if ra is None:
                    ra, rb = ea, eb
                else:
                    ac = ra * ea
                    bd = rb * eb
                    ra, rb = (
                        redc(ac - bd + p2),
                        redc((ra + rb) * (ea + eb) - ac - bd + p2_2),
                    )
        if ra is None:  # pragma: no cover - exponent != 0 above
            return 1, 0
        return self.from_mont(ra), self.from_mont(rb)
