"""The prime field ``Fp`` with an explicit field object.

A :class:`PrimeField` instance owns the modulus; :class:`FieldElement`
values carry a reference to their field and refuse to mix with elements of
a different field.  All arithmetic is constant-free pure Python on big
integers — clarity over micro-optimization, with the one concession that
elements are immutable and hashable so they can key dictionaries.
"""

from __future__ import annotations

from repro.encoding import byte_length, int_from_bytes, int_to_bytes
from repro.errors import EncodingError, FieldMismatchError, ParameterError
from repro.math.backend import FieldBackend, get_backend
from repro.math.modular import (
    cube_root_mod,
    is_quadratic_residue,
    sqrt_mod,
)
from repro.math.primes import is_probable_prime


class PrimeField:
    """The field of integers modulo a prime ``p``.

    ``backend`` selects the arithmetic provider for inversions, modular
    powers and the pairing kernels (see :mod:`repro.math.backend`): a
    name (``"python"``, ``"montgomery"``, ``"gmpy2"``, ``"auto"``), an
    existing :class:`~repro.math.backend.base.FieldBackend` instance, or
    ``None`` for the pure-python reference backend.  Elements are
    canonical integers in ``[0, p)`` under every backend, so two fields
    over the same modulus compare (and interoperate) equal regardless of
    backend.
    """

    __slots__ = ("p", "element_bytes", "backend")

    def __init__(self, p: int, check_prime: bool = True,
                 backend: "str | FieldBackend | None" = None):
        if check_prime and not is_probable_prime(p):
            raise ParameterError(f"field modulus {p} is not prime")
        self.p = p
        self.element_bytes = byte_length(p)
        self.backend = get_backend("python" if backend is None else backend, p)

    def __call__(self, value: int) -> "FieldElement":
        return FieldElement(self, value % self.p)

    def zero(self) -> "FieldElement":
        return FieldElement(self, 0)

    def one(self) -> "FieldElement":
        return FieldElement(self, 1)

    def from_bytes(self, data: bytes) -> "FieldElement":
        if len(data) != self.element_bytes:
            raise EncodingError(
                f"expected {self.element_bytes} bytes, got {len(data)}"
            )
        value = int_from_bytes(data)
        if value >= self.p:
            raise EncodingError("encoded value exceeds field modulus")
        return FieldElement(self, value)

    def random(self, rng) -> "FieldElement":
        """A uniformly random field element drawn from ``rng``."""
        return FieldElement(self, rng.randrange(self.p))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    def __repr__(self) -> str:
        return (
            f"PrimeField(p~2^{self.p.bit_length()}, "
            f"backend={self.backend.name})"
        )


class FieldElement:
    """An immutable element of a :class:`PrimeField`."""

    __slots__ = ("field", "value")

    def __init__(self, field: PrimeField, value: int):
        self.field = field
        self.value = value

    def _coerce(self, other) -> "FieldElement":
        if isinstance(other, FieldElement):
            if other.field != self.field:
                raise FieldMismatchError("elements belong to different fields")
            return other
        if isinstance(other, int):
            return FieldElement(self.field, other % self.field.p)
        return NotImplemented

    def __add__(self, other) -> "FieldElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, (self.value + other.value) % self.field.p)

    __radd__ = __add__

    def __sub__(self, other) -> "FieldElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, (self.value - other.value) % self.field.p)

    def __rsub__(self, other) -> "FieldElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other - self

    def __mul__(self, other) -> "FieldElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value * other.value % self.field.p)

    __rmul__ = __mul__

    def __neg__(self) -> "FieldElement":
        return FieldElement(self.field, -self.value % self.field.p)

    def __truediv__(self, other) -> "FieldElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self * other.inverse()

    def __rtruediv__(self, other) -> "FieldElement":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other * self.inverse()

    def __pow__(self, exponent: int) -> "FieldElement":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return FieldElement(
            self.field, self.field.backend.fp_pow(self.value, exponent)
        )

    def inverse(self) -> "FieldElement":
        return FieldElement(self.field, self.field.backend.fp_inv(self.value))

    def square(self) -> "FieldElement":
        return FieldElement(self.field, self.value * self.value % self.field.p)

    def is_zero(self) -> bool:
        return self.value == 0

    def is_square(self) -> bool:
        return self.value == 0 or is_quadratic_residue(self.value, self.field.p)

    def sqrt(self) -> "FieldElement":
        return FieldElement(self.field, sqrt_mod(self.value, self.field.p))

    def cube_root(self) -> "FieldElement":
        return FieldElement(self.field, cube_root_mod(self.value, self.field.p))

    def to_bytes(self) -> bytes:
        return int_to_bytes(self.value, self.field.element_bytes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.value == other % self.field.p
        return (
            isinstance(other, FieldElement)
            and other.field == self.field
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.value))

    def __repr__(self) -> str:
        return f"Fp({self.value})"
