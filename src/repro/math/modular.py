"""Modular arithmetic primitives on plain Python integers.

These functions operate on raw ``int`` values so they can be used both by
the field classes and by code (parameter generation, RSA-style baselines)
that works outside a fixed field.
"""

from __future__ import annotations

from repro.errors import ParameterError


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
        old_y, y = y, old_y - quotient * y
    return old_r, old_x, old_y


def inverse_mod(a: int, modulus: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``modulus``.

    Raises :class:`ParameterError` when ``a`` is not invertible.
    """
    a %= modulus
    if a == 0:
        raise ParameterError("0 has no inverse")
    g, x, _ = egcd(a, modulus)
    if g != 1:
        raise ParameterError(f"{a} is not invertible modulo {modulus} (gcd={g})")
    return x % modulus


def jacobi_symbol(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd positive ``n``."""
    if n <= 0 or n % 2 == 0:
        raise ParameterError("jacobi symbol requires odd positive n")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def is_quadratic_residue(a: int, p: int) -> bool:
    """True when ``a`` is a nonzero square modulo the odd prime ``p``."""
    a %= p
    if a == 0:
        return False
    return pow(a, (p - 1) // 2, p) == 1


def sqrt_mod(a: int, p: int) -> int:
    """A square root of ``a`` modulo the odd prime ``p``.

    Uses the fast exponentiation shortcut for ``p % 4 == 3`` and
    Tonelli–Shanks otherwise.  Raises :class:`ParameterError` when ``a`` is
    a non-residue.  The returned root is canonicalized to the smaller of
    the pair ``{r, p - r}`` so results are deterministic.
    """
    a %= p
    if a == 0:
        return 0
    if not is_quadratic_residue(a, p):
        raise ParameterError(f"{a} is not a quadratic residue mod p")
    if p % 4 == 3:
        root = pow(a, (p + 1) // 4, p)
        return min(root, p - root)
    # Tonelli-Shanks for p % 4 == 1.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while is_quadratic_residue(z, p):
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    root = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i in (0, m) with t^(2^i) == 1.
        i, probe = 0, t
        while probe != 1:
            probe = probe * probe % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        root = root * b % p
    return min(root, p - root)


def cube_root_mod(a: int, p: int) -> int:
    """The unique cube root of ``a`` modulo a prime ``p`` with ``p % 3 == 2``.

    When ``gcd(3, p - 1) == 1`` cubing is a bijection on ``Z_p`` and the
    inverse map is exponentiation by ``(2p - 1) / 3``.
    """
    if p % 3 != 2:
        raise ParameterError("unique cube roots need p % 3 == 2")
    return pow(a % p, (2 * p - 1) // 3, p)


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Solve ``x ≡ r1 (mod m1)``, ``x ≡ r2 (mod m2)`` for coprime moduli."""
    g, u, _ = egcd(m1, m2)
    if g != 1:
        raise ParameterError("crt_pair requires coprime moduli")
    return (r1 + (r2 - r1) * u % m2 * m1) % (m1 * m2)
