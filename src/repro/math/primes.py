"""Primality testing and prime generation.

Used by the RSA-style time-lock puzzle baseline and by the (offline)
pairing parameter generator.  Miller–Rabin here is deterministic for the
test vectors we care about because it always starts with the small-base
set that is provably sufficient below 3.3 * 10^24, then adds random bases
for larger inputs.
"""

from __future__ import annotations

import random
import secrets

# Bases that make Miller-Rabin deterministic for n < 3,317,044,064,679,887,385,961,981.
_DETERMINISTIC_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251,
)


def _miller_rabin_witness(n: int, base: int, d: int, r: int) -> bool:
    """True when ``base`` witnesses that ``n`` is composite."""
    x = pow(base, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rounds: int = 32, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test.

    Deterministic (and exact) for ``n`` below ~3.3e24; probabilistic with
    ``rounds`` random bases above that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for base in _DETERMINISTIC_BASES:
        if _miller_rabin_witness(n, base, d, r):
            return False
    if n < _DETERMINISTIC_LIMIT:
        return True
    # Default to the CSPRNG: with Mersenne-Twister bases an adversary who
    # predicts the state could hand us composites that pass every round.
    rng = rng or secrets.SystemRandom()
    for _ in range(rounds):
        base = rng.randrange(2, n - 1)
        if _miller_rabin_witness(n, base, d, r):
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """A random prime of exactly ``bits`` bits."""
    if bits < 2:
        raise ValueError("primes need at least 2 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def random_safe_prime(bits: int, rng: random.Random) -> int:
    """A random safe prime ``p`` (``(p - 1) / 2`` also prime) of ``bits`` bits.

    Only used at small-to-moderate sizes (tests and the RSA baseline), where
    the rejection loop terminates quickly.
    """
    while True:
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p, rng=rng):
            return p


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate
