"""Number-theoretic and finite-field substrate.

This package provides everything the elliptic-curve and pairing layers
need: modular arithmetic (:mod:`repro.math.modular`), primality testing and
prime generation (:mod:`repro.math.primes`), the prime field ``Fp``
(:mod:`repro.math.field`) and its quadratic extension ``Fp2``
(:mod:`repro.math.quadratic`).
"""

from repro.math.field import PrimeField, FieldElement
from repro.math.quadratic import QuadraticField, QuadraticElement

__all__ = [
    "PrimeField",
    "FieldElement",
    "QuadraticField",
    "QuadraticElement",
]
