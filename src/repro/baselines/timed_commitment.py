"""Timed commitments and timed-release signatures (§2.1, refs [6] and [12]).

Boneh–Naor timed commitments: the committer can open instantly; if it
refuses, anyone can *force* the commitment open with ``t`` sequential
squarings.  Garay–Jakobsson timed-release signatures build on them: a
standard signature is timed-committed, so the signature "releases
itself" after the forced-opening work even if the signer walks away.

Both inherit every §2.1 limitation TRE fixes — the clock starts at
forced-opening time, runs at the opener's CPU speed, and costs real
compute — which is why they appear here as baselines (benchmarked with
E3's machinery).

Substitution note (DESIGN.md): the original protocols include
zero-knowledge proofs that the committed value has the right structure
(the halving-chain proofs of [6]).  We implement the *functionality*
(commit / open / force-open / verify) with honest-committer structure
checks at open time, which preserves the cost model the comparison
needs: instant open with cooperation, ``t`` squarings without.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.bls import BLSSignatureScheme
from repro.core.keys import ServerKeyPair, ServerPublicKey
from repro.crypto.authenc import aead_decrypt, aead_encrypt
from repro.crypto.kdf import derive_key
from repro.ec.point import CurvePoint
from repro.errors import DecryptionError, ParameterError
from repro.math.primes import random_prime
from repro.pairing.api import PairingGroup
from repro.pairing.hashing import hash_bytes

_KEY_LABEL = "repro:timed-commit:key"
_BIND_TAG = "repro:timed-commit:bind"


@dataclass(frozen=True)
class TimedCommitment:
    """Public commitment: forced opening takes ``squarings`` steps."""

    modulus: int
    base: int
    squarings: int
    sealed: bytes
    binding: bytes  # H(u) — links openings to the committed pad


@dataclass(frozen=True)
class CommitmentOpening:
    """The committer's fast opening: the pad ``u = h^(2^t) mod n``."""

    u_value: int


class TimedCommitmentScheme:
    """Commit now; open instantly with cooperation, in time ``t`` without."""

    def __init__(self, modulus_bits: int = 512):
        if modulus_bits < 32:
            raise ParameterError("modulus too small to be meaningful")
        self.modulus_bits = modulus_bits

    def commit(
        self, message: bytes, squarings: int, rng: random.Random
    ) -> tuple[TimedCommitment, CommitmentOpening]:
        """Create the commitment and keep the fast opening.

        The committer computes ``u = h^(2^t) mod n`` cheaply via
        ``φ(n)``; everyone else must do the ``t`` squarings.
        """
        if squarings < 1:
            raise ParameterError("need at least one squaring")
        half = self.modulus_bits // 2
        p = random_prime(half, rng)
        q = random_prime(self.modulus_bits - half, rng)
        while q == p:
            q = random_prime(self.modulus_bits - half, rng)
        n = p * q
        phi = (p - 1) * (q - 1)
        h = rng.randrange(2, n - 1)
        u = pow(h, pow(2, squarings, phi), n)
        u_bytes = u.to_bytes((n.bit_length() + 7) // 8, "big")
        key = derive_key(u_bytes, 32, _KEY_LABEL)
        sealed = aead_encrypt(key, b"commit", message)
        binding = hash_bytes(u_bytes, tag=_BIND_TAG)[:32]
        return (
            TimedCommitment(n, h, squarings, sealed, binding),
            CommitmentOpening(u),
        )

    def _open_with_pad(self, commitment: TimedCommitment, u: int) -> bytes:
        u_bytes = u.to_bytes((commitment.modulus.bit_length() + 7) // 8, "big")
        if hash_bytes(u_bytes, tag=_BIND_TAG)[:32] != commitment.binding:
            raise DecryptionError("opening pad does not match the commitment")
        key = derive_key(u_bytes, 32, _KEY_LABEL)
        return aead_decrypt(key, b"commit", commitment.sealed)

    def open(
        self, commitment: TimedCommitment, opening: CommitmentOpening
    ) -> bytes:
        """The cooperative path: instant."""
        return self._open_with_pad(commitment, opening.u_value)

    def force_open(self, commitment: TimedCommitment) -> bytes:
        """The unilateral path: ``t`` sequential squarings."""
        u = commitment.base % commitment.modulus
        for _ in range(commitment.squarings):
            u = u * u % commitment.modulus
        return self._open_with_pad(commitment, u)


@dataclass(frozen=True)
class TimedSignature:
    """A BLS signature locked behind a timed commitment."""

    message: bytes
    commitment: TimedCommitment


class TimedSignatureScheme:
    """Garay–Jakobsson-style timed release of standard signatures.

    The signer signs ``message`` with ordinary BLS, then timed-commits
    to the signature bytes.  The counterparty holds something that will
    *become* a verifiable signature after ``t`` squarings, whether or
    not the signer cooperates — but, per §2.1, only in relative time
    and at the opener's CPU speed.
    """

    def __init__(self, group: PairingGroup, modulus_bits: int = 512):
        self.group = group
        self._bls = BLSSignatureScheme(group)
        self._commitments = TimedCommitmentScheme(modulus_bits)

    def sign_timed(
        self,
        keypair: ServerKeyPair,
        message: bytes,
        squarings: int,
        rng: random.Random,
    ) -> tuple[TimedSignature, CommitmentOpening]:
        signature = self._bls.sign(keypair, message)
        blob = self.group.point_to_bytes(signature)
        commitment, opening = self._commitments.commit(blob, squarings, rng)
        return TimedSignature(message, commitment), opening

    def _verify_blob(
        self, public: ServerPublicKey, message: bytes, blob: bytes
    ) -> CurvePoint:
        signature = self.group.point_from_bytes(blob)
        if not self._bls.verify(public, message, signature):
            raise DecryptionError("recovered signature does not verify")
        return signature

    def open_cooperative(
        self,
        timed: TimedSignature,
        opening: CommitmentOpening,
        public: ServerPublicKey,
    ) -> CurvePoint:
        blob = self._commitments.open(timed.commitment, opening)
        return self._verify_blob(public, timed.message, blob)

    def force_open(
        self, timed: TimedSignature, public: ServerPublicKey
    ) -> CurvePoint:
        blob = self._commitments.force_open(timed.commitment)
        return self._verify_blob(public, timed.message, blob)
