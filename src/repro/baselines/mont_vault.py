"""Mont et al.'s HP "time vault" service (paper §2.2, [17]).

The Boneh–Franklin application implemented at HP Labs: a sender encrypts
under the IBE identity ``ID‖T`` (receiver identity augmented with the
release time), and the server — which doubles as the IBE PKG — extracts
``s·H1(ID‖T)`` and *individually transmits* it to each registered
receiver when epoch ``T`` starts.

The two flaws the paper calls out, both observable on this object:

* **not scalable**: per-epoch server work and bandwidth are
  ``O(#receivers)`` (``keys_delivered``, ``bytes_delivered`` — versus
  the passive server's single broadcast, experiment E2);
* **inherent escrow**: the server can decrypt everything
  (:meth:`server_decrypt`).

Registration also tells the server exactly who its receivers are, so
receiver anonymity is gone (``knowledge``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.bf_ibe import BonehFranklinIBE, IBECiphertext, IBEPrivateKey
from repro.core.keys import ServerKeyPair, ServerPublicKey
from repro.pairing.api import PairingGroup


def vault_identity(receiver_id: bytes, time_label: bytes) -> bytes:
    """The augmented identity ``ID‖T`` (length-framed to avoid splicing)."""
    return (
        len(receiver_id).to_bytes(4, "big") + receiver_id
        + len(time_label).to_bytes(4, "big") + time_label
    )


@dataclass
class VaultKnowledge:
    registered_receivers: set[bytes] = field(default_factory=set)


class MontTimeVault:
    """The per-user-key-delivery timed-release service."""

    def __init__(self, group: PairingGroup, rng: random.Random):
        self.group = group
        self._ibe = BonehFranklinIBE(group)
        self._master: ServerKeyPair = self._ibe.setup(rng)
        self.knowledge = VaultKnowledge()
        self.keys_delivered = 0
        self.bytes_delivered = 0

    @property
    def public_key(self) -> ServerPublicKey:
        return self._master.public

    # ------------------------------------------------------------------
    # Server side.
    # ------------------------------------------------------------------

    def register_receiver(self, receiver_id: bytes) -> None:
        """Receivers must enrol so the server knows where to push keys —
        the step that forfeits receiver anonymity."""
        self.knowledge.registered_receivers.add(receiver_id)

    def start_epoch(self, time_label: bytes) -> dict[bytes, IBEPrivateKey]:
        """Extract and deliver one key per registered receiver: O(n)."""
        deliveries: dict[bytes, IBEPrivateKey] = {}
        for receiver_id in sorted(self.knowledge.registered_receivers):
            key = self._ibe.extract(
                self._master, vault_identity(receiver_id, time_label)
            )
            deliveries[receiver_id] = key
            self.keys_delivered += 1
            self.bytes_delivered += self.group.point_bytes
        return deliveries

    def server_decrypt(
        self, ciphertext: IBECiphertext, receiver_id: bytes, time_label: bytes
    ) -> bytes:
        """Escrow: the PKG can extract any key, hence read any message."""
        key = self._ibe.extract(self._master, vault_identity(receiver_id, time_label))
        return self._ibe.decrypt(ciphertext, key)

    # ------------------------------------------------------------------
    # User side.
    # ------------------------------------------------------------------

    def encrypt(
        self,
        message: bytes,
        receiver_id: bytes,
        time_label: bytes,
        rng: random.Random,
    ) -> IBECiphertext:
        return self._ibe.encrypt(
            message, vault_identity(receiver_id, time_label), self.public_key, rng
        )

    def decrypt(self, ciphertext: IBECiphertext, key: IBEPrivateKey) -> bytes:
        return self._ibe.decrypt(ciphertext, key)
