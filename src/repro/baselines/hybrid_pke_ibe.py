"""The footnote-3 hybrid PKE+IBE timed-release construction.

The paper concedes one *could* get server-passive timed release without
a new scheme: "use a public key encryption scheme to encrypt a sub-key
K1 and use an identity based encryption scheme to encrypt another
sub-key K2.  These two sub-keys are then combined to feed into a
symmetric key encryption scheme" — with the IBE identity being the
release-time string, so the IBE "extracted key" for ``T`` is precisely
the server's time-bound update.  But it claims the dedicated TRE scheme
wins: "the resulting constructions are considerably less efficient ...
in terms of computation and/or ciphertext size.  Our schemes could have
50% reduction in most cases."

This module implements that hybrid comparator faithfully so experiment
E1 can measure the claim:

    c_pke = ElGamal(K1, receiver_pk)         — 1 point + |K1| bytes
    c_ibe = BasicIdent(K2, identity=T)       — 1 point + |K2| bytes
    c_dem = M ⊕ KDF(K1 ‖ K2)

Two group-element headers per message versus TRE's one — the 50%
ciphertext-overhead reduction — and an extra scalar multiplication on
each side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.bf_ibe import BonehFranklinIBE, IBECiphertext
from repro.baselines.elgamal import (
    ElGamalKeyPair,
    HashedElGamal,
    HashedElGamalCiphertext,
)
from repro.core.keys import ServerPublicKey
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.crypto.kdf import derive_key
from repro.encoding import pack_chunks, xor_bytes
from repro.pairing.api import PairingGroup

_SUBKEY_BYTES = 32
_DEM_LABEL = "repro:hybrid-dem"


@dataclass(frozen=True)
class HybridCiphertext:
    """``⟨c_pke, c_ibe, c_dem⟩`` plus the public release-time label."""

    c_pke: HashedElGamalCiphertext
    c_ibe: IBECiphertext
    c_dem: bytes
    time_label: bytes

    def size_bytes(self, group: PairingGroup) -> int:
        return len(
            pack_chunks(
                group.point_to_bytes(self.c_pke.r_point),
                self.c_pke.masked,
                group.point_to_bytes(self.c_ibe.u_point),
                self.c_ibe.masked,
                self.c_dem,
                self.time_label,
            )
        )


class HybridPkeIbeTimedRelease:
    """The generic two-sub-key construction the paper compares against.

    The time server plays the IBE PKG whose "identities" are time
    strings; publishing the update for ``T`` is publishing the IBE
    private key ``s·H1(T)``, so the server is exactly as passive as in
    TRE — the difference is pure efficiency, which is the point.
    """

    def __init__(self, group: PairingGroup):
        self.group = group
        self.pke = HashedElGamal(group)
        self.ibe = BonehFranklinIBE(group)

    def generate_receiver_keypair(self, rng: random.Random) -> ElGamalKeyPair:
        return self.pke.generate_keypair(rng)

    def encrypt(
        self,
        message: bytes,
        receiver_public,
        server_public: ServerPublicKey,
        time_label: bytes,
        rng: random.Random,
    ) -> HybridCiphertext:
        k1 = rng.randbytes(_SUBKEY_BYTES)
        k2 = rng.randbytes(_SUBKEY_BYTES)
        c_pke = self.pke.encrypt(k1, receiver_public, rng)
        c_ibe = self.ibe.encrypt(k2, time_label, server_public, rng)
        dem_key = derive_key(k1 + k2, len(message), _DEM_LABEL)
        return HybridCiphertext(
            c_pke, c_ibe, xor_bytes(message, dem_key), time_label
        )

    def decrypt(
        self,
        ciphertext: HybridCiphertext,
        receiver_private: int,
        update: TimeBoundKeyUpdate,
    ) -> bytes:
        """Needs the receiver's PKE key *and* the update-as-IBE-key."""
        from repro.baselines.bf_ibe import IBEPrivateKey

        k1 = self.pke.decrypt(ciphertext.c_pke, receiver_private)
        ibe_key = IBEPrivateKey(ciphertext.time_label, update.point)
        k2 = self.ibe.decrypt(ciphertext.c_ibe, ibe_key)
        dem_key = derive_key(k1 + k2, len(ciphertext.c_dem), _DEM_LABEL)
        return xor_bytes(ciphertext.c_dem, dem_key)
