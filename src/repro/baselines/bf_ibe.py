"""Boneh–Franklin BasicIdent identity-based encryption ([4] in the paper).

Used in three places:

* as the IBE half of the footnote-3 hybrid comparator
  (:mod:`repro.baselines.hybrid_pke_ibe`), where the "identity" is the
  release-time string and the extracted key *is* the time-bound update;
* inside Mont et al.'s time vault (:mod:`repro.baselines.mont_vault`),
  where the identity is ``ID‖T``;
* as a reference point in the op-count benchmarks.

BasicIdent over a symmetric pairing:
    Setup:    master secret ``s``, public ``(G, sG)``
    Extract:  ``d_ID = s·H1(ID)``
    Encrypt:  ``r``; ``C = ⟨rG, M ⊕ H2(ê(sG, H1(ID))^r)⟩``
    Decrypt:  ``M = V ⊕ H2(ê(U, d_ID))``
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.keys import ServerKeyPair, ServerPublicKey
from repro.ec.point import CurvePoint
from repro.encoding import xor_bytes
from repro.pairing.api import PairingGroup

H1_TAG = "repro:H1"
H2_TAG = "repro:H2"


@dataclass(frozen=True)
class IBECiphertext:
    u_point: CurvePoint
    masked: bytes

    def size_bytes(self, group: PairingGroup) -> int:
        return len(group.point_to_bytes(self.u_point)) + len(self.masked)


@dataclass(frozen=True)
class IBEPrivateKey:
    identity: bytes
    point: CurvePoint


class BonehFranklinIBE:
    """BasicIdent (IND-ID-CPA in the random oracle model)."""

    def __init__(self, group: PairingGroup):
        self.group = group

    def setup(self, rng: random.Random) -> ServerKeyPair:
        """Generate the PKG's master key pair."""
        return ServerKeyPair.generate(self.group, rng)

    def extract(self, master: ServerKeyPair, identity: bytes) -> IBEPrivateKey:
        """``d_ID = s·H1(ID)`` — note this is exactly the shape of a
        TRE time-bound key update when ``ID`` is a time string."""
        point = self.group.mul(
            self.group.hash_to_g1(identity, tag=H1_TAG), master.private
        )
        return IBEPrivateKey(identity, point)

    def encrypt(
        self,
        message: bytes,
        identity: bytes,
        public: ServerPublicKey,
        rng: random.Random,
    ) -> IBECiphertext:
        r = self.group.random_scalar(rng)
        h_id = self.group.hash_to_g1(identity, tag=H1_TAG)
        k = self.group.pair(public.s_generator, h_id) ** r
        mask = self.group.mask_bytes(k, len(message), tag=H2_TAG)
        return IBECiphertext(
            self.group.mul(public.generator, r), xor_bytes(message, mask)
        )

    def decrypt(self, ciphertext: IBECiphertext, private: IBEPrivateKey) -> bytes:
        k = self.group.pair(ciphertext.u_point, private.point)
        mask = self.group.mask_bytes(k, len(ciphertext.masked), tag=H2_TAG)
        return xor_bytes(ciphertext.masked, mask)
