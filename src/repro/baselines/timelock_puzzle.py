"""Rivest–Shamir–Wagner time-lock puzzles (paper §2.1).

The relative-time baseline: the sender seals a key behind ``t``
sequential modular squarings.  Knowing the factorization of ``n = pq``
the sender computes ``2^(2^t) mod n`` in ``O(log t)`` work via
``φ(n)``; the solver must grind all ``t`` squarings.

The paper's criticisms, which experiment E3 quantifies:

* only *relative* time — the clock starts when the solver starts;
* release time depends on the solver's CPU speed (×2 hardware → ×½
  wall time), so precision is inherently coarse;
* decryption burns CPU proportional to the delay, versus TRE's
  constant two pairings.

:class:`SimulatedMachine` models solver hardware of different speeds so
the release-time *spread* across a heterogeneous population can be
reported without needing actual heterogeneous hardware (substitution
documented in DESIGN.md).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.crypto.authenc import aead_decrypt, aead_encrypt
from repro.errors import ParameterError
from repro.math.primes import random_prime


@dataclass(frozen=True)
class PuzzleCiphertext:
    """``n``, base ``a``, squaring count ``t``, masked key, sealed payload."""

    modulus: int
    base: int
    squarings: int
    masked_key: int
    sealed: bytes


@dataclass(frozen=True)
class PuzzleSolution:
    plaintext: bytes
    squarings_performed: int


class TimeLockPuzzle:
    """RSW: seal a message behind ``t`` sequential squarings mod ``n``."""

    def __init__(self, modulus_bits: int = 512):
        if modulus_bits < 32:
            raise ParameterError("modulus too small to be meaningful")
        self.modulus_bits = modulus_bits

    def seal(
        self, message: bytes, squarings: int, rng: random.Random
    ) -> PuzzleCiphertext:
        """Create a puzzle whose solution takes ``squarings`` sequential steps.

        The sender's shortcut: ``e = 2^t mod φ(n)`` then ``b = a^e mod n``
        — O(log t) multiplications instead of t.
        """
        if squarings < 1:
            raise ParameterError("need at least one squaring")
        half = self.modulus_bits // 2
        p = random_prime(half, rng)
        q = random_prime(self.modulus_bits - half, rng)
        while q == p:
            q = random_prime(self.modulus_bits - half, rng)
        n = p * q
        phi = (p - 1) * (q - 1)
        a = rng.randrange(2, n - 1)
        e = pow(2, squarings, phi)
        b = pow(a, e, n)
        key = rng.randbytes(32)
        masked_key = (int.from_bytes(key, "big") + b) % n
        sealed = aead_encrypt(key, b"rsw", message)
        return PuzzleCiphertext(n, a, squarings, masked_key, sealed)

    def solve(self, puzzle: PuzzleCiphertext) -> PuzzleSolution:
        """Grind the ``t`` squarings — no shortcut without the factors."""
        b = puzzle.base % puzzle.modulus
        for _ in range(puzzle.squarings):
            b = b * b % puzzle.modulus
        key_int = (puzzle.masked_key - b) % puzzle.modulus
        key = key_int.to_bytes((puzzle.modulus.bit_length() + 7) // 8, "big")[-32:]
        plaintext = aead_decrypt(key, b"rsw", puzzle.sealed)
        return PuzzleSolution(plaintext, puzzle.squarings)

    def measure_squaring_rate(self, sample: int = 2000) -> float:
        """Calibrate this host's sequential squarings per second."""
        # lint: allow[rng-discipline] calibration touches no secrets; a fixed
        # seed keeps the benchmark modulus comparable across hosts
        rng = random.Random(0xCA11B)
        n = random_prime(self.modulus_bits // 2, rng) * random_prime(
            self.modulus_bits - self.modulus_bits // 2, rng
        )
        b = rng.randrange(2, n - 1)
        start = time.perf_counter()
        for _ in range(sample):
            b = b * b % n
        elapsed = time.perf_counter() - start
        return sample / elapsed


@dataclass(frozen=True)
class SimulatedMachine:
    """A solver with a given squaring rate and start-time lag.

    Models the paper's complaint that the effective release time depends
    on "the speed of the recipients' machines and when the decryption is
    started".
    """

    name: str
    squarings_per_second: float
    start_delay_seconds: float = 0.0

    def release_time(self, puzzle: PuzzleCiphertext) -> float:
        """Seconds after *sending* at which this machine reads the message."""
        return self.start_delay_seconds + puzzle.squarings / self.squarings_per_second


def release_time_spread(
    puzzle: PuzzleCiphertext, machines: list[SimulatedMachine]
) -> dict[str, float]:
    """Per-machine effective release times for one puzzle (E3 helper)."""
    return {m.name: m.release_time(puzzle) for m in machines}
