"""Every comparator scheme the paper discusses, implemented for real.

§2.1 time-lock puzzles      → :mod:`repro.baselines.timelock_puzzle`
§2.1 timed commitments/sigs → :mod:`repro.baselines.timed_commitment`
§2.2 May's escrow agent     → :mod:`repro.baselines.escrow_agent`
§2.2 Rivest's server        → :mod:`repro.baselines.rivest_server`
§2.2 Di Crescenzo's COT     → :mod:`repro.baselines.cot`
§2.2 Mont's HP time vault   → :mod:`repro.baselines.mont_vault`
footnote 3 hybrid PKE+IBE   → :mod:`repro.baselines.hybrid_pke_ibe`
building blocks             → :mod:`repro.baselines.elgamal`,
                              :mod:`repro.baselines.bf_ibe`

These are not strawmen: each one actually encrypts and decrypts, so the
benchmarks in ``benchmarks/`` compare real work against real work.
"""

from repro.baselines.elgamal import ExponentialElGamal, HashedElGamal
from repro.baselines.bf_ibe import BonehFranklinIBE
from repro.baselines.hybrid_pke_ibe import HybridPkeIbeTimedRelease
from repro.baselines.timed_commitment import (
    TimedCommitmentScheme,
    TimedSignatureScheme,
)
from repro.baselines.timelock_puzzle import TimeLockPuzzle
from repro.baselines.escrow_agent import EscrowAgent
from repro.baselines.rivest_server import RivestKeyReleaseServer, RivestPublicKeyServer
from repro.baselines.mont_vault import MontTimeVault

__all__ = [
    "HashedElGamal",
    "ExponentialElGamal",
    "BonehFranklinIBE",
    "HybridPkeIbeTimedRelease",
    "TimeLockPuzzle",
    "TimedCommitmentScheme",
    "TimedSignatureScheme",
    "EscrowAgent",
    "RivestKeyReleaseServer",
    "RivestPublicKeyServer",
    "MontTimeVault",
]
