"""Rivest–Shamir–Wagner's trusted-server designs (paper §2.2, [19]).

Two variants, mirroring the paper's discussion:

* :class:`RivestKeyReleaseServer` — the symmetric variant.  The server
  derives epoch keys ``k_i = H(seed, i)`` (so it "does not have to
  remember anything except the seed") and publishes ``k_i`` when epoch
  ``i`` arrives.  BUT the *sender must interact with the server*: it
  hands over the plaintext and the server returns the epoch-encrypted
  ciphertext — leaking the sender's identity, the message, and its
  release time.  ``knowledge`` records the leak; ``encryptions_served``
  records the per-message server work that kills scalability.

* :class:`RivestPublicKeyServer` — the non-interactive variant.  The
  server pre-publishes a *horizon* of epoch public keys; senders pick
  the key for their release epoch locally, and the server publishes the
  matching private key when the epoch arrives.  No interaction, but the
  advance publication is ``O(horizon)`` bytes, and a sender wanting an
  epoch beyond the horizon is stuck until the server extends the list —
  the exact non-scalability the paper contrasts with TRE's "any release
  time ... without relying on any information from the server".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.elgamal import ElGamalKeyPair, HashedElGamal
from repro.crypto.authenc import aead_decrypt, aead_encrypt
from repro.crypto.kdf import derive_key
from repro.errors import UpdateNotAvailableError
from repro.pairing.api import PairingGroup

_EPOCH_KEY_LABEL = "repro:rivest:epoch"


@dataclass
class RivestKnowledge:
    senders: set[bytes] = field(default_factory=set)
    messages_seen: int = 0
    release_times_seen: set[int] = field(default_factory=set)


class RivestKeyReleaseServer:
    """Symmetric variant: interactive encryption, periodic key release."""

    def __init__(self, seed: bytes):
        self._seed = seed  # The only long-term state (as in the paper).
        self.knowledge = RivestKnowledge()
        self.encryptions_served = 0
        self.keys_published = 0

    def _epoch_key(self, epoch: int) -> bytes:
        return derive_key(self._seed, 32, f"{_EPOCH_KEY_LABEL}:{epoch}")

    def encrypt_for_sender(
        self, sender: bytes, message: bytes, release_epoch: int
    ) -> bytes:
        """The sender→server interaction (server sees everything)."""
        self.knowledge.senders.add(sender)
        self.knowledge.messages_seen += 1
        self.knowledge.release_times_seen.add(release_epoch)
        self.encryptions_served += 1
        return aead_encrypt(
            self._epoch_key(release_epoch),
            b"rivest",
            message,
            associated_data=str(release_epoch).encode(),
        )

    def publish_epoch_key(self, epoch: int) -> bytes:
        """Broadcast ``k_i`` once epoch ``i`` arrives."""
        self.keys_published += 1
        return self._epoch_key(epoch)

    @staticmethod
    def decrypt(ciphertext: bytes, epoch_key: bytes, release_epoch: int) -> bytes:
        return aead_decrypt(
            epoch_key,
            b"rivest",
            ciphertext,
            associated_data=str(release_epoch).encode(),
        )


class RivestPublicKeyServer:
    """Public-key variant: pre-published horizon of epoch key pairs."""

    def __init__(self, group: PairingGroup, horizon: int, rng: random.Random):
        self.group = group
        self._pke = HashedElGamal(group)
        self._keypairs: list[ElGamalKeyPair] = [
            self._pke.generate_keypair(rng) for _ in range(horizon)
        ]
        self.private_keys_published = 0

    @property
    def horizon(self) -> int:
        return len(self._keypairs)

    def published_directory_bytes(self) -> int:
        """Size of the advance publication senders must download."""
        return self.horizon * self.group.point_bytes

    def public_key_for_epoch(self, epoch: int):
        """Senders pick locally — raises if the epoch is past the horizon,
        the failure mode the paper highlights."""
        if epoch >= self.horizon:
            raise UpdateNotAvailableError(
                f"epoch {epoch} beyond published horizon {self.horizon}; "
                "sender must wait for the server to extend the list"
            )
        return self._keypairs[epoch].public

    def extend_horizon(self, additional: int, rng: random.Random) -> int:
        """Server-side remedy: publish more future keys (more state,
        more directory bytes — never a sender-side fix)."""
        self._keypairs.extend(
            self._pke.generate_keypair(rng) for _ in range(additional)
        )
        return self.horizon

    def release_private_key(self, epoch: int) -> int:
        if epoch >= self.horizon:
            raise UpdateNotAvailableError(f"epoch {epoch} beyond horizon")
        self.private_keys_published += 1
        return self._keypairs[epoch].private

    # Convenience wrappers so benchmarks drive one object.

    def encrypt(self, message: bytes, epoch: int, rng: random.Random):
        return self._pke.encrypt(message, self.public_key_for_epoch(epoch), rng)

    def decrypt(self, ciphertext, epoch_private: int) -> bytes:
        return self._pke.decrypt(ciphertext, epoch_private)
