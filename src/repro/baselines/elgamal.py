"""ElGamal encryption over the pairing group's G1.

Two flavours, both used by other baselines:

* :class:`HashedElGamal` — the standard KEM-style PKE
  (``⟨rG, M ⊕ KDF(r·xG)⟩``).  This is the "any public key encryption
  scheme" slot of the paper's footnote-3 hybrid construction.
* :class:`ExponentialElGamal` — additively homomorphic
  (``⟨rG, mG + r·xG⟩``), used by the conditional-oblivious-transfer
  baseline for its encrypted bitwise comparison.

Neither uses the pairing; they only need the group law, so they also
serve as a control in the op-count benchmarks (how much of TRE's cost
is pairing-specific).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.kdf import derive_key
from repro.crypto.redact import redacted_repr
from repro.ec.point import CurvePoint
from repro.encoding import xor_bytes
from repro.pairing.api import PairingGroup

_KDF_LABEL = "repro:elgamal"


@redacted_repr("public")
@dataclass(frozen=True)
class ElGamalKeyPair:
    private: int
    public: CurvePoint


@dataclass(frozen=True)
class HashedElGamalCiphertext:
    r_point: CurvePoint
    masked: bytes


class HashedElGamal:
    """IND-CPA hashed ElGamal: ``⟨rG, M ⊕ KDF(r·pk)⟩``."""

    def __init__(self, group: PairingGroup, generator: CurvePoint | None = None):
        self.group = group
        self.generator = generator if generator is not None else group.generator

    def generate_keypair(self, rng: random.Random) -> ElGamalKeyPair:
        x = self.group.random_scalar(rng)
        return ElGamalKeyPair(x, self.group.mul(self.generator, x))

    def encrypt(
        self, message: bytes, public: CurvePoint, rng: random.Random
    ) -> HashedElGamalCiphertext:
        r = self.group.random_scalar(rng)
        shared = self.group.mul(public, r)
        mask = derive_key(
            self.group.point_to_bytes(shared), len(message), _KDF_LABEL
        )
        return HashedElGamalCiphertext(
            self.group.mul(self.generator, r), xor_bytes(message, mask)
        )

    def decrypt(self, ciphertext: HashedElGamalCiphertext, private: int) -> bytes:
        shared = self.group.mul(ciphertext.r_point, private)
        mask = derive_key(
            self.group.point_to_bytes(shared), len(ciphertext.masked), _KDF_LABEL
        )
        return xor_bytes(ciphertext.masked, mask)


@dataclass(frozen=True)
class ExpElGamalCiphertext:
    """``(rG, mG + r·pk)`` — additively homomorphic in ``m``."""

    c1: CurvePoint
    c2: CurvePoint


class ExponentialElGamal:
    """Additively homomorphic ElGamal (message in the exponent).

    Decryption returns the *point* ``mG``; recovering ``m`` itself needs
    a discrete log, so callers either test against known candidate
    points (the COT baseline checks for ``m == 0``) or keep everything
    in point form.
    """

    def __init__(self, group: PairingGroup, generator: CurvePoint | None = None):
        self.group = group
        self.generator = generator if generator is not None else group.generator

    def generate_keypair(self, rng: random.Random) -> ElGamalKeyPair:
        x = self.group.random_scalar(rng)
        return ElGamalKeyPair(x, self.group.mul(self.generator, x))

    def encrypt(
        self, message: int, public: CurvePoint, rng: random.Random
    ) -> ExpElGamalCiphertext:
        r = self.group.random_scalar(rng)
        c1 = self.group.mul(self.generator, r)
        c2 = self.group.add(
            self.group.mul(self.generator, message), self.group.mul(public, r)
        )
        return ExpElGamalCiphertext(c1, c2)

    def decrypt_point(
        self, ciphertext: ExpElGamalCiphertext, private: int
    ) -> CurvePoint:
        """Return ``mG`` (the exponent itself stays hidden in the dlog)."""
        return ciphertext.c2 - self.group.mul(ciphertext.c1, private)

    def is_zero(self, ciphertext: ExpElGamalCiphertext, private: int) -> bool:
        return self.decrypt_point(ciphertext, private).is_infinity

    # ------------------------------------------------------------------
    # Homomorphic operations (no secret key involved).
    # ------------------------------------------------------------------

    def add(
        self, left: ExpElGamalCiphertext, right: ExpElGamalCiphertext
    ) -> ExpElGamalCiphertext:
        return ExpElGamalCiphertext(
            self.group.add(left.c1, right.c1), self.group.add(left.c2, right.c2)
        )

    def add_plain(
        self, ciphertext: ExpElGamalCiphertext, constant: int
    ) -> ExpElGamalCiphertext:
        return ExpElGamalCiphertext(
            ciphertext.c1,
            self.group.add(
                ciphertext.c2, self.group.mul(self.generator, constant % self.group.q)
            ),
        )

    def scale(
        self, ciphertext: ExpElGamalCiphertext, factor: int
    ) -> ExpElGamalCiphertext:
        factor %= self.group.q
        return ExpElGamalCiphertext(
            self.group.mul(ciphertext.c1, factor),
            self.group.mul(ciphertext.c2, factor),
        )

    def rerandomize(
        self,
        ciphertext: ExpElGamalCiphertext,
        public: CurvePoint,
        rng: random.Random,
    ) -> ExpElGamalCiphertext:
        r = self.group.random_scalar(rng)
        return ExpElGamalCiphertext(
            self.group.add(ciphertext.c1, self.group.mul(self.generator, r)),
            self.group.add(ciphertext.c2, self.group.mul(public, r)),
        )
