"""Conditional-oblivious-transfer timed release (paper §2.2, [9]).

Di Crescenzo, Ostrovsky and Rajagopalan's design: the *receiver* runs an
interactive protocol with the server to evaluate the predicate
``release_time <= current_time``; if true the receiver obtains the
message key, otherwise nothing — and the server learns neither the
release time nor even whether the predicate held.

We implement an honest-but-curious instantiation with the same
structure and asymptotics (the paper's protocol is "logarithmic ... in
the time parameter"): a DGK-style encrypted bitwise comparison over
exponentially-homomorphic ElGamal, coupled to a blinded key transfer.

Protocol (one round trip per attempt):

Sender (offline, once):
    seal M under a fresh key ``K``; encrypt ``K`` toward the server's
    transfer key: ``masked = K ⊕ KDF(ρ·pk_S)``, shipping ``ρG``.
Receiver → Server:
    bit-encryptions ``Enc_R(x_i)`` of the release epoch ``x`` under the
    receiver's *session* key, plus the blinded point ``B = ρG + βG``.
Server → Receiver (with its clock value ``y``, testing ``x < y + 1``):
    DGK ciphertexts ``d_i = Enc_R(r_i·c_i + κ)`` for random ``r_i, κ``,
    where ``c_i = x_i - y'_i + 1 + 3·Σ_{j>i}(x_j ⊕ y'_j)`` (zero iff the
    predicate holds with the deciding bit at ``i``), shuffled; plus the
    gated transfer ``F = bytes(sk_S·B) ⊕ KDF(κG)`` and a commitment
    ``H(κG)``.
Receiver:
    decrypts each ``d_i``; iff some ``c_i`` was zero it recovers ``κG``
    (recognized via the commitment), unmasks ``sk_S·B``, strips its own
    blinding ``β·pk_S``, and obtains ``K``.

Privacy: the server sees only ciphertexts under the receiver's key and
a uniformly blinded point — it learns nothing about ``x``, the message,
or the outcome.  That is exactly why it cannot filter the
denial-of-service pattern in the paper's footnote 5 (far-future
queries), which :func:`repro.sim` scenarios and benchmark E7 exercise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.elgamal import (
    ElGamalKeyPair,
    ExpElGamalCiphertext,
    ExponentialElGamal,
)
from repro.crypto.authenc import aead_decrypt, aead_encrypt
from repro.crypto.ct import bytes_eq
from repro.crypto.kdf import derive_key
from repro.ec.point import CurvePoint
from repro.encoding import xor_bytes
from repro.errors import ProtocolError
from repro.pairing.api import PairingGroup
from repro.pairing.hashing import hash_bytes

_TRANSFER_LABEL = "repro:cot:transfer"
_GATE_LABEL = "repro:cot:gate"


@dataclass(frozen=True)
class SealedMessage:
    """What the sender leaves with the receiver (server never sees it)."""

    sealed: bytes
    rho_point: CurvePoint
    masked_key: bytes
    release_epoch: int


@dataclass(frozen=True)
class COTRequest:
    """Receiver → server: encrypted epoch bits + blinded transfer point."""

    bit_ciphertexts: tuple[ExpElGamalCiphertext, ...]
    blinded_point: CurvePoint
    session_public: CurvePoint

    def size_bytes(self, group: PairingGroup) -> int:
        return (2 * len(self.bit_ciphertexts) + 2) * group.point_bytes


@dataclass(frozen=True)
class COTResponse:
    """Server → receiver: shuffled DGK results + gated transfer."""

    gate_ciphertexts: tuple[ExpElGamalCiphertext, ...]
    gated_transfer: bytes
    kappa_commitment: bytes

    def size_bytes(self, group: PairingGroup) -> int:
        return (
            2 * len(self.gate_ciphertexts) * group.point_bytes
            + len(self.gated_transfer)
            + len(self.kappa_commitment)
        )


def seal_message(
    group: PairingGroup,
    server_transfer_public: CurvePoint,
    message: bytes,
    release_epoch: int,
    rng: random.Random,
) -> SealedMessage:
    """Sender side: offline, non-interactive (the sender is long gone
    by release time, per the paper's model)."""
    key = rng.randbytes(32)
    rho = group.random_scalar(rng)
    shared = group.mul(server_transfer_public, rho)
    masked_key = xor_bytes(
        key, derive_key(group.point_to_bytes(shared), 32, _TRANSFER_LABEL)
    )
    sealed = aead_encrypt(key, b"cot", message)
    return SealedMessage(
        sealed, group.mul(group.generator, rho), masked_key, release_epoch
    )


class COTTimeServer:
    """The interactive (hence non-passive) time server."""

    def __init__(self, group: PairingGroup, time_bits: int, rng: random.Random):
        self.group = group
        self.time_bits = time_bits
        self._secret = group.random_scalar(rng)
        self.transfer_public = group.mul(group.generator, self._secret)
        self.sessions_served = 0
        self.homomorphic_ops = 0

    def respond(
        self, request: COTRequest, now_epoch: int, rng: random.Random
    ) -> COTResponse:
        """Serve one comparison+transfer session.

        Note the per-receiver, per-attempt cost — O(time_bits) group
        operations — and that nothing here tells the server whether the
        request was reasonable (footnote 5's DoS vector).
        """
        if len(request.bit_ciphertexts) != self.time_bits:
            raise ProtocolError(
                f"expected {self.time_bits} bit ciphertexts, "
                f"got {len(request.bit_ciphertexts)}"
            )
        self.sessions_served += 1
        ahe = ExponentialElGamal(self.group)
        # Test x < y' with y' = now + 1  (i.e. x <= now).
        y_prime = now_epoch + 1
        if y_prime >= 1 << self.time_bits:
            raise ProtocolError("server clock exceeds the time parameter")
        y_bits = [(y_prime >> i) & 1 for i in range(self.time_bits)]

        kappa = self.group.random_scalar(rng)
        kappa_point = self.group.mul(self.group.generator, kappa)

        # xor_j = x_j ⊕ y_j, linear in the encrypted x_j since y_j is known:
        #   y_j == 0 -> x_j ;  y_j == 1 -> 1 - x_j.
        xors: list[ExpElGamalCiphertext] = []
        for ct, y_bit in zip(request.bit_ciphertexts, y_bits):
            if y_bit:
                xors.append(ahe.add_plain(ahe.scale(ct, -1), 1))
            else:
                xors.append(ct)
            self.homomorphic_ops += 1

        gates: list[ExpElGamalCiphertext] = []
        # suffix = Σ_{j>i} xor_j, built from the top bit downwards.
        suffix: ExpElGamalCiphertext | None = None
        for i in range(self.time_bits - 1, -1, -1):
            # c_i = x_i - y_i + 1 + 3*suffix
            c = ahe.add_plain(request.bit_ciphertexts[i], 1 - y_bits[i])
            if suffix is not None:
                c = ahe.add(c, ahe.scale(suffix, 3))
            r_i = self.group.random_scalar(rng)
            gated = ahe.add_plain(ahe.scale(c, r_i), kappa)
            gates.append(ahe.rerandomize(gated, request.session_public, rng))
            self.homomorphic_ops += 4
            suffix = xors[i] if suffix is None else ahe.add(suffix, xors[i])
        rng.shuffle(gates)

        transfer_point = self.group.mul(request.blinded_point, self._secret)
        gated_transfer = xor_bytes(
            self.group.point_to_bytes(transfer_point),
            derive_key(
                self.group.point_to_bytes(kappa_point),
                self.group.point_bytes,
                _GATE_LABEL,
            ),
        )
        commitment = hash_bytes(
            self.group.point_to_bytes(kappa_point), tag="repro:cot:commit"
        )[:32]
        return COTResponse(tuple(gates), gated_transfer, commitment)


class COTReceiver:
    """Runs the interactive protocol against the server per message."""

    def __init__(self, group: PairingGroup, time_bits: int):
        self.group = group
        self.time_bits = time_bits
        self._session: ElGamalKeyPair | None = None
        self._beta: int | None = None

    def build_request(
        self, sealed: SealedMessage, rng: random.Random
    ) -> COTRequest:
        if sealed.release_epoch >= 1 << self.time_bits:
            raise ProtocolError("release epoch exceeds the time parameter")
        ahe = ExponentialElGamal(self.group)
        self._session = ahe.generate_keypair(rng)
        bits = [
            (sealed.release_epoch >> i) & 1 for i in range(self.time_bits)
        ]
        ciphertexts = tuple(
            ahe.encrypt(bit, self._session.public, rng) for bit in bits
        )
        self._beta = self.group.random_scalar(rng)
        blinded = self.group.add(
            sealed.rho_point, self.group.mul(self.group.generator, self._beta)
        )
        return COTRequest(ciphertexts, blinded, self._session.public)

    def process_response(
        self,
        sealed: SealedMessage,
        response: COTResponse,
        server_transfer_public: CurvePoint,
    ) -> bytes | None:
        """Return the plaintext if the release time has passed, else None."""
        if self._session is None or self._beta is None:
            raise ProtocolError("build_request must run before process_response")
        ahe = ExponentialElGamal(self.group)
        kappa_point = None
        for gate in response.gate_ciphertexts:
            candidate = ahe.decrypt_point(gate, self._session.private)
            digest = hash_bytes(
                self.group.point_to_bytes(candidate), tag="repro:cot:commit"
            )[:32]
            if bytes_eq(digest, response.kappa_commitment):
                kappa_point = candidate
                break
        if kappa_point is None:
            return None  # Predicate false: too early, and that's all we learn.
        transfer_bytes = xor_bytes(
            response.gated_transfer,
            derive_key(
                self.group.point_to_bytes(kappa_point),
                self.group.point_bytes,
                _GATE_LABEL,
            ),
        )
        transfer_point = self.group.point_from_bytes(transfer_bytes)
        unblinded = transfer_point - self.group.mul(
            server_transfer_public, self._beta
        )
        key = xor_bytes(
            sealed.masked_key,
            derive_key(self.group.point_to_bytes(unblinded), 32, _TRANSFER_LABEL),
        )
        return aead_decrypt(key, b"cot", sealed.sealed)


def run_cot_session(
    group: PairingGroup,
    server: COTTimeServer,
    sealed: SealedMessage,
    now_epoch: int,
    rng: random.Random,
) -> tuple[bytes | None, int]:
    """Drive one full round trip; returns (plaintext-or-None, bytes moved)."""
    receiver = COTReceiver(group, server.time_bits)
    request = receiver.build_request(sealed, rng)
    response = server.respond(request, now_epoch, rng)
    plaintext = receiver.process_response(
        sealed, response, server.transfer_public
    )
    moved = request.size_bytes(group) + response.size_bytes(group)
    return plaintext, moved
