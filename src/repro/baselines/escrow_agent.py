"""May's trusted escrow agent (paper §2.2, [15]).

The simplest server-based design and the least private: senders hand the
*plaintext* message, its release time, and the receiver's identity to a
trusted agent, who stores everything and forwards at release time.

The paper's criticisms, made measurable here:

* storage grows with every pending message (``stored_bytes``);
* the agent learns message contents, release times, and both
  identities (``knowledge`` — the anonymity ledger the E2/privacy tests
  inspect);
* per-receiver delivery work at release time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EscrowRecord:
    sender: bytes
    receiver: bytes
    message: bytes
    release_epoch: int


@dataclass
class EscrowKnowledge:
    """Everything the agent has learned — the anti-anonymity ledger."""

    senders: set[bytes] = field(default_factory=set)
    receivers: set[bytes] = field(default_factory=set)
    messages_seen: int = 0
    release_times_seen: set[int] = field(default_factory=set)


class EscrowAgent:
    """Store-and-forward timed release with zero cryptography."""

    def __init__(self):
        self._pending: list[EscrowRecord] = []
        self.knowledge = EscrowKnowledge()
        self.stored_bytes = 0
        self.deliveries = 0

    def deposit(
        self, sender: bytes, receiver: bytes, message: bytes, release_epoch: int
    ) -> None:
        """The sender interaction — the agent sees everything."""
        record = EscrowRecord(sender, receiver, message, release_epoch)
        self._pending.append(record)
        self.stored_bytes += len(message)
        self.knowledge.senders.add(sender)
        self.knowledge.receivers.add(receiver)
        self.knowledge.messages_seen += 1
        self.knowledge.release_times_seen.add(release_epoch)

    def tick(self, now_epoch: int) -> list[EscrowRecord]:
        """Deliver (and forget) every message whose time has come."""
        due = [r for r in self._pending if r.release_epoch <= now_epoch]
        self._pending = [r for r in self._pending if r.release_epoch > now_epoch]
        for record in due:
            self.stored_bytes -= len(record.message)
            self.deliveries += 1
        return due

    def pending_count(self) -> int:
        return len(self._pending)
