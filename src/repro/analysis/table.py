"""Plain-text table formatting for benchmark harness output.

The benchmark files print the same rows the paper's claims describe;
this formatter keeps them aligned and diff-friendly (fixed column
widths, deterministic ordering) so ``bench_output.txt`` is readable.
"""

from __future__ import annotations

from typing import Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
