"""A symbolic cost model for every scheme in the library.

The paper argues efficiency in units of group operations; this module
writes those budgets down *as data* so they can be (a) printed in docs
and benchmarks and (b) asserted against the live operation counters —
any refactor that silently changes a scheme's op count fails
``tests/analysis/test_costmodel.py``.

Counts exclude the optional receiver-key well-formedness check
(2 pairings, amortizable across messages) and update
self-authentication (2 pairings, once per broadcast, not per message);
both are listed separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class OpBudget:
    """Operation counts for one protocol step.

    ``fixed_base_mults`` and ``precomputed_pairings`` are *subsets* of
    ``scalar_mults`` / ``pairings`` taken via the precomputation fast
    paths (mirroring the advisory counters in
    :mod:`repro.pairing.opcount`), not additional operations.
    """

    pairings: int = 0
    scalar_mults: int = 0
    hash_to_group: int = 0
    gt_exps: int = 0
    point_adds: int = 0
    fixed_base_mults: int = 0
    precomputed_pairings: int = 0
    # Subset of ``gt_exps`` served by a windowed GT fixed-base table
    # (mirrors GT_FIXED_BASE in repro.pairing.opcount): zero squarings,
    # one GT multiplication per exponent window.
    gt_fixed_base_exps: int = 0
    # Pairing substructure (mirrors MILLER_LOOP / FINAL_EXP /
    # MULTI_PAIRING in repro.pairing.opcount): ``miller_loops`` is one
    # per live pairing, while a k-fold multi-pairing shares ONE final
    # exponentiation across its k pairings, so ``final_exps`` can be
    # smaller than ``pairings``.
    miller_loops: int = 0
    final_exps: int = 0
    multi_pairs: int = 0

    def as_dict(self) -> dict[str, int]:
        mapping = {
            "pairing": self.pairings,
            "scalar_mult": self.scalar_mults,
            "hash_to_group": self.hash_to_group,
            "gt_exp": self.gt_exps,
            "point_add": self.point_adds,
            "fixed_base_mult": self.fixed_base_mults,
            "pairing_precomp": self.precomputed_pairings,
            "gt_fixed_base": self.gt_fixed_base_exps,
            "miller_loop": self.miller_loops,
            "final_exp": self.final_exps,
            "multi_pair": self.multi_pairs,
        }
        return {name: count for name, count in mapping.items() if count}

    def dominant_cost(
        self,
        pairing_weight: float = 10.0,
        precomp_pairing_weight: float = 4.0,
        fixed_base_weight: float = 0.4,
        final_exp_weight: float = 2.0,
        gt_fixed_base_weight: float = 0.4,
    ) -> float:
        """A single comparable number: scalar-mult-equivalents.

        Precomputed pairings keep the final exponentiation but drop the
        Miller-loop curve arithmetic; table-driven multiplications drop
        all doublings.  A multi-pairing budget (``multi_pairs > 0``)
        gets credited the final exponentiations it shares away:
        ``pairings - final_exps`` of them, each worth
        ``final_exp_weight``.  A table-driven GT exponentiation
        (``gt_fixed_base_exps``, a subset of ``gt_exps``) drops all
        squarings the same way a fixed-base multiplication does, and
        earns the same discount.  The discounted weights reflect the
        measured ratios in ``BENCH_pairing.json``.
        """
        direct_pairings = self.pairings - self.precomputed_pairings
        direct_mults = self.scalar_mults - self.fixed_base_mults
        direct_gt_exps = self.gt_exps - self.gt_fixed_base_exps
        # Budgets written before the multi-pairing kernel leave
        # final_exps at 0 ("not modeled") — only credit the saving when
        # the budget explicitly declares multi-pairing structure.
        saved_final_exps = (
            self.pairings - self.final_exps if self.multi_pairs else 0
        )
        return (
            direct_pairings * pairing_weight
            + self.precomputed_pairings * precomp_pairing_weight
            + direct_mults
            + self.fixed_base_mults * fixed_base_weight
            + self.hash_to_group
            + direct_gt_exps
            + self.gt_fixed_base_exps * gt_fixed_base_weight
            + 0.01 * self.point_adds
            - saved_final_exps * final_exp_weight
        )


@dataclass(frozen=True)
class SchemeCost:
    name: str
    encrypt: OpBudget
    decrypt: OpBudget
    notes: str = ""
    extras: dict = field(default_factory=dict)


# The §5.1 scheme: Encrypt = H1(T), r·G, r·asG, one pairing;
# Decrypt = one pairing then ^a.
TRE_COST = SchemeCost(
    name="TRE",
    encrypt=OpBudget(
        pairings=1, scalar_mults=2, hash_to_group=1,
        miller_loops=1, final_exps=1,
    ),
    decrypt=OpBudget(pairings=1, gt_exps=1, miller_loops=1, final_exps=1),
    notes="receiver-key check: +2 pairings (amortizable)",
)

# §5.2: Encrypt hashes ID and T, adds them, pairs once, exponentiates.
IDTRE_COST = SchemeCost(
    name="ID-TRE",
    encrypt=OpBudget(
        pairings=1, scalar_mults=1, hash_to_group=2, gt_exps=1, point_adds=1,
        miller_loops=1, final_exps=1,
    ),
    decrypt=OpBudget(pairings=1, point_adds=1, miller_loops=1, final_exps=1),
    notes="escrow inherent; no receiver certificate",
)

# Footnote 3: ElGamal KEM (2 smul) + BF-IBE (1 pairing + 2 smul +
# 1 H1 + 1 GT exp).
HYBRID_COST = SchemeCost(
    name="hybrid PKE+IBE",
    encrypt=OpBudget(
        pairings=1, scalar_mults=3, hash_to_group=1, gt_exps=1,
        miller_loops=1, final_exps=1,
    ),
    decrypt=OpBudget(pairings=1, scalar_mults=1, miller_loops=1, final_exps=1),
    notes="2 group elements per ciphertext (TRE: 1)",
)


def multiserver_cost(servers: int) -> SchemeCost:
    """§5.3.5: one r·G_i per server; decryption is ONE N-fold
    multi-pairing (N Miller loops, one shared final exponentiation)."""
    return SchemeCost(
        name=f"multi-server (N={servers})",
        encrypt=OpBudget(
            pairings=1,
            scalar_mults=servers + 1,
            hash_to_group=1,
            point_adds=servers - 1,
            miller_loops=1,
            final_exps=1,
        ),
        decrypt=OpBudget(
            pairings=servers, gt_exps=1,
            miller_loops=servers, final_exps=1, multi_pairs=1,
        ),
    )


def resilient_cost(depth: int) -> SchemeCost:
    """§6 construction at tree depth d (decrypting from a leaf key)."""
    return SchemeCost(
        name=f"resilient (d={depth})",
        encrypt=OpBudget(
            # U_0 = r·G plus U_i = r·P_i for levels 2..d.
            pairings=1, scalar_mults=depth, hash_to_group=depth, gt_exps=1,
            miller_loops=1, final_exps=1,
        ),
        decrypt=OpBudget(
            pairings=depth, gt_exps=1,
            miller_loops=depth, final_exps=1, multi_pairs=1,
        ),
        notes="decrypt pairings = 1 + (d-1) translation ratios",
    )


ALL_FIXED_COSTS = (TRE_COST, IDTRE_COST, HYBRID_COST)

# Every pairing-product *verification* is one multi-pairing ratio check:
# two (or more) Miller loops, a single shared final exponentiation.
UPDATE_VERIFY_COST = OpBudget(
    pairings=2, hash_to_group=1, miller_loops=2, final_exps=1, multi_pairs=1
)
RECEIVER_KEY_CHECK_COST = OpBudget(
    pairings=2, miller_loops=2, final_exps=1, multi_pairs=1
)

# ----------------------------------------------------------------------
# Precomputed variants (same primary op counts — the fast paths change
# *how* an operation runs, never how many run; the sub-counters assert
# the fast paths actually engaged).
# ----------------------------------------------------------------------

# §5.1 Encrypt after TimedReleaseScheme.precompute_sender: both scalar
# multiplications (rG, r·asG) come from fixed-base tables.
TRE_PRECOMP_ENCRYPT_COST = OpBudget(
    pairings=1, scalar_mults=2, hash_to_group=1, fixed_base_mults=2,
    miller_loops=1, final_exps=1,
)

# §5.1 Encrypt after precompute_sender(..., time_labels=[T]) — the GT
# fast path.  Unlike the other precomputed variants this one genuinely
# *eliminates* primary operations rather than rerouting them: the
# constant pairing ê(asG, H1(T)) is cached, so the pairing, the
# hash-to-curve and the r·asG multiplication all vanish, leaving one
# fixed-base U = rG and one table-driven GT exponentiation g^r.  This
# is the encryption collapse the E4c table demonstrates
# (dominant cost: 13 -> ~0.8 scalar-mult equivalents).
TRE_GT_ENCRYPT_COST = OpBudget(
    scalar_mults=1, fixed_base_mults=1, gt_exps=1, gt_fixed_base_exps=1,
)


def broadcast_encrypt_cost(recipients: int, warm: bool = True) -> OpBudget:
    """One broadcast encryption to ``recipients`` receivers.

    Warm (GT caches built by ``BroadcastTimedReleaseScheme.
    precompute_sender``): one shared fixed-base ``U = rG`` plus one
    table-driven GT exponentiation per recipient — no pairings at all.
    Cold: each recipient costs a hash-to-curve, an ``r·as_iG``
    multiplication and a pairing, plus the shared ``rG``.
    """
    if recipients < 1:
        raise ValueError("a broadcast needs at least one recipient")
    if warm:
        return OpBudget(
            scalar_mults=1, fixed_base_mults=1,
            gt_exps=recipients, gt_fixed_base_exps=recipients,
        )
    return OpBudget(
        pairings=recipients, scalar_mults=recipients + 1,
        hash_to_group=recipients,
        miller_loops=recipients, final_exps=recipients,
    )

# Update self-authentication against a precomputed (G, sG): both
# pairings evaluate cached Miller lines inside one multi-pairing.
PRECOMP_UPDATE_VERIFY_COST = OpBudget(
    pairings=2, hash_to_group=1, precomputed_pairings=2,
    miller_loops=2, final_exps=1, multi_pairs=1,
)

def tre_batch_decrypt_cost(n: int) -> OpBudget:
    """Decrypting ``n`` ciphertexts sharing one ``I_T`` via cached lines.

    One pairing and one GT exponentiation per ciphertext, with every
    pairing a line evaluation against the shared update.  The pairings
    stay independent (each ciphertext needs its own GT value), so no
    final exponentiations are shared here — parallelism, not
    multi-pairing, is this path's lever (see :func:`parallel_speedup`).
    """
    return OpBudget(
        pairings=n, gt_exps=n, precomputed_pairings=n,
        miller_loops=n, final_exps=n,
    )


# ----------------------------------------------------------------------
# Multi-pairing and process-parallel speedup formulas.
# ----------------------------------------------------------------------


def multi_pairing_saving(k: int, final_exp_weight: float = 2.0) -> float:
    """Scalar-mult equivalents saved by fusing ``k`` pairings into one
    multi-pairing: ``k - 1`` final exponentiations disappear."""
    if k < 1:
        raise ValueError("a multi-pairing needs at least one pair")
    return (k - 1) * final_exp_weight


def multi_pairing_speedup(
    k: int,
    pairing_weight: float = 10.0,
    final_exp_weight: float = 2.0,
) -> float:
    """Predicted ratio (k independent pairings) / (one k-fold multi-pairing).

    With a pairing worth ``pairing_weight`` equivalents of which
    ``final_exp_weight`` is the final exponentiation, fusing shares all
    but one of the ``k`` final exponentiations.
    """
    sequential = k * pairing_weight
    fused = sequential - multi_pairing_saving(k, final_exp_weight)
    return sequential / fused


def parallel_speedup(
    workers: int,
    items: int,
    serial_fraction: float = 0.02,
    per_item_overhead: float = 0.0,
) -> float:
    """Amdahl-style model for :mod:`repro.parallel` batch sharding.

    ``serial_fraction`` covers the parent-side work that cannot shard
    (label checks, one update verification, result assembly);
    ``per_item_overhead`` the serialize/deserialize cost per payload as
    a fraction of per-item compute.  With fewer items than workers the
    extra workers idle.
    """
    if workers <= 1 or items <= 1:
        return 1.0
    effective = min(workers, items)
    parallel_fraction = 1.0 - serial_fraction
    denominator = (
        serial_fraction
        + parallel_fraction / effective
        + per_item_overhead
    )
    return 1.0 / denominator


def cost_table() -> str:
    """Render the fixed budgets as an aligned table (for docs/benches)."""
    from repro.analysis.table import format_table

    rows = []
    for cost in ALL_FIXED_COSTS + (multiserver_cost(3), resilient_cost(8)):
        rows.append((
            cost.name,
            f"{cost.encrypt.pairings}P {cost.encrypt.scalar_mults}M "
            f"{cost.encrypt.hash_to_group}H {cost.encrypt.gt_exps}E",
            f"{cost.decrypt.pairings}P {cost.decrypt.scalar_mults}M "
            f"{cost.decrypt.hash_to_group}H {cost.decrypt.gt_exps}E",
            f"{cost.encrypt.dominant_cost():.0f}",
            f"{cost.decrypt.dominant_cost():.0f}",
        ))
    return format_table(
        ("scheme", "encrypt", "decrypt", "enc cost*", "dec cost*"),
        rows,
        title="Symbolic op budgets (*scalar-mult equivalents, pairing=10)",
    )
