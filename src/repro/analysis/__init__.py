"""Presentation helpers for benchmark and example output."""

from repro.analysis.table import format_table

__all__ = ["format_table"]
