"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment (E1..E12 in DESIGN.md) lives in its own file.  Each
file both (a) registers pytest-benchmark timings for the operations the
paper's claims are about and (b) emits a claim-versus-measured table
directly to the real stdout, so ``pytest benchmarks/ --benchmark-only |
tee bench_output.txt`` captures the same rows EXPERIMENTS.md records.

``ss512`` (~80-bit security, contemporary with the 2005 paper) is the
default parameter set for cryptographic timings; count-based and
simulation experiments use ``toy64`` since their results are
size-independent.
"""

from __future__ import annotations

import pathlib

import pytest

from benchmarks.trajectory import BenchTrajectory
from repro.core.keys import UserKeyPair
from repro.core.timeserver import PassiveTimeServer
from repro.crypto.rng import seeded_rng
from repro.pairing.api import PairingGroup

RELEASE = b"2030-01-01T00:00:00Z"
KEY_MESSAGE = b"k" * 32  # A 32-byte session key, the paper's unit payload.


_REPORTS: list[str] = []

# Run-wide machine-readable record; experiments add entries through the
# ``trajectory`` fixture and the terminal-summary hook merges them into
# BENCH_pairing.json at the repo root.
TRAJECTORY = BenchTrajectory()


@pytest.fixture(scope="session")
def trajectory() -> BenchTrajectory:
    return TRAJECTORY


def emit(text: str) -> None:
    """Queue a claim-vs-measured table for the end-of-run summary.

    Tables are printed by ``pytest_terminal_summary`` (after capture is
    released, so they reach bench_output.txt) and also appended to
    ``benchmarks/claim_tables.txt`` for later inspection.
    """
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter):
    if TRAJECTORY.entries:
        path = TRAJECTORY.write()
        terminalreporter.section("bench trajectory")
        for line in TRAJECTORY.summary_lines():
            terminalreporter.write_line(line)
        terminalreporter.write_line(f"merged into {path}")
    if not _REPORTS:
        return
    terminalreporter.section("experiment claim tables (DESIGN.md E-index)")
    for table in _REPORTS:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
    report_path = pathlib.Path(__file__).parent / "claim_tables.txt"
    report_path.write_text("\n\n".join(_REPORTS) + "\n")


@pytest.fixture(scope="session")
def bench_group() -> PairingGroup:
    return PairingGroup("ss512", family="A")


@pytest.fixture(scope="session")
def toy_group() -> PairingGroup:
    return PairingGroup("toy64", family="A")


@pytest.fixture(scope="session")
def bench_rng():
    return seeded_rng("benchmarks")


@pytest.fixture(scope="session")
def bench_server(bench_group, bench_rng) -> PassiveTimeServer:
    return PassiveTimeServer(bench_group, rng=bench_rng)


@pytest.fixture(scope="session")
def bench_user(bench_group, bench_server, bench_rng) -> UserKeyPair:
    return UserKeyPair.generate(bench_group, bench_server.public_key, bench_rng)


@pytest.fixture(scope="session")
def bench_update(bench_group, bench_server):
    return bench_server.publish_update(RELEASE)


@pytest.fixture(scope="session")
def toy_server(toy_group, bench_rng) -> PassiveTimeServer:
    return PassiveTimeServer(toy_group, rng=bench_rng)


@pytest.fixture(scope="session")
def toy_user(toy_group, toy_server, bench_rng) -> UserKeyPair:
    return UserKeyPair.generate(toy_group, toy_server.public_key, bench_rng)
