"""E5 — multi-server TRE cost versus the number of time servers.

Paper claim (§5.3.5): splitting trust over N servers costs one extra
``rG_i`` header point per server and one extra pairing per server at
decryption — linear in N, with N=1 degenerating to plain TRE.
"""

import pytest

from benchmarks.conftest import KEY_MESSAGE, RELEASE, emit
from repro.analysis import format_table
from repro.core.multiserver import (
    MultiServerTimedReleaseScheme,
    MultiServerUserKeyPair,
)
from repro.core.timeserver import PassiveTimeServer
from repro.crypto.rng import seeded_rng

SERVER_COUNTS = (1, 2, 3, 5, 8)


def _setup(group, n):
    rng = seeded_rng(f"e5-{n}")
    servers = [PassiveTimeServer(group, rng=rng) for _ in range(n)]
    scheme = MultiServerTimedReleaseScheme(group, [s.public_key for s in servers])
    user = MultiServerUserKeyPair.generate(
        group, [s.public_key for s in servers], rng
    )
    updates = [s.publish_update(RELEASE) for s in servers]
    return rng, servers, scheme, user, updates


@pytest.mark.parametrize("n", [1, 3])
def test_e5_encrypt(benchmark, bench_group, n):
    rng, _, scheme, user, _ = _setup(bench_group, n)
    benchmark.pedantic(
        scheme.encrypt,
        args=(KEY_MESSAGE, user.public, RELEASE, rng),
        kwargs={"verify_receiver_key": False},
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("n", [1, 3])
def test_e5_decrypt(benchmark, bench_group, n):
    rng, _, scheme, user, updates = _setup(bench_group, n)
    ct = scheme.encrypt(
        KEY_MESSAGE, user.public, RELEASE, rng, verify_receiver_key=False
    )
    result = benchmark.pedantic(
        scheme.decrypt,
        args=(ct, user.private, updates),
        kwargs={"verify_updates": False},
        rounds=3,
        iterations=1,
    )
    assert result == KEY_MESSAGE


def test_e5_claim_table(benchmark, bench_group):
    group = bench_group
    rows = []
    sizes = {}
    pairings = {}
    for n in SERVER_COUNTS:
        rng, _, scheme, user, updates = _setup(group, n)
        ct = scheme.encrypt(
            KEY_MESSAGE, user.public, RELEASE, rng, verify_receiver_key=False
        )
        with group.counters.measure() as dec_ops:
            scheme.decrypt(ct, user.private, updates, verify_updates=False)
        sizes[n] = ct.size_bytes(group)
        pairings[n] = dec_ops.get("pairing", 0)
        rows.append((
            n, len(ct.u_points), sizes[n], pairings[n],
            dec_ops.get("gt_exp", 0),
        ))
    emit(format_table(
        ("servers N", "header points", "ct bytes", "dec pairings", "dec GT-exps"),
        rows,
        title="E5: multi-server TRE cost vs N — claim: linear headers & "
              "pairings, N=1 == plain TRE",
    ))

    # Linearity assertions.
    assert pairings == {n: n for n in SERVER_COUNTS}
    step = sizes[2] - sizes[1]
    assert sizes[8] - sizes[5] == 3 * step
    benchmark(lambda: None)
