"""E3 — time-lock puzzles: cost and imprecision of the §2.1 approach.

Paper claims: puzzle solving "could take up considerable computational
resources" (linear in the delay), can only realize *relative* time
("with reference to the start of solving"), and the effective release
time depends on machine speed — "different machines work at different
speeds".  TRE decryption by contrast is constant-cost.

Rows: solve wall-time versus the squaring parameter t (expected linear);
and the simulated release-time spread across a heterogeneous machine
population (×0.5 / ×1 / ×2 speed, plus a late starter), against TRE's
spread of zero (opening is gated by the broadcast, not local compute).
"""

import time

import pytest

from benchmarks.conftest import KEY_MESSAGE, RELEASE, emit
from repro.analysis import format_table
from repro.baselines.timelock_puzzle import (
    SimulatedMachine,
    TimeLockPuzzle,
    release_time_spread,
)
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import seeded_rng

SQUARING_COUNTS = (1024, 4096, 16384, 65536)


@pytest.fixture(scope="module")
def tlp():
    return TimeLockPuzzle(modulus_bits=512)


@pytest.mark.parametrize("squarings", [1024, 16384])
def test_e3_puzzle_solve(benchmark, tlp, squarings):
    puzzle = tlp.seal(KEY_MESSAGE, squarings, seeded_rng("e3"))
    result = benchmark.pedantic(tlp.solve, args=(puzzle,), rounds=3, iterations=1)
    assert result.plaintext == KEY_MESSAGE


def test_e3_puzzle_seal(benchmark, tlp):
    # Sealing uses the phi(n) trapdoor: cheap regardless of t.
    rng = seeded_rng("e3-seal")
    benchmark(tlp.seal, KEY_MESSAGE, 2**40, rng)


def test_e3_tre_decrypt_reference(benchmark, bench_group, bench_server,
                                  bench_user, bench_update):
    scheme = TimedReleaseScheme(bench_group)
    ct = scheme.encrypt(
        KEY_MESSAGE, bench_user.public, bench_server.public_key, RELEASE,
        seeded_rng("e3-tre"), verify_receiver_key=False,
    )
    benchmark(scheme.decrypt, ct, bench_user, bench_update)


def test_e3_claim_table(benchmark, tlp):
    rng = seeded_rng("e3-table")
    rows = []
    for squarings in SQUARING_COUNTS:
        puzzle = tlp.seal(KEY_MESSAGE, squarings, rng)
        start = time.perf_counter()
        tlp.solve(puzzle)
        elapsed = time.perf_counter() - start
        rows.append((squarings, f"{elapsed * 1000:.1f}"))
    emit(format_table(
        ("squarings t", "solve ms"),
        rows,
        title="E3a: RSW solve time vs t — claim: linear (relative time only)",
    ))

    rate = tlp.measure_squaring_rate(sample=2000)
    puzzle = tlp.seal(KEY_MESSAGE, squarings=int(rate * 60), rng=rng)  # "1 minute"
    machines = [
        SimulatedMachine("half-speed", rate / 2),
        SimulatedMachine("reference", rate),
        SimulatedMachine("double-speed", rate * 2),
        SimulatedMachine("late-start(+5min)", rate, start_delay_seconds=300),
    ]
    spread = release_time_spread(puzzle, machines)
    rows = [(name, f"{seconds:.0f}") for name, seconds in spread.items()]
    rows.append(("TRE (any machine)", "release instant + update jitter"))
    emit(format_table(
        ("machine", "opens after (s)"),
        rows,
        title="E3b: effective release of a '60s' puzzle across machines — "
              "claim: uncontrollable, coarse-grained release",
    ))

    # Shape assertions: a half-speed machine takes 4x a double-speed
    # one, and a late start shifts release one-for-one.
    assert spread["half-speed"] == pytest.approx(4 * spread["double-speed"], rel=0.01)
    assert spread["late-start(+5min)"] - spread["reference"] == pytest.approx(300)
    benchmark(lambda: None)
