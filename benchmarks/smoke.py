"""Smoke benchmark for the precomputation layer.

Runs the three direct-versus-precomputed comparisons the trajectory
tracks and merges the results into ``BENCH_pairing.json``:

* fixed-base table vs. generic ``scalar_mult``;
* cached Miller lines vs. the full pairing;
* ``decrypt_batch`` over N same-label ciphertexts vs. N independent
  ``decrypt`` calls.

Usage::

    PYTHONPATH=src python -m benchmarks.smoke                 # toy64
    PYTHONPATH=src python -m benchmarks.smoke --params ss512  # acceptance run

Direct paths are timed through the cache-free primitives (``curve
.scalar_mult`` / ``tate.pair``) so prior precomputation cannot leak into
the baseline.
"""

from __future__ import annotations

import argparse
import sys

from benchmarks.trajectory import BenchTrajectory, time_median
from repro.core.keys import UserKeyPair
from repro.core.timeserver import PassiveTimeServer
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import seeded_rng
from repro.pairing.api import PairingGroup

RELEASE = b"2030-01-01T00:00:00Z"


def bench_scalar_mult(group, rng, trajectory, rounds):
    curve = group.ssc.curve
    point = group.random_point(rng)
    scalars = [group.random_scalar(rng) for _ in range(8)]

    def direct():
        for k in scalars:
            curve.scalar_mult(point, k)

    setup_s = time_median(lambda: group.precompute(point), rounds=1)
    table = group.precompute(point)

    def fixed_base():
        for k in scalars:
            table.mult(k)

    per = len(scalars)
    d = trajectory.measure(
        group, "scalar_mult", "direct", direct, rounds, batch=per
    )
    f = trajectory.measure(
        group, "scalar_mult", "fixed_base", fixed_base, rounds,
        batch=per, setup_ms=round(setup_s * 1000, 4),
        table_points=table.table_points,
    )
    return d / f


def bench_pairing(group, rng, trajectory, rounds):
    p = group.random_point(rng)
    others = [group.random_point(rng) for _ in range(4)]

    def direct():
        for q in others:
            group.tate.pair(p, q)

    setup_s = time_median(lambda: group.tate.precompute_lines(p), rounds=1)
    lines = group.tate.precompute_lines(p)

    def precomputed():
        for q in others:
            group.tate.pair_with_precomp(lines, q)

    per = len(others)
    d = trajectory.measure(
        group, "pairing", "direct", direct, rounds, batch=per
    )
    f = trajectory.measure(
        group, "pairing", "precomputed", precomputed, rounds,
        batch=per, setup_ms=round(setup_s * 1000, 4), lines=len(lines),
    )
    return d / f


def bench_batch_decrypt(group, rng, trajectory, rounds, batch):
    scheme = TimedReleaseScheme(group)
    server = PassiveTimeServer(group, rng=rng)
    user = UserKeyPair.generate(group, server.public_key, rng)
    update = server.publish_update(RELEASE)
    cts = [
        scheme.encrypt(
            f"payload {i}".encode() * 4, user.public, server.public_key,
            RELEASE, rng, verify_receiver_key=False,
        )
        for i in range(batch)
    ]

    def individual():
        group.clear_precomputations()
        return [scheme.decrypt(ct, user, update) for ct in cts]

    def batched():
        group.clear_precomputations()
        return scheme.decrypt_batch(cts, user, update)

    assert individual() == batched()
    op = f"tre_decrypt_x{batch}"
    d = trajectory.measure(group, op, "direct", individual, rounds, batch=batch)
    f = trajectory.measure(group, op, "batch_precomp", batched, rounds, batch=batch)
    group.clear_precomputations()
    return d / f


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--params", default="toy64",
                        help="parameter set (toy64, ss512, ...)")
    parser.add_argument("--batch", type=int, default=32,
                        help="ciphertexts in the batch-decrypt comparison")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per measurement (median kept)")
    parser.add_argument("--output", default=None,
                        help="trajectory file (default: repo-root "
                             "BENCH_pairing.json)")
    args = parser.parse_args(argv)

    group = PairingGroup(args.params, family="A")
    rng = seeded_rng(f"smoke:{args.params}")
    trajectory = BenchTrajectory(args.output)

    print(f"precomputation smoke benchmark on {args.params} "
          f"(q={group.q.bit_length()} bits, rounds={args.rounds})")
    ratios = {
        "fixed-base scalar mult": bench_scalar_mult(
            group, rng, trajectory, args.rounds
        ),
        "precomputed pairing": bench_pairing(
            group, rng, trajectory, args.rounds
        ),
        f"batch decrypt x{args.batch}": bench_batch_decrypt(
            group, rng, trajectory, args.rounds, args.batch
        ),
    }
    path = trajectory.write()

    for line in trajectory.summary_lines():
        print("  " + line)
    print(f"trajectory merged into {path}")
    for label, ratio in ratios.items():
        print(f"{label}: {ratio:.2f}x vs direct")
    return 0


if __name__ == "__main__":
    sys.exit(main())
