"""Smoke benchmark for the precomputation and batching layers.

Runs the direct-versus-fast-path comparisons the trajectory tracks and
merges the results into ``BENCH_pairing.json``:

* fixed-base table vs. generic ``scalar_mult``;
* cached Miller lines vs. the full pairing;
* windowed GT fixed-base table vs. plain unitary exponentiation;
* warm-path TRE encryption (cached ``ê(asG, H1(T))`` + GT table) vs.
  the cache-free cold path, at x1 and x{batch};
* one N-recipient broadcast (shared ``U``, shared DEM payload) vs.
  N per-recipient warm encrypts;
* ``decrypt_batch`` over N same-label ciphertexts vs. N independent
  ``decrypt`` calls;
* the multi-pairing verify path (one combined Miller loop, ONE final
  exponentiation) vs. two sequential pairings;
* archive catch-up throughput: ``verify_archive`` over an N-epoch
  backlog (shared ``(G, sG)`` Miller lines) vs. N naive per-update
  verifications — the cost a resilient client pays after an outage;
* process-parallel ``decrypt_batch`` sharding vs. the sequential path
  (recorded with the machine's CPU count — on a single-core box the
  "speedup" honestly reports ~1x).

Usage::

    PYTHONPATH=src python -m benchmarks.smoke                 # toy64
    PYTHONPATH=src python -m benchmarks.smoke --params ss512  # acceptance run

Direct paths are timed through the cache-free primitives (``curve
.scalar_mult`` / ``tate.pair``) so prior precomputation cannot leak into
the baseline.  ``benchmarks.trajectory --check`` reuses :func:`run_all`
to re-measure these entries and diff them against the committed file.
"""

from __future__ import annotations

import argparse
import sys

from benchmarks.trajectory import BenchTrajectory, time_median
from repro.core.keys import ServerKeyPair, UserKeyPair
from repro.core.timeserver import PassiveTimeServer, epoch_label, verify_archive
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import seeded_rng
from repro.pairing.api import PairingGroup

RELEASE = b"2030-01-01T00:00:00Z"


def bench_scalar_mult(group, rng, trajectory, rounds):
    curve = group.ssc.curve
    point = group.random_point(rng)
    scalars = [group.random_scalar(rng) for _ in range(8)]

    def direct():
        for k in scalars:
            curve.scalar_mult(point, k)

    setup_s = time_median(lambda: group.precompute(point), rounds=1)
    table = group.precompute(point)

    def fixed_base():
        for k in scalars:
            table.mult(k)

    per = len(scalars)
    d = trajectory.measure(
        group, "scalar_mult", "direct", direct, rounds, batch=per
    )
    f = trajectory.measure(
        group, "scalar_mult", "fixed_base", fixed_base, rounds,
        batch=per, setup_ms=round(setup_s * 1000, 4),
        table_points=table.table_points,
    )
    return d / f


def bench_pairing(group, rng, trajectory, rounds):
    p = group.random_point(rng)
    others = [group.random_point(rng) for _ in range(4)]

    def direct():
        for q in others:
            group.tate.pair(p, q)

    setup_s = time_median(lambda: group.tate.precompute_lines(p), rounds=1)
    lines = group.tate.precompute_lines(p)

    def precomputed():
        for q in others:
            group.tate.pair_with_precomp(lines, q)

    per = len(others)
    d = trajectory.measure(
        group, "pairing", "direct", direct, rounds, batch=per
    )
    f = trajectory.measure(
        group, "pairing", "precomputed", precomputed, rounds,
        batch=per, setup_ms=round(setup_s * 1000, 4), lines=len(lines),
    )
    return d / f


def bench_gt_exp(group, rng, trajectory, rounds):
    """Windowed GT fixed-base table vs plain wNAF exponentiation.

    The direct path clears the group's precomputations first, so
    ``gt ** k`` runs the generic unitary exponentiation; the fast path
    reads the table built by ``precompute_gt``.
    """
    gt = group.pair(group.random_point(rng), group.random_point(rng))
    scalars = [group.random_scalar(rng) for _ in range(8)]

    def direct():
        group.clear_precomputations()
        for k in scalars:
            gt ** k

    per = len(scalars)
    d = trajectory.measure(group, "gt_exp", "direct", direct, rounds, batch=per)
    setup_s = time_median(lambda: group.precompute_gt(gt), rounds=1)
    table = group.precompute_gt(gt)

    def fixed_base():
        for k in scalars:
            gt ** k

    f = trajectory.measure(
        group, "gt_exp", "fixed_base", fixed_base, rounds,
        batch=per, setup_ms=round(setup_s * 1000, 4),
        table_elements=table.table_elements,
    )
    group.clear_precomputations()
    return d / f


def bench_encrypt(group, rng, trajectory, rounds, batch):
    """Sender GT fast path: cold encrypt vs warm (cached ê(asG, H1(T))).

    Records ``encrypt_x1`` and ``encrypt_x{batch}``.  The direct
    variant clears every cache inside the timed function; the warm
    variant runs after ``precompute_sender(..., time_labels=[T])`` and
    produces byte-identical ciphertexts (asserted with a replayed rng).
    """
    scheme = TimedReleaseScheme(group)
    server = PassiveTimeServer(group, rng=rng)
    user = UserKeyPair.generate(group, server.public_key, rng)
    message = b"gt fast path payload" * 2

    def encrypt_n(n):
        for i in range(n):
            scheme.encrypt(
                message, user.public, server.public_key, RELEASE, rng,
                verify_receiver_key=False,
            )

    def cold_n(n):
        group.clear_precomputations()
        scheme.clear_sender_cache()
        encrypt_n(n)

    ratios = {}
    for n in (1, batch):
        op = f"encrypt_x{n}"
        d = trajectory.measure(
            group, op, "direct", lambda: cold_n(n), rounds, batch=n
        )
        scheme.precompute_sender(
            user.public, server.public_key, time_labels=[RELEASE]
        )
        f = trajectory.measure(
            group, op, "gt_table", lambda: encrypt_n(n), rounds, batch=n
        )
        ratios[n] = d / f
    # Byte-identity spot check: same seeded rng, cold vs warm.
    check = seeded_rng("smoke:encrypt-identity")
    warm_ct = scheme.encrypt(
        message, user.public, server.public_key, RELEASE, check,
        verify_receiver_key=False,
    )
    group.clear_precomputations()
    scheme.clear_sender_cache()
    check = seeded_rng("smoke:encrypt-identity")
    cold_ct = scheme.encrypt(
        message, user.public, server.public_key, RELEASE, check,
        verify_receiver_key=False,
    )
    assert warm_ct.to_bytes(group) == cold_ct.to_bytes(group)
    group.clear_precomputations()
    return ratios


def bench_encrypt_broadcast(group, rng, trajectory, rounds, batch):
    """One broadcast to N recipients vs N per-recipient warm encrypts.

    Both variants run with warm GT caches, so the entry isolates the
    *structural* broadcast saving — one shared ``U = rG`` and one DEM
    payload instead of N of each — not the (already measured) GT fast
    path itself.
    """
    from repro.core.broadcast import BroadcastTimedReleaseScheme

    server = PassiveTimeServer(group, rng=rng)
    users = [
        UserKeyPair.generate(group, server.public_key, rng)
        for _ in range(batch)
    ]
    receivers = [u.public for u in users]
    message = b"broadcast payload" * 4
    scheme = TimedReleaseScheme(group)
    broadcast = BroadcastTimedReleaseScheme(group)
    for public in receivers:
        scheme.precompute_sender(
            public, server.public_key, time_labels=[RELEASE]
        )
    broadcast.precompute_sender(
        receivers, server.public_key, time_labels=[RELEASE]
    )

    def per_recipient():
        for public in receivers:
            scheme.encrypt(
                message, public, server.public_key, RELEASE, rng,
                verify_receiver_key=False,
            )

    def broadcast_once():
        broadcast.encrypt_broadcast(
            message, receivers, server.public_key, RELEASE, rng,
            verify_receiver_keys=False,
        )

    op = f"broadcast_x{batch}"
    d = trajectory.measure(
        group, op, "direct", per_recipient, rounds, batch=batch
    )
    f = trajectory.measure(
        group, op, "shared_u", broadcast_once, rounds, batch=batch
    )
    group.clear_precomputations()
    return d / f


def bench_batch_decrypt(group, rng, trajectory, rounds, batch):
    scheme = TimedReleaseScheme(group)
    server = PassiveTimeServer(group, rng=rng)
    user = UserKeyPair.generate(group, server.public_key, rng)
    update = server.publish_update(RELEASE)
    cts = [
        scheme.encrypt(
            f"payload {i}".encode() * 4, user.public, server.public_key,
            RELEASE, rng, verify_receiver_key=False,
        )
        for i in range(batch)
    ]

    def individual():
        group.clear_precomputations()
        return [scheme.decrypt(ct, user, update) for ct in cts]

    def batched():
        group.clear_precomputations()
        return scheme.decrypt_batch(cts, user, update)

    assert individual() == batched()
    op = f"tre_decrypt_x{batch}"
    d = trajectory.measure(group, op, "direct", individual, rounds, batch=batch)
    f = trajectory.measure(group, op, "batch_precomp", batched, rounds, batch=batch)
    group.clear_precomputations()
    return d / f


def bench_multi_pair(group, rng, trajectory, rounds):
    """Verify path: ê(sG, H1(T)) == ê(G, I_T) as two pairings vs one
    multi-pairing ratio check (shared final exponentiation).

    Both variants evaluate the cached Miller lines of the fixed
    ``(G, sG)`` — exactly the archive catch-up configuration — so the
    difference isolates the saved final exponentiation plus the saved
    GT comparison.
    """
    from repro.core.bls import BLSSignatureScheme

    keypair = ServerKeyPair.generate(group, rng)
    public = keypair.public
    bls = BLSSignatureScheme(group)
    messages = [f"mp-{i}".encode() for i in range(4)]
    signatures = [bls.sign(keypair, m) for m in messages]
    hashes = [bls.hash_message(m) for m in messages]
    bls.precompute_public(public)

    def sequential():
        for h_point, signature in zip(hashes, signatures):
            left = group.pair(public.s_generator, h_point)
            right = group.pair(public.generator, signature)
            assert left == right

    def fused():
        for h_point, signature in zip(hashes, signatures):
            assert group.pair_ratio_is_one(
                ((public.s_generator, h_point),),
                ((public.generator, signature),),
            )

    per = len(messages)
    d = trajectory.measure(
        group, "multi_pair", "direct", sequential, rounds, batch=per
    )
    f = trajectory.measure(
        group, "multi_pair", "ratio_check", fused, rounds, batch=per
    )
    group.clear_precomputations()
    return d / f


def bench_catchup(group, rng, trajectory, rounds, batch):
    """Archive catch-up: ``verify_archive`` vs naive per-update verify.

    This is the client-after-an-outage workload from ``repro.service``:
    a backlog of ``batch`` epoch updates must each pass
    ``ê(sG, H1(T)) == ê(G, I_T)`` before being trusted.  The direct
    path clears the caches and verifies update-by-update; the archive
    path shares the ``(G, sG)`` Miller lines across the whole backlog.
    """
    server = PassiveTimeServer(group, rng=rng)
    updates = [
        server.publish_update(epoch_label(epoch)) for epoch in range(batch)
    ]
    public = server.public_key

    def naive():
        group.clear_precomputations()
        assert all(u.verify(group, public) for u in updates)

    def catch_up():
        group.clear_precomputations()
        assert verify_archive(group, public, updates) == []

    op = f"catchup_x{batch}"
    d = trajectory.measure(group, op, "direct", naive, rounds, batch=batch)
    f = trajectory.measure(
        group, op, "shared_lines", catch_up, rounds, batch=batch
    )
    group.clear_precomputations()
    return d / f


def bench_backend_pairing(group, rng, trajectory, rounds):
    """Full cold pairing under every available arithmetic backend.

    One fresh group per backend over the same parameters; the pure
    ``python`` backend is recorded as the ``direct`` variant, so the
    derived ``speedup_vs_direct`` rows are exactly the backend
    acceptance ratios (e.g. ``pairing_backend:ss512:montgomery``).
    Each timed call clears the caches first — this is the *cold* path,
    where the Montgomery backend's record-then-evaluate strategy has to
    pay its own recording cost.  Byte-identity across backends is
    asserted on the way.
    """
    from repro.math.backend import available_backends

    s1, s2 = group.random_scalar(rng), group.random_scalar(rng)
    medians = {}
    reference_bytes = None
    for name in available_backends():
        g = PairingGroup(group.params, family=group.family, backend=name)
        p_point = g.mul(g.generator, s1)
        q_point = g.mul(g.generator, s2)
        gt_bytes = g.pair(p_point, q_point).to_bytes()
        if reference_bytes is None:
            reference_bytes = gt_bytes
        assert gt_bytes == reference_bytes, f"backend {name} diverged"

        def cold(g=g, p_point=p_point, q_point=q_point):
            g.clear_precomputations()
            g.tate.pair(p_point, q_point)

        variant = "direct" if name == "python" else name
        medians[name] = trajectory.measure(
            g, "pairing_backend", variant, cold, rounds, batch=1
        )
        g.clear_precomputations()
    fastest = min(
        (n for n in medians if n != "python"), key=medians.__getitem__
    )
    return medians["python"] / medians[fastest]


def bench_parallel_decrypt(group, rng, trajectory, rounds, batch, workers=None):
    """``decrypt_batch`` sequential vs sharded across worker processes.

    Honest numbers: the entry records the CPU count the run actually
    had (``cpus``); with one core the sharded path cannot win and the
    recorded ratio documents the process overhead instead.
    """
    from repro.parallel import available_workers

    cpus = available_workers()
    if workers is None:
        workers = max(2, cpus)
    scheme = TimedReleaseScheme(group)
    server = PassiveTimeServer(group, rng=rng)
    user = UserKeyPair.generate(group, server.public_key, rng)
    update = server.publish_update(RELEASE)
    cts = [
        scheme.encrypt(
            f"payload {i}".encode() * 4, user.public, server.public_key,
            RELEASE, rng, verify_receiver_key=False,
        )
        for i in range(batch)
    ]

    def sequential():
        return scheme.decrypt_batch(cts, user, update)

    def sharded():
        return scheme.decrypt_batch(cts, user, update, workers=workers)

    assert sequential() == sharded()
    op = f"parallel_decrypt_x{batch}"
    d = trajectory.measure(
        group, op, "direct", sequential, rounds, batch=batch, cpus=cpus
    )
    f = trajectory.measure(
        group, op, f"workers{workers}", sharded, rounds,
        batch=batch, cpus=cpus, workers=workers,
    )
    group.clear_precomputations()
    return d / f


def run_all(group, rng, trajectory, rounds, batch, workers=None):
    """Every smoke comparison; returns ``{label: speedup_ratio}``.

    Shared by the CLI below and ``benchmarks.trajectory --check``.
    """
    encrypt_ratios = bench_encrypt(group, rng, trajectory, rounds, batch)
    return {
        "fixed-base scalar mult": bench_scalar_mult(
            group, rng, trajectory, rounds
        ),
        "precomputed pairing": bench_pairing(group, rng, trajectory, rounds),
        "GT fixed-base exp": bench_gt_exp(group, rng, trajectory, rounds),
        "warm encrypt x1": encrypt_ratios[1],
        f"warm encrypt x{batch}": encrypt_ratios[batch],
        f"broadcast x{batch}": bench_encrypt_broadcast(
            group, rng, trajectory, rounds, batch
        ),
        f"batch decrypt x{batch}": bench_batch_decrypt(
            group, rng, trajectory, rounds, batch
        ),
        "multi-pair verify": bench_multi_pair(group, rng, trajectory, rounds),
        f"archive catch-up x{batch}": bench_catchup(
            group, rng, trajectory, rounds, batch
        ),
        "backend pairing": bench_backend_pairing(
            group, rng, trajectory, rounds
        ),
        f"parallel decrypt x{batch}": bench_parallel_decrypt(
            group, rng, trajectory, rounds, batch, workers
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--params", default="toy64",
                        help="parameter set (toy64, ss512, ...)")
    parser.add_argument("--batch", type=int, default=32,
                        help="ciphertexts in the batch-decrypt comparison")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timing rounds per measurement (median kept)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the parallel-decrypt "
                             "comparison (default: max(2, cpu count))")
    parser.add_argument("--backend", default=None,
                        help="field-arithmetic backend for the main group "
                             "(python, montgomery, gmpy2, auto; default "
                             "auto — the backend comparison entry always "
                             "measures every available backend)")
    parser.add_argument("--output", default=None,
                        help="trajectory file (default: repo-root "
                             "BENCH_pairing.json)")
    args = parser.parse_args(argv)

    group = PairingGroup(args.params, family="A", backend=args.backend)
    rng = seeded_rng(f"smoke:{args.params}")
    trajectory = BenchTrajectory(args.output)

    print(f"precomputation smoke benchmark on {args.params} "
          f"(q={group.q.bit_length()} bits, backend={group.backend_name}, "
          f"rounds={args.rounds})")
    ratios = run_all(
        group, rng, trajectory, args.rounds, args.batch, args.workers
    )
    path = trajectory.write()

    for line in trajectory.summary_lines():
        print("  " + line)
    print(f"trajectory merged into {path}")
    for label, ratio in ratios.items():
        print(f"{label}: {ratio:.2f}x vs direct")
    return 0


if __name__ == "__main__":
    sys.exit(main())
