"""E16 — fixed-argument precomputation: amortized cost of the fast paths.

The deployment shape of the paper's schemes is dominated by *fixed*
arguments: a sender reuses the server generator and one receiver key
across many encryptions, and one broadcast update ``I_T`` unlocks every
ciphertext labelled ``T``.  This experiment measures how much the
fixed-base tables and cached Miller lines buy on that shape, and feeds
the machine-readable trajectory (``BENCH_pairing.json``).

Runs on toy64 so it stays cheap inside the default benchmark sweep; the
production-size numbers come from ``scripts/bench.sh --params ss512``.
"""

import pytest

from benchmarks.conftest import emit
from benchmarks.trajectory import time_median
from repro.analysis import format_table
from repro.core.keys import UserKeyPair
from repro.core.timeserver import PassiveTimeServer
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import seeded_rng
from repro.pairing.api import PairingGroup

RELEASE = b"2030-01-01T00:00:00Z"
BATCH = 16


@pytest.fixture(scope="module")
def e16_group():
    return PairingGroup("toy64", family="A")


def test_e16_fixed_base_mult(benchmark, e16_group, trajectory):
    group = e16_group
    rng = seeded_rng("e16")
    point = group.random_point(rng)
    scalar = group.random_scalar(rng)
    table = group.precompute(point)
    benchmark.pedantic(table.mult, args=(scalar,), rounds=5, iterations=1)


def test_e16_pair_with_precomp(benchmark, e16_group, trajectory):
    group = e16_group
    rng = seeded_rng("e16")
    p = group.random_point(rng)
    q = group.random_point(rng)
    lines = group.tate.precompute_lines(p)
    benchmark.pedantic(
        group.tate.pair_with_precomp, args=(lines, q), rounds=5, iterations=1
    )


def test_e16_claim_table(benchmark, e16_group, trajectory):
    group = e16_group
    rng = seeded_rng("e16-table")
    curve = group.ssc.curve
    scheme = TimedReleaseScheme(group)
    server = PassiveTimeServer(group, rng=rng)
    user = UserKeyPair.generate(group, server.public_key, rng)
    update = server.publish_update(RELEASE)

    point = group.random_point(rng)
    scalar = group.random_scalar(rng)
    other = group.random_point(rng)
    table = group.precompute(point)
    lines = group.tate.precompute_lines(point)
    cts = [
        scheme.encrypt(
            b"k" * 32, user.public, server.public_key, RELEASE, rng,
            verify_receiver_key=False,
        )
        for _ in range(BATCH)
    ]

    def batch_direct():
        group.clear_precomputations()
        for ct in cts:
            scheme.decrypt(ct, user, update)

    def batch_fast():
        group.clear_precomputations()
        scheme.decrypt_batch(cts, user, update)

    rows = []
    for name, direct_fn, fast_fn, note in (
        (
            "scalar mult",
            lambda: curve.scalar_mult(point, scalar),
            lambda: table.mult(scalar),
            f"{table.table_points} cached points",
        ),
        (
            "pairing",
            lambda: group.tate.pair(point, other),
            lambda: group.tate.pair_with_precomp(lines, other),
            f"{len(lines)} cached lines",
        ),
        (
            f"decrypt x{BATCH}",
            batch_direct,
            batch_fast,
            "one I_T, lines shared",
        ),
    ):
        direct_ms = time_median(direct_fn, rounds=3) * 1000
        fast_ms = time_median(fast_fn, rounds=3) * 1000
        rows.append((
            name, f"{direct_ms:.2f}", f"{fast_ms:.2f}",
            f"{direct_ms / fast_ms:.1f}x", note,
        ))
        # Namespaced: these rows time a SINGLE operation, while the
        # smoke benchmark's same-named entries time small batches —
        # sharing keys would make the trajectory self-inconsistent and
        # trip the --check gate with apples-to-oranges ratios.
        op = "e16_" + name.replace(" ", "_")
        trajectory.record(op, group.params.name, "direct", direct_ms / 1000, 3)
        trajectory.record(op, group.params.name, "precomputed", fast_ms / 1000, 3)
    group.clear_precomputations()

    # Multi-pairing: the update-verification equation as two cached-line
    # pairings (two final exponentiations) vs one fused ratio check
    # (ONE shared final exponentiation).
    from repro.core.bls import BLSSignatureScheme

    bls = BLSSignatureScheme(group)
    bls.precompute_public(server.public_key)
    h_point = bls.hash_message(RELEASE)
    public = server.public_key

    def verify_sequential():
        left = group.pair(public.s_generator, h_point)
        right = group.pair(public.generator, update.point)
        assert left == right

    def verify_fused():
        assert group.pair_ratio_is_one(
            ((public.s_generator, h_point),),
            ((public.generator, update.point),),
        )

    seq_ms = time_median(verify_sequential, rounds=3) * 1000
    fused_ms = time_median(verify_fused, rounds=3) * 1000
    rows.append((
        "update verify", f"{seq_ms:.2f}", f"{fused_ms:.2f}",
        f"{seq_ms / fused_ms:.1f}x", "2 final exps -> 1 (multi-pair)",
    ))
    trajectory.record("verify_2pair", group.params.name, "direct", seq_ms / 1000, 3)
    trajectory.record("verify_2pair", group.params.name, "multi_pair", fused_ms / 1000, 3)
    group.clear_precomputations()

    # Process-parallel sharding of the same batch.  Honest on purpose:
    # the row records the CPU count the run actually had; on a one-core
    # runner the sharded path documents the process overhead instead of
    # a speedup.
    from repro.parallel import available_workers

    cpus = available_workers()
    seq_batch_ms = time_median(batch_fast, rounds=3) * 1000

    def batch_parallel():
        group.clear_precomputations()
        scheme.decrypt_batch(cts, user, update, workers=2)

    par_ms = time_median(batch_parallel, rounds=3) * 1000
    rows.append((
        f"decrypt x{BATCH} sharded", f"{seq_batch_ms:.2f}", f"{par_ms:.2f}",
        f"{seq_batch_ms / par_ms:.1f}x", f"2 workers, {cpus} cpu(s) visible",
    ))
    trajectory.record(
        f"parallel_decrypt_x{BATCH}", group.params.name, "direct",
        seq_batch_ms / 1000, 3, cpus=cpus,
    )
    trajectory.record(
        f"parallel_decrypt_x{BATCH}", group.params.name, "workers2",
        par_ms / 1000, 3, cpus=cpus, workers=2,
    )
    group.clear_precomputations()

    emit(format_table(
        ("operation", "direct ms", "precomp ms", "speedup", "notes"),
        rows,
        title="E16: fixed-argument precomputation (toy64, family A)",
    ))
    benchmark(lambda: None)
