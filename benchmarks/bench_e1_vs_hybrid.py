"""E1 — TRE versus the hybrid PKE+IBE construction (footnote 3).

Paper claim (§1): the generic hybrid "constructions are considerably
less efficient than our schemes in terms of computation and/or
ciphertext size.  Our schemes could have 50% reduction in most cases."

We measure, for a 32-byte session-key payload on ss512:

* ciphertext size (bytes) and group-element count;
* encrypt / decrypt wall time;
* exact operation counts (pairings, scalar mults, hash-to-group).

Expected shape: TRE carries ONE group element against the hybrid's TWO
(the 50% header reduction), and decryption does one pairing + one GT
exponentiation against the hybrid's one pairing + one scalar mult +
extra KDF plumbing.
"""

import pytest

from benchmarks.conftest import KEY_MESSAGE, RELEASE, emit
from repro.analysis import format_table
from repro.baselines.hybrid_pke_ibe import HybridPkeIbeTimedRelease
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import seeded_rng


@pytest.fixture(scope="module")
def tre(bench_group):
    return TimedReleaseScheme(bench_group)


@pytest.fixture(scope="module")
def hybrid(bench_group):
    return HybridPkeIbeTimedRelease(bench_group)


@pytest.fixture(scope="module")
def hybrid_receiver(hybrid):
    return hybrid.generate_receiver_keypair(seeded_rng("e1-hybrid"))


def test_e1_tre_encrypt(benchmark, tre, bench_server, bench_user):
    rng = seeded_rng("e1")
    benchmark(
        tre.encrypt,
        KEY_MESSAGE,
        bench_user.public,
        bench_server.public_key,
        RELEASE,
        rng,
        verify_receiver_key=False,
    )


def test_e1_tre_encrypt_with_key_check(benchmark, tre, bench_server, bench_user):
    rng = seeded_rng("e1")
    benchmark(
        tre.encrypt,
        KEY_MESSAGE,
        bench_user.public,
        bench_server.public_key,
        RELEASE,
        rng,
        verify_receiver_key=True,
    )


def test_e1_tre_decrypt(benchmark, tre, bench_server, bench_user, bench_update):
    rng = seeded_rng("e1")
    ct = tre.encrypt(
        KEY_MESSAGE, bench_user.public, bench_server.public_key, RELEASE, rng,
        verify_receiver_key=False,
    )
    result = benchmark(tre.decrypt, ct, bench_user, bench_update)
    assert result == KEY_MESSAGE


def test_e1_hybrid_encrypt(benchmark, hybrid, bench_server, hybrid_receiver):
    rng = seeded_rng("e1")
    benchmark(
        hybrid.encrypt,
        KEY_MESSAGE,
        hybrid_receiver.public,
        bench_server.public_key,
        RELEASE,
        rng,
    )


def test_e1_hybrid_decrypt(benchmark, hybrid, bench_server, hybrid_receiver,
                           bench_update):
    rng = seeded_rng("e1")
    ct = hybrid.encrypt(
        KEY_MESSAGE, hybrid_receiver.public, bench_server.public_key, RELEASE, rng
    )
    result = benchmark(hybrid.decrypt, ct, hybrid_receiver.private, bench_update)
    assert result == KEY_MESSAGE


def test_e1_claim_table(benchmark, bench_group, tre, hybrid, bench_server,
                        bench_user, hybrid_receiver, bench_update):
    """Emit the E1 comparison rows (sizes + op counts) and check the claim."""
    rng = seeded_rng("e1-table")
    group = bench_group

    with group.counters.measure() as tre_enc_ops:
        tre_ct = tre.encrypt(
            KEY_MESSAGE, bench_user.public, bench_server.public_key, RELEASE,
            rng, verify_receiver_key=False,
        )
    with group.counters.measure() as tre_dec_ops:
        tre.decrypt(tre_ct, bench_user, bench_update)
    with group.counters.measure() as hyb_enc_ops:
        hyb_ct = hybrid.encrypt(
            KEY_MESSAGE, hybrid_receiver.public, bench_server.public_key,
            RELEASE, rng,
        )
    with group.counters.measure() as hyb_dec_ops:
        hybrid.decrypt(hyb_ct, hybrid_receiver.private, bench_update)

    tre_size = tre_ct.size_bytes(group)
    hyb_size = hyb_ct.size_bytes(group)
    tre_points = 1
    hyb_points = 2

    def fmt(ops):
        return (
            f"{ops.get('pairing', 0)}P "
            f"{ops.get('scalar_mult', 0)}M "
            f"{ops.get('hash_to_group', 0)}H "
            f"{ops.get('gt_exp', 0)}E"
        )

    rows = [
        ("TRE (this paper)", tre_points, tre_size, fmt(tre_enc_ops), fmt(tre_dec_ops)),
        ("hybrid PKE+IBE", hyb_points, hyb_size, fmt(hyb_enc_ops), fmt(hyb_dec_ops)),
        ("reduction", "50%", f"{100 * (1 - tre_size / hyb_size):.0f}%", "", ""),
    ]
    emit(format_table(
        ("scheme", "G1 elems", "ct bytes", "enc ops", "dec ops"),
        rows,
        title="E1: TRE vs hybrid PKE+IBE (32-byte payload, ss512) — "
              "claim: ~50% reduction (ops: P=pairing M=scalar-mult "
              "H=hash-to-G1 E=GT-exp)",
    ))

    # The headline claim, asserted: half the group elements, and at
    # least ~40% smaller ciphertext for key-sized payloads.
    assert tre_points == hyb_points / 2
    assert tre_size < 0.62 * hyb_size
    benchmark(lambda: None)
