"""E11 — TRE versus ID-TRE: cost and the escrow boundary.

Paper (§5.2/§5.3): ID-TRE needs no receiver certificates and decrypts
with a single pairing (cheaper), but "key escrow is inherent" — the
server can read everything.  TRE costs one GT exponentiation more at
decryption and needs a CA, but "only a receiver would be able to know
the decryption keys of the messages sent to him and nobody else".

Rows: encrypt/decrypt op counts and sizes for both schemes, plus the
escrow outcome (can the server decrypt?).
"""

import pytest

from benchmarks.conftest import KEY_MESSAGE, RELEASE, emit
from repro.analysis import format_table
from repro.core.idtre import IdentityTimedReleaseScheme
from repro.core.keys import ServerKeyPair
from repro.core.timeserver import PassiveTimeServer
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import seeded_rng

ALICE = b"alice@example.com"


@pytest.fixture(scope="module")
def world(bench_group):
    rng = seeded_rng("e11")
    master = ServerKeyPair.generate(bench_group, rng)
    server = PassiveTimeServer(bench_group, keypair=master)
    tre = TimedReleaseScheme(bench_group)
    idtre = IdentityTimedReleaseScheme(bench_group)
    from repro.core.keys import UserKeyPair

    user = UserKeyPair.generate(bench_group, master.public, rng)
    alice_key = idtre.extract_user_key(master, ALICE)
    update = server.publish_update(RELEASE)
    return rng, master, server, tre, idtre, user, alice_key, update


def test_e11_idtre_encrypt(benchmark, world):
    rng, master, _, _, idtre, _, _, _ = world
    benchmark.pedantic(
        idtre.encrypt,
        args=(KEY_MESSAGE, ALICE, master.public, RELEASE, rng),
        rounds=3,
        iterations=1,
    )


def test_e11_idtre_decrypt(benchmark, world):
    rng, master, _, _, idtre, _, alice_key, update = world
    ct = idtre.encrypt(KEY_MESSAGE, ALICE, master.public, RELEASE, rng)
    result = benchmark.pedantic(
        idtre.decrypt, args=(ct, alice_key, update), rounds=3, iterations=1
    )
    assert result == KEY_MESSAGE


def test_e11_tre_decrypt_reference(benchmark, world):
    rng, master, _, tre, _, user, _, update = world
    ct = tre.encrypt(
        KEY_MESSAGE, user.public, master.public, RELEASE, rng,
        verify_receiver_key=False,
    )
    result = benchmark.pedantic(
        tre.decrypt, args=(ct, user, update), rounds=3, iterations=1
    )
    assert result == KEY_MESSAGE


def test_e11_claim_table(benchmark, bench_group, world):
    group = bench_group
    rng, master, server, tre, idtre, user, alice_key, update = world

    with group.counters.measure() as tre_enc:
        tre_ct = tre.encrypt(
            KEY_MESSAGE, user.public, master.public, RELEASE, rng,
            verify_receiver_key=False,
        )
    with group.counters.measure() as tre_dec:
        tre.decrypt(tre_ct, user, update)
    with group.counters.measure() as id_enc:
        id_ct = idtre.encrypt(KEY_MESSAGE, ALICE, master.public, RELEASE, rng)
    with group.counters.measure() as id_dec:
        idtre.decrypt(id_ct, alice_key, update)

    server_reads_tre = (
        tre.decrypt(tre_ct, master.private, update) == KEY_MESSAGE
    )
    server_reads_idtre = (
        idtre.server_decrypt(id_ct, master, ALICE) == KEY_MESSAGE
    )

    def fmt(ops):
        return (
            f"{ops.get('pairing', 0)}P {ops.get('scalar_mult', 0)}M "
            f"{ops.get('gt_exp', 0)}E"
        )

    rows = [
        ("TRE", fmt(tre_enc), fmt(tre_dec), tre_ct.size_bytes(group),
         "CA on aG", "NO" if not server_reads_tre else "YES"),
        ("ID-TRE", fmt(id_enc), fmt(id_dec), id_ct.size_bytes(group),
         "none (identity)", "YES" if server_reads_idtre else "NO"),
    ]
    emit(format_table(
        ("scheme", "enc ops", "dec ops", "ct bytes", "certificates",
         "server can decrypt"),
        rows,
        title="E11: TRE vs ID-TRE — claim: same single broadcast; ID-TRE "
              "drops certificates but escrow is inherent",
    ))
    assert not server_reads_tre
    assert server_reads_idtre
    assert id_dec.get("gt_exp", 0) == 0  # single pairing, no exponentiation
    assert tre_dec.get("gt_exp", 0) == 1
    benchmark(lambda: None)
