"""E9 — key insulation (§5.3.3): derivation cost and exposure containment.

Paper claim: "the TRE scheme proposed here achieves the key insulation
goal for free" — one scalar multiplication per epoch on the safe
device, and epoch-key decryption on the insecure device is *cheaper*
than normal decryption (one pairing, no GT exponentiation by ``a``).

Rows: safe-device derivation cost, insecure-device decryption cost vs
normal decryption, and the containment matrix (which epochs a stolen
key opens).
"""

import pytest

from benchmarks.conftest import KEY_MESSAGE, emit
from repro.analysis import format_table
from repro.core.key_insulation import InsecureDevice, SafeDevice, decrypt_with_epoch_key
from repro.core.timeserver import epoch_label
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import seeded_rng
from repro.errors import UpdateVerificationError


@pytest.fixture(scope="module")
def insulated(bench_group, bench_server, bench_user):
    scheme = TimedReleaseScheme(bench_group)
    safe = SafeDevice(bench_group, bench_user, bench_server.public_key)
    return scheme, safe


def test_e9_derive_epoch_key(benchmark, bench_server, insulated):
    _, safe = insulated
    counter = iter(range(10**9))

    def derive():
        label = epoch_label(next(counter))
        return safe.derive_epoch_key(bench_server.publish_update(label))

    benchmark.pedantic(derive, rounds=3, iterations=1)


def test_e9_epoch_key_decrypt(benchmark, bench_group, bench_server, bench_user,
                              insulated):
    scheme, safe = insulated
    label = epoch_label(500_000)
    rng = seeded_rng("e9")
    ct = scheme.encrypt(
        KEY_MESSAGE, bench_user.public, bench_server.public_key, label, rng,
        verify_receiver_key=False,
    )
    key = safe.derive_epoch_key(bench_server.publish_update(label))
    result = benchmark.pedantic(
        decrypt_with_epoch_key, args=(bench_group, ct, key), rounds=3,
        iterations=1,
    )
    assert result == KEY_MESSAGE


def test_e9_normal_decrypt_reference(benchmark, bench_group, bench_server,
                                     bench_user, insulated):
    scheme, _ = insulated
    label = epoch_label(600_000)
    rng = seeded_rng("e9")
    ct = scheme.encrypt(
        KEY_MESSAGE, bench_user.public, bench_server.public_key, label, rng,
        verify_receiver_key=False,
    )
    update = bench_server.publish_update(label)
    result = benchmark.pedantic(
        scheme.decrypt, args=(ct, bench_user, update), rounds=3, iterations=1
    )
    assert result == KEY_MESSAGE


def test_e9_claim_table(benchmark, bench_group, bench_server, bench_user,
                        insulated):
    group = bench_group
    scheme, safe = insulated
    rng = seeded_rng("e9-table")

    # Op counts for each path.
    label = epoch_label(700_000)
    ct = scheme.encrypt(
        KEY_MESSAGE, bench_user.public, bench_server.public_key, label, rng,
        verify_receiver_key=False,
    )
    update = bench_server.publish_update(label)
    with group.counters.measure() as derive_ops:
        key = safe.derive_epoch_key(update)
    with group.counters.measure() as epoch_dec_ops:
        decrypt_with_epoch_key(group, ct, key)
    with group.counters.measure() as normal_dec_ops:
        scheme.decrypt(ct, bench_user, update)

    def fmt(ops):
        return (
            f"{ops.get('pairing', 0)}P {ops.get('scalar_mult', 0)}M "
            f"{ops.get('gt_exp', 0)}E"
        )

    rows = [
        ("safe device: derive K_i", fmt(derive_ops), "holds a"),
        ("insecure device: epoch decrypt", fmt(epoch_dec_ops), "holds K_i only"),
        ("reference: normal decrypt", fmt(normal_dec_ops), "holds a"),
    ]
    emit(format_table(
        ("operation", "ops", "secret material"),
        rows,
        title="E9a: key-insulation costs — claim: insulation 'for free' "
              "(derivation = 1 scalar mult + verify)",
    ))

    # Containment matrix: stolen keys for epochs 0..2 of 5.
    device = InsecureDevice(group)
    ciphertexts = {}
    for i in range(5):
        lbl = epoch_label(800_000 + i)
        ciphertexts[i] = scheme.encrypt(
            KEY_MESSAGE, bench_user.public, bench_server.public_key, lbl, rng,
            verify_receiver_key=False,
        )
        if i < 3:
            device.install_epoch_key(
                safe.derive_epoch_key(bench_server.publish_update(lbl))
            )
    matrix = []
    for i in range(5):
        try:
            opened = device.decrypt(ciphertexts[i]) == KEY_MESSAGE
        except UpdateVerificationError:
            opened = False
        matrix.append((f"epoch {i}", "stolen" if i < 3 else "safe",
                       "OPENED" if opened else "sealed"))
    emit(format_table(
        ("epoch", "key status", "outcome"),
        matrix,
        title="E9b: exposure containment — stolen epoch keys open only "
              "their own epochs",
    ))
    assert [row[2] for row in matrix] == ["OPENED"] * 3 + ["sealed"] * 2
    # Epoch-path decryption avoids the GT exponentiation entirely.
    assert epoch_dec_ops.get("gt_exp", 0) == 0
    assert normal_dec_ops.get("gt_exp", 0) == 1
    benchmark(lambda: None)
