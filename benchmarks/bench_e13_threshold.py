"""E13 — threshold (k-of-N) time server costs (extension of §5.3.5).

§5.3.5's all-of-N design multiplies the *receiver's* cost by N and dies
with one crashed server.  The threshold refinement keeps the combined
update byte-identical to a single-server update (so every scheme's
decryption cost is unchanged) and moves the extra work to whoever
combines the shares.  Measured: share issuance, share verification
(2 pairings + Feldman recomputation), and combination cost versus k.
"""

import pytest

from benchmarks.conftest import KEY_MESSAGE, RELEASE, emit
from repro.analysis import format_table
from repro.core.threshold import ThresholdTimeServer
from repro.core.tre import TimedReleaseScheme
from repro.core.keys import UserKeyPair
from repro.crypto.rng import seeded_rng

CONFIGS = ((3, 1), (5, 3), (9, 5), (16, 11))  # (members N, threshold k)


def _setup(group, members, threshold):
    rng = seeded_rng(f"e13-{members}-{threshold}")
    coordinator, member_objs = ThresholdTimeServer.setup(
        group, members=members, threshold=threshold, rng=rng
    )
    return rng, coordinator, member_objs


def test_e13_issue_share(benchmark, toy_group):
    _, _, members = _setup(toy_group, 5, 3)
    counter = iter(range(10**9))
    benchmark(
        lambda: members[0].issue_update_share(f"t-{next(counter)}".encode())
    )


def test_e13_verify_share(benchmark, toy_group):
    _, coordinator, members = _setup(toy_group, 5, 3)
    share = members[0].issue_update_share(RELEASE)
    result = benchmark(coordinator.verify_share, share)
    assert result


@pytest.mark.parametrize("members,threshold", [(5, 3), (16, 11)])
def test_e13_combine(benchmark, toy_group, members, threshold):
    _, coordinator, member_objs = _setup(toy_group, members, threshold)
    shares = [m.issue_update_share(RELEASE) for m in member_objs[:threshold]]
    update = benchmark.pedantic(
        coordinator.combine, args=(shares,), kwargs={"verify": False},
        rounds=3, iterations=1,
    )
    assert update.verify(toy_group, coordinator.public_key)


def test_e13_claim_table(benchmark, toy_group):
    group = toy_group
    rows = []
    for members, threshold in CONFIGS:
        rng, coordinator, member_objs = _setup(group, members, threshold)
        shares = [m.issue_update_share(RELEASE) for m in member_objs]
        with group.counters.measure() as verify_ops:
            assert coordinator.verify_share(shares[0])
        with group.counters.measure() as combine_ops:
            update = coordinator.combine(shares[:threshold], verify=False)
        # The combined update drives ordinary TRE decryption unchanged.
        scheme = TimedReleaseScheme(group)
        user = UserKeyPair.generate(group, coordinator.public_key, rng)
        ct = scheme.encrypt(
            KEY_MESSAGE, user.public, coordinator.public_key, RELEASE, rng,
            verify_receiver_key=False,
        )
        assert scheme.decrypt(ct, user, update) == KEY_MESSAGE
        rows.append((
            f"{threshold}-of-{members}",
            f"{verify_ops.get('pairing', 0)}P "
            f"{verify_ops.get('scalar_mult', 0)}M",
            f"{combine_ops.get('scalar_mult', 0)}M "
            f"{combine_ops.get('point_add', 0)}A",
            members - threshold,
        ))
    emit(format_table(
        ("config", "verify 1 share", "combine k shares", "crash tolerance"),
        rows,
        title="E13: threshold time server — combined update identical to "
              "single-server; receiver cost unchanged (vs §5.3.5's N-fold)",
    ))
    benchmark(lambda: None)
