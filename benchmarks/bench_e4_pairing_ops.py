"""E4 — primitive operation costs across parameter sizes.

The paper's §4/§5 cost accounting is in units of pairings, scalar
multiplications and MapToPoint evaluations.  This experiment grounds
those units: wall time for each primitive on toy64 / ss512 / ss1024,
plus serialized element sizes.  (Figure-style series: cost vs p-bits.)
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.analysis import format_table
from repro.crypto.rng import seeded_rng
from repro.pairing.api import PairingGroup

PARAM_NAMES = ("toy64", "ss512", "ss1024")

_GROUPS = {}


def _group(name):
    if name not in _GROUPS:
        _GROUPS[name] = PairingGroup(name, family="A")
    return _GROUPS[name]


@pytest.mark.parametrize("name", PARAM_NAMES)
def test_e4_pairing(benchmark, name):
    group = _group(name)
    rng = seeded_rng("e4")
    p_point = group.random_point(rng)
    q_point = group.random_point(rng)
    benchmark.pedantic(
        group.pair, args=(p_point, q_point), rounds=5, iterations=1
    )


@pytest.mark.parametrize("name", PARAM_NAMES)
def test_e4_scalar_mult(benchmark, name):
    group = _group(name)
    rng = seeded_rng("e4")
    point = group.random_point(rng)
    scalar = group.random_scalar(rng)
    benchmark.pedantic(group.mul, args=(point, scalar), rounds=5, iterations=1)


@pytest.mark.parametrize("name", PARAM_NAMES)
def test_e4_hash_to_g1(benchmark, name):
    group = _group(name)
    counter = iter(range(10**9))
    benchmark.pedantic(
        lambda: group.hash_to_g1(str(next(counter)).encode()),
        rounds=5,
        iterations=1,
    )


@pytest.mark.parametrize("name", PARAM_NAMES)
def test_e4_gt_exponentiation(benchmark, name):
    group = _group(name)
    rng = seeded_rng("e4")
    element = group.pair(group.generator, group.generator)
    scalar = group.random_scalar(rng)
    benchmark.pedantic(lambda: element ** scalar, rounds=5, iterations=1)


def test_e4_multi_pair_op_counts(benchmark):
    """The multi-pairing saving in *counted* operations: a two-pairing
    verify equation costs two Miller loops + two final exponentiations
    sequentially, but the fused ratio check shares ONE final
    exponentiation across the same two Miller loops (2 -> 1)."""
    group = _group("toy64")  # operation counts are size-independent
    rng = seeded_rng("e4-multi")
    from repro.core.keys import ServerKeyPair

    keypair = ServerKeyPair.generate(group, rng)
    public = keypair.public
    h_point = group.hash_to_g1(b"e4-epoch")
    signed = group.mul(h_point, keypair.private)

    with group.counters.measure() as seq_ops:
        left = group.pair(public.s_generator, h_point)
        right = group.pair(public.generator, signed)
        assert left == right
    with group.counters.measure() as fused_ops:
        assert group.pair_ratio_is_one(
            ((public.s_generator, h_point),),
            ((public.generator, signed),),
        )

    rows = []
    for label, ops in (("sequential", seq_ops), ("multi-pair", fused_ops)):
        rows.append((
            label,
            ops.get("pairing", 0),
            ops.get("miller_loop", 0),
            ops.get("final_exp", 0),
            ops.get("multi_pair", 0),
        ))
    assert seq_ops.get("final_exp") == 2
    assert fused_ops.get("final_exp") == 1
    assert fused_ops.get("miller_loop") == 2
    emit(format_table(
        ("verify path", "pairings", "Miller loops", "final exps",
         "multi-pair calls"),
        rows,
        title="E4b: two-pairing verify equation — the multi-pairing "
              "kernel shares the final exponentiation (2 -> 1)",
    ))
    benchmark(lambda: None)


def test_e4_gt_fast_path_op_counts(benchmark):
    """E4c — the sender GT fast path *eliminates* primary operations.

    A cold §5.1 encryption pays a hash-to-curve, two scalar
    multiplications and a pairing; with the (receiver, T) pairing
    cached, the same byte-identical ciphertext costs one fixed-base
    multiplication and one table-driven GT exponentiation.  Asserted
    against the symbolic budgets so the collapse can never silently
    regress.
    """
    from repro.analysis.costmodel import TRE_COST, TRE_GT_ENCRYPT_COST
    from repro.core.keys import ServerKeyPair, UserKeyPair
    from repro.core.tre import TimedReleaseScheme

    group = PairingGroup("toy64", family="A")  # fresh: no warm caches
    rng = seeded_rng("e4-gt")
    server = ServerKeyPair.generate(group, rng)
    user = UserKeyPair.generate(group, server.public, rng)
    scheme = TimedReleaseScheme(group)
    label = b"e4-epoch"

    with group.counters.measure() as cold_ops:
        ct_cold = scheme.encrypt(
            b"collapse", user.public, server.public, label, seeded_rng("e4r"),
            verify_receiver_key=False,
        )
    scheme.precompute_sender(user.public, server.public, time_labels=[label])
    with group.counters.measure() as warm_ops:
        ct_warm = scheme.encrypt(
            b"collapse", user.public, server.public, label, seeded_rng("e4r"),
            verify_receiver_key=False,
        )
    assert ct_warm.to_bytes(group) == ct_cold.to_bytes(group)
    assert cold_ops == TRE_COST.encrypt.as_dict()
    assert warm_ops == TRE_GT_ENCRYPT_COST.as_dict()

    rows = []
    for path, ops, budget in (
        ("direct", cold_ops, TRE_COST.encrypt),
        ("GT fast path", warm_ops, TRE_GT_ENCRYPT_COST),
    ):
        rows.append((
            path,
            ops.get("pairing", 0),
            ops.get("scalar_mult", 0),
            ops.get("hash_to_group", 0),
            ops.get("gt_exp", 0),
            ops.get("gt_fixed_base", 0),
            f"{budget.dominant_cost():.1f}",
        ))
    emit(format_table(
        ("encrypt path", "pairings", "scalar mults", "H1", "GT exps",
         "GT table hits", "dominant cost*"),
        rows,
        title="E4c: sender GT fast path — encryption collapses from a "
              "pairing to one table-driven GT exponentiation "
              "(*scalar-mult equivalents)",
    ))
    benchmark(lambda: None)


def test_e4_claim_table(benchmark):
    rows = []
    for name in PARAM_NAMES:
        group = _group(name)
        rng = seeded_rng("e4-table")
        point = group.random_point(rng)
        other = group.random_point(rng)
        scalar = group.random_scalar(rng)

        def timed(fn, repeat=3):
            best = float("inf")
            for _ in range(repeat):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best * 1000

        pair_ms = timed(lambda: group.pair(point, other))
        mul_ms = timed(lambda: group.mul(point, scalar))
        hash_ms = timed(lambda: group.hash_to_g1(b"label"))
        gt = group.pair(point, other)
        exp_ms = timed(lambda: gt ** scalar)
        rows.append((
            name,
            group.params.p_bits,
            group.params.q_bits,
            f"{pair_ms:.1f}",
            f"{mul_ms:.1f}",
            f"{hash_ms:.1f}",
            f"{exp_ms:.1f}",
            group.point_bytes,
            group.gt_bytes,
        ))
    emit(format_table(
        ("params", "p bits", "q bits", "pair ms", "smul ms", "H1 ms",
         "GT-exp ms", "G1 bytes", "GT bytes"),
        rows,
        title="E4: primitive costs by parameter size (pure-Python Tate "
              "pairing, family A)",
    ))
    benchmark(lambda: None)
