"""E12 — substrate ablations (our design choices, indexed in DESIGN.md).

Two implementation decisions in the pairing engine have measurable
cost consequences; this experiment quantifies them so the numbers in
E1/E4 can be interpreted:

* **Family A vs family B**: family A admits denominator elimination
  (BKLS) in the Miller loop; family B must run the general
  divisor-based loop (roughly twice the line evaluations plus Fp2
  inversions).  Expected: family-A pairing ~2x faster.
* **Jacobian vs affine scalar multiplication**: the Jacobian ladder
  trades ~1.5k field inversions for one.  Expected: several-fold
  speedup at ss512 sizes.
"""

import time

import pytest

from benchmarks.conftest import emit
from repro.analysis import format_table
from repro.crypto.rng import seeded_rng
from repro.pairing.api import PairingGroup

_GROUPS = {}


def _group(family):
    if family not in _GROUPS:
        _GROUPS[family] = PairingGroup("ss512", family=family)
    return _GROUPS[family]


@pytest.mark.parametrize("family", ["A", "B"])
def test_e12_pairing_by_family(benchmark, family):
    group = _group(family)
    rng = seeded_rng("e12")
    p_point = group.random_point(rng)
    q_point = group.random_point(rng)
    benchmark.pedantic(group.pair, args=(p_point, q_point), rounds=5, iterations=1)


@pytest.mark.parametrize("family", ["A", "B"])
def test_e12_hash_to_g1_by_family(benchmark, family):
    # Family B's MapToPoint is deterministic (cube root); family A
    # rejects half its candidates. Both end with a cofactor clearing.
    group = _group(family)
    counter = iter(range(10**9))
    benchmark.pedantic(
        lambda: group.hash_to_g1(str(next(counter)).encode()),
        rounds=5,
        iterations=1,
    )


def test_e12_jacobian_vs_affine(benchmark):
    group = _group("A")
    rng = seeded_rng("e12-coords")
    point = group.random_point(rng)
    scalar = group.random_scalar(rng)
    assert point * scalar == point.affine_scalar_mult(scalar)
    benchmark.pedantic(
        point.affine_scalar_mult, args=(scalar,), rounds=3, iterations=1
    )


def test_e12_claim_table(benchmark):
    rng = seeded_rng("e12-table")

    def timed(fn, repeat=5):
        # Best-of-N: the minimum is robust to scheduling spikes, which
        # matters because this compares two timings against each other.
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best * 1000

    rows = []
    times = {}
    for family in ("A", "B"):
        group = _group(family)
        p_point = group.random_point(rng)
        q_point = group.random_point(rng)
        pair_ms = timed(lambda: group.pair(p_point, q_point))
        hash_ms = timed(lambda: group.hash_to_g1(b"x"))
        times[family] = pair_ms
        loop = "denominator-free (BKLS)" if family == "A" else "general divisor"
        rows.append((f"family {family}", loop, f"{pair_ms:.1f}", f"{hash_ms:.1f}"))
    emit(format_table(
        ("curve", "Miller loop", "pair ms", "H1 ms"),
        rows,
        title="E12a: pairing ablation — denominator elimination vs the "
              "general loop (ss512)",
    ))

    group = _group("A")
    point = group.random_point(rng)
    scalar = group.random_scalar(rng)
    jac_ms = timed(lambda: point * scalar)
    aff_ms = timed(lambda: point.affine_scalar_mult(scalar))
    emit(format_table(
        ("coordinates", "scalar-mult ms"),
        [("Jacobian (1 inversion)", f"{jac_ms:.2f}"),
         ("affine (~1.5k inversions)", f"{aff_ms:.2f}")],
        title="E12b: scalar multiplication coordinate ablation (ss512)",
    ))

    # Shape: family A strictly faster; Jacobian strictly faster.
    assert times["A"] < times["B"]
    assert jac_ms < aff_ms
    benchmark(lambda: None)
