"""E6 — self-authenticated updates versus sign-then-publish.

Paper claim (§5.3.1): the update ``s·H1(T)`` *is* a BLS short signature
on ``T``, so "no additional overhead of a server signature is needed"
and no secure channel either.  The strawman alternative publishes a
random nonce-style update plus a detached signature — doubling the
broadcast payload and adding a signing step.

Rows: broadcast bytes and verify cost for (a) the paper's
self-authenticating update and (b) update + detached BLS signature.
"""

from benchmarks.conftest import emit
from repro.analysis import format_table
from repro.core.bls import BLSSignatureScheme
from repro.core.timeserver import TimeBoundKeyUpdate

LABEL = b"2030-01-01T00:00:00Z"


def test_e6_issue_update(benchmark, bench_group, bench_server):
    counter = iter(range(10**9))
    benchmark(
        lambda: bench_server.issue_update(f"t-{next(counter)}".encode())
    )


def test_e6_verify_update(benchmark, bench_group, bench_server):
    update = bench_server.publish_update(LABEL)
    result = benchmark(update.verify, bench_group, bench_server.public_key)
    assert result


def test_e6_claim_table(benchmark, bench_group, bench_server):
    group = bench_group
    update = bench_server.publish_update(LABEL)
    self_auth_bytes = len(update.to_bytes(group))

    with group.counters.measure() as verify_ops:
        assert update.verify(group, bench_server.public_key)

    # Strawman: the broadcast carries the update point AND a detached
    # signature over it (another G1 point), and verification checks the
    # signature first, then still needs the update itself.
    bls = BLSSignatureScheme(group, hash_tag="repro:E6:detached")
    detached_sig = bls.sign(bench_server._keypair, update.to_bytes(group))
    strawman_bytes = self_auth_bytes + group.point_bytes
    with group.counters.measure() as strawman_ops:
        assert bls.verify(
            bench_server.public_key, update.to_bytes(group), detached_sig
        )
        # The update point itself is then trusted via the signature; a
        # careful receiver still checks its group membership.
        assert group.in_group(update.point)

    rows = [
        ("self-authenticated (paper)", self_auth_bytes,
         verify_ops.get("pairing", 0)),
        ("update + detached signature", strawman_bytes,
         strawman_ops.get("pairing", 0)),
    ]
    emit(format_table(
        ("design", "broadcast bytes", "verify pairings"),
        rows,
        title="E6: update authentication — claim: zero extra signature "
              "overhead (the update IS the signature)",
    ))
    assert self_auth_bytes < strawman_bytes
    benchmark(lambda: None)


def test_e6_forged_update_rejected(benchmark, bench_group, bench_server, bench_rng):
    forged = TimeBoundKeyUpdate(LABEL, bench_group.random_point(bench_rng))
    result = benchmark(forged.verify, bench_group, bench_server.public_key)
    assert not result


def test_e6_batch_verify_backlog(benchmark, bench_group, bench_server, bench_rng):
    """E6b: a receiver catching up on an archive of n updates verifies
    them all with 2 pairings (small-exponent batch BLS) instead of 2n."""
    from repro.core.timeserver import batch_verify_updates

    updates = [
        bench_server.publish_update(f"backlog-{i}".encode()) for i in range(16)
    ]
    result = benchmark.pedantic(
        batch_verify_updates,
        args=(bench_group, bench_server.public_key, updates, bench_rng),
        rounds=3,
        iterations=1,
    )
    assert result

    with bench_group.counters.measure() as batched:
        batch_verify_updates(
            bench_group, bench_server.public_key, updates, bench_rng
        )
    with bench_group.counters.measure() as individual:
        for update in updates:
            assert update.verify(bench_group, bench_server.public_key)
    emit(format_table(
        ("strategy", "pairings", "scalar mults"),
        [("one-by-one (16 updates)", individual.get("pairing", 0),
          individual.get("scalar_mult", 0)),
         ("batched (16 updates)", batched.get("pairing", 0),
          batched.get("scalar_mult", 0))],
        title="E6b: archive catch-up verification — batch BLS",
    ))
