"""E2 — server work per epoch versus number of receivers.

Paper claims (§1, §5.3.1, §2.2): the passive server broadcasts a
*single* update per time instant "no matter how many users there are";
Mont et al.'s vault must extract and individually deliver one key per
registered receiver per epoch; Rivest's public-key variant must
pre-publish a directory that grows with the release-time horizon.

Rows: per-epoch server messages and bytes for n = 1, 10, 100, 1000
receivers, plus the Rivest directory size for the matching horizon.
Expected shape: TRE flat at 1 message; Mont linear in n; Rivest linear
in horizon.
"""

from benchmarks.conftest import emit
from repro.analysis import format_table
from repro.baselines.mont_vault import MontTimeVault
from repro.baselines.rivest_server import RivestPublicKeyServer
from repro.core.timeserver import PassiveTimeServer
from repro.crypto.rng import seeded_rng

RECEIVER_COUNTS = (1, 10, 100, 1000)


def _tre_epoch_cost(group, label):
    server = PassiveTimeServer(group, rng=seeded_rng("e2-tre"))
    update = server.publish_update(label)
    return 1, len(update.to_bytes(group))


def _mont_epoch_cost(group, receivers, label):
    vault = MontTimeVault(group, seeded_rng("e2-mont"))
    for index in range(receivers):
        vault.register_receiver(f"user-{index}".encode())
    vault.start_epoch(label)
    return vault.keys_delivered, vault.bytes_delivered


def test_e2_tre_publish_update(benchmark, toy_group):
    server = PassiveTimeServer(toy_group, rng=seeded_rng("e2-bench"))
    counter = iter(range(10**9))

    def publish():
        server.publish_update(f"epoch-{next(counter)}".encode())

    benchmark(publish)


def test_e2_mont_epoch_100_receivers(benchmark, toy_group):
    vault = MontTimeVault(toy_group, seeded_rng("e2-bench-mont"))
    for index in range(100):
        vault.register_receiver(f"user-{index}".encode())
    counter = iter(range(10**9))

    def start_epoch():
        vault.start_epoch(f"epoch-{next(counter)}".encode())

    benchmark(start_epoch)


def test_e2_archive_catchup(benchmark, toy_group):
    """A receiver coming back online verifies the missed update archive.

    The passive server publishes one update per instant regardless of
    audience, so an absent receiver catches up from the public archive:
    per-update multi-pairing ratio checks (one final exponentiation
    each), optionally sharded across worker processes.  The CPU count is
    recorded with the row — on a one-core runner the sharded column
    honestly documents the process overhead.
    """
    from benchmarks.trajectory import time_median
    from repro.core.timeserver import verify_archive
    from repro.parallel import available_workers

    group = toy_group
    server = PassiveTimeServer(group, rng=seeded_rng("e2-catchup"))
    updates = [
        server.publish_update(f"catchup-{i:02d}".encode()) for i in range(64)
    ]
    assert verify_archive(group, server.public_key, updates) == []

    seq_ms = time_median(
        lambda: verify_archive(group, server.public_key, updates), rounds=3
    ) * 1000
    par_ms = time_median(
        lambda: verify_archive(group, server.public_key, updates, workers=2),
        rounds=3,
    ) * 1000
    cpus = available_workers()
    emit(format_table(
        ("archive", "sequential ms", "2-worker ms", "ratio", "cpus"),
        [(
            f"{len(updates)} updates", f"{seq_ms:.1f}", f"{par_ms:.1f}",
            f"{seq_ms / par_ms:.2f}x", cpus,
        )],
        title="E2b: receiver catch-up over a missed-update archive — "
              "per-update multi-pair checks, process-parallel sharding",
    ))
    benchmark(lambda: None)


def test_e2_claim_table(benchmark, toy_group):
    group = toy_group
    rows = []
    for receivers in RECEIVER_COUNTS:
        tre_msgs, tre_bytes = _tre_epoch_cost(group, b"T")
        mont_msgs, mont_bytes = _mont_epoch_cost(group, receivers, b"T")
        rivest = RivestPublicKeyServer(
            group, horizon=receivers, rng=seeded_rng("e2-rivest")
        )
        rows.append((
            receivers,
            tre_msgs,
            tre_bytes,
            mont_msgs,
            mont_bytes,
            rivest.published_directory_bytes(),
        ))
    emit(format_table(
        ("receivers", "TRE msgs", "TRE bytes", "Mont msgs", "Mont bytes",
         "Rivest dir bytes (horizon=n)"),
        rows,
        title="E2: per-epoch server cost vs population — claim: TRE O(1), "
              "Mont O(n), Rivest directory O(horizon)",
    ))

    # Assert the scalability shape.
    tre_costs = {n: _tre_epoch_cost(group, b"T")[0] for n in RECEIVER_COUNTS}
    assert all(cost == 1 for cost in tre_costs.values())
    assert _mont_epoch_cost(group, 100, b"T")[0] == 100
    small = RivestPublicKeyServer(group, 10, seeded_rng("x"))
    large = RivestPublicKeyServer(group, 1000, seeded_rng("x"))
    assert large.published_directory_bytes() == 100 * small.published_directory_bytes()
    benchmark(lambda: None)
