"""E2 — server work per epoch versus number of receivers.

Paper claims (§1, §5.3.1, §2.2): the passive server broadcasts a
*single* update per time instant "no matter how many users there are";
Mont et al.'s vault must extract and individually deliver one key per
registered receiver per epoch; Rivest's public-key variant must
pre-publish a directory that grows with the release-time horizon.

Rows: per-epoch server messages and bytes for n = 1, 10, 100, 1000
receivers, plus the Rivest directory size for the matching horizon.
Expected shape: TRE flat at 1 message; Mont linear in n; Rivest linear
in horizon.
"""

from benchmarks.conftest import emit
from repro.analysis import format_table
from repro.baselines.mont_vault import MontTimeVault
from repro.baselines.rivest_server import RivestPublicKeyServer
from repro.core.timeserver import PassiveTimeServer
from repro.crypto.rng import seeded_rng

RECEIVER_COUNTS = (1, 10, 100, 1000)


def _tre_epoch_cost(group, label):
    server = PassiveTimeServer(group, rng=seeded_rng("e2-tre"))
    update = server.publish_update(label)
    return 1, len(update.to_bytes(group))


def _mont_epoch_cost(group, receivers, label):
    vault = MontTimeVault(group, seeded_rng("e2-mont"))
    for index in range(receivers):
        vault.register_receiver(f"user-{index}".encode())
    vault.start_epoch(label)
    return vault.keys_delivered, vault.bytes_delivered


def test_e2_tre_publish_update(benchmark, toy_group):
    server = PassiveTimeServer(toy_group, rng=seeded_rng("e2-bench"))
    counter = iter(range(10**9))

    def publish():
        server.publish_update(f"epoch-{next(counter)}".encode())

    benchmark(publish)


def test_e2_mont_epoch_100_receivers(benchmark, toy_group):
    vault = MontTimeVault(toy_group, seeded_rng("e2-bench-mont"))
    for index in range(100):
        vault.register_receiver(f"user-{index}".encode())
    counter = iter(range(10**9))

    def start_epoch():
        vault.start_epoch(f"epoch-{next(counter)}".encode())

    benchmark(start_epoch)


def test_e2_claim_table(benchmark, toy_group):
    group = toy_group
    rows = []
    for receivers in RECEIVER_COUNTS:
        tre_msgs, tre_bytes = _tre_epoch_cost(group, b"T")
        mont_msgs, mont_bytes = _mont_epoch_cost(group, receivers, b"T")
        rivest = RivestPublicKeyServer(
            group, horizon=receivers, rng=seeded_rng("e2-rivest")
        )
        rows.append((
            receivers,
            tre_msgs,
            tre_bytes,
            mont_msgs,
            mont_bytes,
            rivest.published_directory_bytes(),
        ))
    emit(format_table(
        ("receivers", "TRE msgs", "TRE bytes", "Mont msgs", "Mont bytes",
         "Rivest dir bytes (horizon=n)"),
        rows,
        title="E2: per-epoch server cost vs population — claim: TRE O(1), "
              "Mont O(n), Rivest directory O(horizon)",
    ))

    # Assert the scalability shape.
    tre_costs = {n: _tre_epoch_cost(group, b"T")[0] for n in RECEIVER_COUNTS}
    assert all(cost == 1 for cost in tre_costs.values())
    assert _mont_epoch_cost(group, 100, b"T")[0] == 100
    small = RivestPublicKeyServer(group, 10, seeded_rng("x"))
    large = RivestPublicKeyServer(group, 1000, seeded_rng("x"))
    assert large.published_directory_bytes() == 100 * small.published_directory_bytes()
    benchmark(lambda: None)
