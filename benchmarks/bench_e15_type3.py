"""E15 — Type-1 (2005 substrate) versus Type-3 (modern substrate).

The paper chose supersingular curves because Type-3 pairing-friendly
families were not yet deployed.  This experiment prices the same
primitive operations and the same protocol (receiver-bound TRE) on
both substrates, plus the tlock variant, to show the construction is
substrate-independent — the property drand later relied on.

Caveat: both engines are pure Python; BN254's generic Fp12 tower is not
optimized (no cyclotomic squaring, no sparse line multiplication), so
its absolute numbers are pessimistic.  The *structural* comparison
(element sizes, op counts per protocol step) is the reproducible part.
"""

import time

import pytest

from benchmarks.conftest import KEY_MESSAGE, emit
from repro.analysis import format_table
from repro.core.tlock import DrandStyleBeacon, TimelockEncryption, Type3TimedRelease
from repro.crypto.rng import seeded_rng
from repro.pairing.bn254 import bn254


@pytest.fixture(scope="module")
def engine():
    return bn254()


@pytest.fixture(scope="module")
def beacon(engine):
    return DrandStyleBeacon(engine, seeded_rng("e15"))


def test_e15_bn254_pairing(benchmark, engine):
    benchmark.pedantic(
        engine.pair, args=(engine.g1, engine.g2), rounds=3, iterations=1
    )


def test_e15_bn254_g1_mult(benchmark, engine):
    scalar = engine.random_scalar(seeded_rng("e15"))
    benchmark.pedantic(lambda: engine.g1 * scalar, rounds=3, iterations=1)


def test_e15_bn254_g2_mult(benchmark, engine):
    scalar = engine.random_scalar(seeded_rng("e15"))
    benchmark.pedantic(lambda: engine.g2 * scalar, rounds=3, iterations=1)


def test_e15_tlock_encrypt(benchmark, engine, beacon):
    tlock = TimelockEncryption(engine)
    rng = seeded_rng("e15-enc")
    benchmark.pedantic(
        tlock.encrypt, args=(KEY_MESSAGE, beacon.public_key, 77, rng),
        rounds=3, iterations=1,
    )


def test_e15_tlock_decrypt(benchmark, engine, beacon):
    tlock = TimelockEncryption(engine)
    rng = seeded_rng("e15-dec")
    ct = tlock.encrypt(KEY_MESSAGE, beacon.public_key, 78, rng)
    sig = beacon.publish_round(78)
    result = benchmark.pedantic(
        tlock.decrypt, args=(ct, sig), rounds=3, iterations=1
    )
    assert result == KEY_MESSAGE


def test_e15_claim_table(benchmark, engine, beacon, bench_group):
    rng = seeded_rng("e15-table")

    def timed(fn, repeat=2):
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best * 1000

    # Type-1 (ss512) column.
    t1 = bench_group
    p1 = t1.random_point(rng)
    s1 = t1.random_scalar(rng)
    t1_pair = timed(lambda: t1.pair(p1, t1.generator))
    t1_mul = timed(lambda: t1.mul(p1, s1))

    # Type-3 (BN254) column.
    s3 = engine.random_scalar(rng)
    t3_pair = timed(lambda: engine.pair(engine.g1, engine.g2))
    t3_g1 = timed(lambda: engine.g1 * s3)
    t3_g2 = timed(lambda: engine.g2 * s3)

    rows = [
        ("security level", "~80-bit (2005 sizing)", "~100-bit"),
        ("pairing type", "symmetric (1)", "asymmetric (3)"),
        ("update/signature bytes", t1.point_bytes, engine.point_bytes_g1),
        ("public key bytes", 2 * t1.point_bytes, engine.point_bytes_g2),
        ("GT bytes", t1.gt_bytes, engine.gt_bytes),
        ("pairing ms", f"{t1_pair:.0f}", f"{t3_pair:.0f}"),
        ("G1 smul ms", f"{t1_mul:.1f}", f"{t3_g1:.1f}"),
        ("G2 smul ms", "n/a (G1=G2)", f"{t3_g2:.1f}"),
    ]
    emit(format_table(
        ("metric", "Type-1 ss512 (paper era)", "Type-3 BN254 (drand era)"),
        rows,
        title="E15: the same TRE design on the 2005 vs modern pairing "
              "substrate (pure-Python engines; BN254 tower unoptimized)",
    ))

    # Structural claims: Type-3 updates (G1 points) are *smaller* than
    # the Type-1 ones at comparable/better security — the reason modern
    # beacons broadcast 48-64 byte signatures.
    assert engine.point_bytes_g1 < t1.point_bytes

    # And the protocol itself carries over: one round signature serves
    # both the tlock and the receiver-bound scheme.
    t3_scheme = Type3TimedRelease(engine)
    user = t3_scheme.generate_user_keypair(beacon.public_key, rng)
    tlock = TimelockEncryption(engine)
    c1 = tlock.encrypt(KEY_MESSAGE, beacon.public_key, 99, rng)
    c2 = t3_scheme.encrypt(
        KEY_MESSAGE, user, beacon.public_key, 99, rng,
        verify_receiver_key=False,
    )
    sig = beacon.publish_round(99)
    assert tlock.decrypt(c1, sig) == KEY_MESSAGE
    assert t3_scheme.decrypt(c2, user, sig) == KEY_MESSAGE
    benchmark(lambda: None)
