"""E8 — cost of the chosen-ciphertext upgrades (FO and REACT).

Paper (§5): "the Fujisaki-Okamoto Transform ... can be applied to our
schemes to obtain chosen-ciphertext secure schemes.  Alternatively, the
REACT conversion ... could be used instead."  This experiment prices
both against the plain CPA scheme.

Expected shape: FO adds one scalar multiplication to decryption (the
re-encryption check); REACT adds only hashing on both ends; ciphertext
grows by sigma/checksum bytes respectively.
"""

import pytest

from benchmarks.conftest import KEY_MESSAGE, RELEASE, emit
from repro.analysis import format_table
from repro.core.fujisaki_okamoto import FOTimedReleaseScheme
from repro.core.react import ReactTimedReleaseScheme
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import seeded_rng


def _schemes(group):
    return {
        "TRE (CPA)": TimedReleaseScheme(group),
        "TRE-FO (CCA)": FOTimedReleaseScheme(group),
        "TRE-REACT (CCA)": ReactTimedReleaseScheme(group),
    }


@pytest.mark.parametrize("name", ["TRE (CPA)", "TRE-FO (CCA)", "TRE-REACT (CCA)"])
def test_e8_encrypt(benchmark, bench_group, bench_server, bench_user, name):
    scheme = _schemes(bench_group)[name]
    rng = seeded_rng("e8")
    benchmark.pedantic(
        scheme.encrypt,
        args=(KEY_MESSAGE, bench_user.public, bench_server.public_key,
              RELEASE, rng),
        kwargs={"verify_receiver_key": False},
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("name", ["TRE (CPA)", "TRE-FO (CCA)", "TRE-REACT (CCA)"])
def test_e8_decrypt(benchmark, bench_group, bench_server, bench_user,
                    bench_update, name):
    scheme = _schemes(bench_group)[name]
    rng = seeded_rng("e8")
    ct = scheme.encrypt(
        KEY_MESSAGE, bench_user.public, bench_server.public_key, RELEASE, rng,
        verify_receiver_key=False,
    )
    if name == "TRE (CPA)":
        call = lambda: scheme.decrypt(ct, bench_user, bench_update)
    else:
        call = lambda: scheme.decrypt(
            ct, bench_user, bench_update, bench_server.public_key
        )
    result = benchmark.pedantic(call, rounds=3, iterations=1)
    assert result == KEY_MESSAGE


def test_e8_claim_table(benchmark, bench_group, bench_server, bench_user,
                        bench_update):
    group = bench_group
    rng = seeded_rng("e8-table")
    rows = []
    for name, scheme in _schemes(group).items():
        with group.counters.measure() as enc_ops:
            ct = scheme.encrypt(
                KEY_MESSAGE, bench_user.public, bench_server.public_key,
                RELEASE, rng, verify_receiver_key=False,
            )
        with group.counters.measure() as dec_ops:
            if name == "TRE (CPA)":
                scheme.decrypt(ct, bench_user, bench_update)
            else:
                scheme.decrypt(
                    ct, bench_user, bench_update, bench_server.public_key
                )
        rows.append((
            name,
            ct.size_bytes(group),
            f"{enc_ops.get('pairing', 0)}P {enc_ops.get('scalar_mult', 0)}M",
            f"{dec_ops.get('pairing', 0)}P {dec_ops.get('scalar_mult', 0)}M",
            "none" if name == "TRE (CPA)" else "rejects tampering",
        ))
    emit(format_table(
        ("scheme", "ct bytes", "enc ops", "dec ops", "integrity"),
        rows,
        title="E8: CCA transform overhead on TRE (32-byte payload, ss512)",
    ))
    benchmark(lambda: None)
