"""E10 — contest fairness under network jitter (the §1 motivation).

Paper claim (footnote 1): "a timely delivery of the timing
reference/update (within a reasonably small delay jitter bound) could be
more easily achievable" than timely delivery of the whole message — so
shipping ciphertexts early and gating on the tiny broadcast makes
opening times track *update* jitter instead of *message* delivery
spread.

Series: opening-time spread versus message-latency jitter for the TRE
strategy and the naive send-at-release strategy, 50 receivers each.
"""

from benchmarks.conftest import emit
from repro.analysis import format_table
from repro.sim.network import NormalJitterLatency, UniformLatency
from repro.sim.scenarios import run_programming_contest, run_sealed_bid_auction

JITTER_LEVELS = (30.0, 120.0, 480.0)


def _run(jitter, teams=50):
    return run_programming_contest(
        teams=teams,
        seed=int(jitter),
        message_latency=UniformLatency(5.0, 5.0 + jitter),
        update_latency=NormalJitterLatency(0.08, 0.03),
        problem_bytes=20_000,
    )


def test_e10_contest_simulation(benchmark):
    result = benchmark.pedantic(
        _run, args=(120.0,), kwargs={"teams": 20}, rounds=3, iterations=1
    )
    assert result.tre_spread < result.naive_spread


def test_e10_auction_simulation(benchmark):
    result = benchmark.pedantic(
        run_sealed_bid_auction, kwargs={"bidders": 20, "seed": 3},
        rounds=3, iterations=1,
    )
    assert result.early_openings_succeeded == 0


def test_e10_claim_table(benchmark):
    rows = []
    for jitter in JITTER_LEVELS:
        result = _run(jitter)
        rows.append((
            f"±{jitter:.0f}",
            f"{result.tre_spread:.3f}",
            f"{result.tre_worst_lag:.3f}",
            f"{result.naive_spread:.1f}",
            f"{result.naive_worst_lag:.1f}",
            f"{result.naive_spread / result.tre_spread:.0f}x",
        ))
    emit(format_table(
        ("msg jitter (s)", "TRE spread", "TRE worst lag", "naive spread",
         "naive worst lag", "fairness gain"),
        rows,
        title="E10: contest opening-time fairness, 50 teams — claim: TRE "
              "tracks update jitter, not message delivery spread",
    ))

    results = [_run(j) for j in JITTER_LEVELS]
    # TRE spread is flat in message jitter; naive spread grows with it.
    tre_spreads = [r.tre_spread for r in results]
    naive_spreads = [r.naive_spread for r in results]
    assert max(tre_spreads) < 1.0
    assert naive_spreads[2] > naive_spreads[0] * 3
    # Everyone got the ciphertext before the start; nobody opened early.
    for result in results:
        assert max(result.ciphertext_arrivals) <= result.contest_start
        assert min(result.tre_open_times) >= result.contest_start
    benchmark(lambda: None)
