"""E7 — conditional oblivious transfer: the interactive baseline's cost.

Paper claims (§2.2): Di Crescenzo et al.'s protocol "has a logarithmic
complexity in the time parameter", needs a round trip between *each
receiver* and the server *per message*, and is "subject to denial of
service attacks" the server cannot filter (footnote 5).

Rows: bytes moved and server group-operations per session versus the
time-parameter bit width, plus the per-receiver server work TRE avoids
entirely (its per-epoch work is one broadcast, zero per receiver).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import format_table
from repro.baselines.cot import COTTimeServer, run_cot_session, seal_message
from repro.crypto.rng import seeded_rng

TIME_BITS = (8, 16, 32, 64)


@pytest.mark.parametrize("bits", [16, 32])
def test_e7_cot_session(benchmark, toy_group, bits):
    rng = seeded_rng(f"e7-{bits}")
    server = COTTimeServer(toy_group, time_bits=bits, rng=rng)
    sealed = seal_message(toy_group, server.transfer_public, b"m", 5, rng)
    result = benchmark.pedantic(
        run_cot_session,
        args=(toy_group, server, sealed, 10, rng),
        rounds=3,
        iterations=1,
    )
    assert result[0] == b"m"


def test_e7_claim_table(benchmark, toy_group):
    group = toy_group
    rows = []
    moved_by_bits = {}
    for bits in TIME_BITS:
        rng = seeded_rng(f"e7-table-{bits}")
        server = COTTimeServer(group, time_bits=bits, rng=rng)
        sealed = seal_message(group, server.transfer_public, b"m", 5, rng)
        with group.counters.measure() as ops:
            plaintext, moved = run_cot_session(group, server, sealed, 10, rng)
        assert plaintext == b"m"
        moved_by_bits[bits] = moved
        rows.append((
            bits,
            f"2^{bits}",
            moved,
            server.homomorphic_ops,
            ops.get("scalar_mult", 0),
        ))
    rows.append(("TRE", "any", "0 (no interaction)", 0, 0))
    emit(format_table(
        ("time bits", "time range", "bytes/session", "server homo-ops",
         "group ops"),
        rows,
        title="E7: COT per-receiver session cost vs time parameter — "
              "claim: O(log t) work, per-receiver interaction "
              "(TRE: none)",
    ))

    # Logarithmic in the range == linear in bits (within framing slack).
    assert moved_by_bits[64] < 2.3 * moved_by_bits[32]
    assert moved_by_bits[64] > 3 * moved_by_bits[8]
    benchmark(lambda: None)


def test_e7_dos_far_future_query(benchmark, toy_group):
    """Footnote 5: a far-future query costs the server full work and is
    indistinguishable from a legitimate one."""
    rng = seeded_rng("e7-dos")
    server = COTTimeServer(toy_group, time_bits=16, rng=rng)
    sealed = seal_message(
        toy_group, server.transfer_public, b"m", 2**16 - 1, rng
    )

    def hopeless_session():
        plaintext, _ = run_cot_session(toy_group, server, sealed, 0, rng)
        assert plaintext is None

    benchmark.pedantic(hopeless_session, rounds=3, iterations=1)
