"""A machine-readable benchmark trajectory (``BENCH_pairing.json``).

Claim tables (``benchmarks/claim_tables.txt``) are for humans; this
module keeps the same measurements as data, so successive PRs can be
compared mechanically.  Entries are keyed ``op:params:variant`` (e.g.
``scalar_mult:ss512:fixed_base``) and merged on write — re-running one
experiment updates its rows and leaves the rest of the file alone.

Each entry records the median wall time, the round count, the live
operation counts from :mod:`repro.pairing.opcount` for one execution,
and free-form extras.  For every ``op:params`` pair that has both a
``direct`` and a non-direct variant, ``write`` derives a
``speedup`` ratio (direct median / fast-path median).
"""

from __future__ import annotations

import json
import pathlib
import statistics
import time

SCHEMA = "repro-bench-trajectory/v1"
DIRECT = "direct"

DEFAULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pairing.json"


def time_median(fn, rounds: int = 5) -> float:
    """Median wall-clock seconds of ``rounds`` calls to ``fn``."""
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


class BenchTrajectory:
    """Accumulates benchmark entries and merges them into the JSON file."""

    def __init__(self, path: pathlib.Path | str | None = None):
        self.path = pathlib.Path(path) if path else DEFAULT_PATH
        self.entries: dict[str, dict] = {}

    @staticmethod
    def key(op: str, params: str, variant: str) -> str:
        return f"{op}:{params}:{variant}"

    def record(
        self,
        op: str,
        params: str,
        variant: str,
        median_seconds: float,
        rounds: int,
        op_counts: dict[str, int] | None = None,
        **extra,
    ) -> None:
        entry = {
            "op": op,
            "params": params,
            "variant": variant,
            "median_ms": round(median_seconds * 1000, 4),
            "rounds": rounds,
        }
        if op_counts:
            entry["op_counts"] = dict(op_counts)
        if extra:
            entry.update(extra)
        self.entries[self.key(op, params, variant)] = entry

    def measure(
        self,
        group,
        op: str,
        variant: str,
        fn,
        rounds: int = 5,
        **extra,
    ) -> float:
        """Time ``fn``, capture one run's op counts, record, return median s."""
        with group.counters.measure() as counts:
            fn()
        median = time_median(fn, rounds)
        self.record(
            op, group.params.name, variant, median, rounds,
            op_counts=counts, **extra,
        )
        return median

    def _derive_speedups(self, entries: dict[str, dict]) -> dict[str, float]:
        by_pair: dict[tuple[str, str], dict[str, float]] = {}
        for entry in entries.values():
            pair = (entry["op"], entry["params"])
            by_pair.setdefault(pair, {})[entry["variant"]] = entry["median_ms"]
        speedups = {}
        for (op, params), variants in sorted(by_pair.items()):
            direct = variants.get(DIRECT)
            if not direct:
                continue
            for variant, ms in variants.items():
                if variant == DIRECT or not ms:
                    continue
                speedups[f"{op}:{params}:{variant}"] = round(direct / ms, 3)
        return speedups

    def write(self) -> pathlib.Path:
        """Merge this run's entries into the trajectory file."""
        merged: dict[str, dict] = {}
        if self.path.exists():
            try:
                merged = json.loads(self.path.read_text()).get("entries", {})
            except (json.JSONDecodeError, OSError):
                merged = {}
        merged.update(self.entries)
        merged = dict(sorted(merged.items()))
        payload = {
            "schema": SCHEMA,
            "entries": merged,
            "speedup_vs_direct": self._derive_speedups(merged),
        }
        self.path.write_text(json.dumps(payload, indent=2) + "\n")
        return self.path

    def summary_lines(self) -> list[str]:
        lines = []
        for key, entry in sorted(self.entries.items()):
            lines.append(f"{key}: {entry['median_ms']:.3f} ms")
        for key, ratio in self._derive_speedups(self.entries).items():
            lines.append(f"speedup {key}: {ratio:.2f}x vs direct")
        return lines
