"""A machine-readable benchmark trajectory (``BENCH_pairing.json``).

Claim tables (``benchmarks/claim_tables.txt``) are for humans; this
module keeps the same measurements as data, so successive PRs can be
compared mechanically.  Entries are keyed ``op:params:variant`` (e.g.
``scalar_mult:ss512:fixed_base``) and merged on write — re-running one
experiment updates its rows and leaves the rest of the file alone.

Each entry records the median wall time, the round count, the live
operation counts from :mod:`repro.pairing.opcount` for one execution,
and free-form extras.  For every ``op:params`` pair that has both a
``direct`` and a non-direct variant, ``write`` derives a
``speedup`` ratio (direct median / fast-path median).

Run as a module for the regression gate::

    PYTHONPATH=src python -m benchmarks.trajectory --check

re-measures the smoke entries fresh (without touching the committed
file), prints a committed-vs-fresh comparison table, and exits nonzero
if any entry slowed down by more than ``--tolerance`` (default ±30% —
wall-clock medians on shared machines are noisy; the gate is meant to
catch step-function regressions, not jitter).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

SCHEMA = "repro-bench-trajectory/v1"
DIRECT = "direct"

DEFAULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pairing.json"


def time_median(fn, rounds: int = 5) -> float:
    """Median wall-clock seconds of ``rounds`` calls to ``fn``."""
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


class BenchTrajectory:
    """Accumulates benchmark entries and merges them into the JSON file."""

    def __init__(self, path: pathlib.Path | str | None = None):
        self.path = pathlib.Path(path) if path else DEFAULT_PATH
        self.entries: dict[str, dict] = {}

    @staticmethod
    def key(op: str, params: str, variant: str) -> str:
        return f"{op}:{params}:{variant}"

    def record(
        self,
        op: str,
        params: str,
        variant: str,
        median_seconds: float,
        rounds: int,
        op_counts: dict[str, int] | None = None,
        backend: str | None = None,
        **extra,
    ) -> None:
        from repro.parallel import available_workers

        entry = {
            "op": op,
            "params": params,
            "variant": variant,
            "median_ms": round(median_seconds * 1000, 4),
            "rounds": rounds,
            # Execution context: medians are only comparable between
            # runs with the same arithmetic backend on the same CPU
            # budget, so every entry records both and --check skips
            # mismatched pairs (see compare_entries).
            "cpus": available_workers(),
        }
        if backend is not None:
            entry["backend"] = backend
        if op_counts:
            entry["op_counts"] = dict(op_counts)
        if extra:
            entry.update(extra)
        self.entries[self.key(op, params, variant)] = entry

    def measure(
        self,
        group,
        op: str,
        variant: str,
        fn,
        rounds: int = 5,
        **extra,
    ) -> float:
        """Time ``fn``, capture one run's op counts, record, return median s."""
        with group.counters.measure() as counts:
            fn()
        median = time_median(fn, rounds)
        self.record(
            op, group.params.name, variant, median, rounds,
            op_counts=counts, backend=group.backend_name, **extra,
        )
        return median

    def _derive_speedups(self, entries: dict[str, dict]) -> dict[str, float]:
        by_pair: dict[tuple[str, str], dict[str, float]] = {}
        for entry in entries.values():
            pair = (entry["op"], entry["params"])
            by_pair.setdefault(pair, {})[entry["variant"]] = entry["median_ms"]
        speedups = {}
        for (op, params), variants in sorted(by_pair.items()):
            direct = variants.get(DIRECT)
            if not direct:
                continue
            for variant, ms in variants.items():
                if variant == DIRECT or not ms:
                    continue
                speedups[f"{op}:{params}:{variant}"] = round(direct / ms, 3)
        return speedups

    def write(self) -> pathlib.Path:
        """Merge this run's entries into the trajectory file."""
        merged: dict[str, dict] = {}
        if self.path.exists():
            try:
                merged = json.loads(self.path.read_text()).get("entries", {})
            except (json.JSONDecodeError, OSError):
                merged = {}
        merged.update(self.entries)
        merged = dict(sorted(merged.items()))
        payload = {
            "schema": SCHEMA,
            "entries": merged,
            "speedup_vs_direct": self._derive_speedups(merged),
        }
        self.path.write_text(json.dumps(payload, indent=2) + "\n")
        return self.path

    def summary_lines(self) -> list[str]:
        lines = []
        for key, entry in sorted(self.entries.items()):
            lines.append(f"{key}: {entry['median_ms']:.3f} ms")
        for key, ratio in self._derive_speedups(self.entries).items():
            lines.append(f"speedup {key}: {ratio:.2f}x vs direct")
        return lines


# ----------------------------------------------------------------------
# Regression check: fresh re-measurement vs the committed trajectory.
# ----------------------------------------------------------------------


def load_committed(path: pathlib.Path | str | None = None) -> dict[str, dict]:
    """The committed trajectory's entries (empty dict if unreadable)."""
    path = pathlib.Path(path) if path else DEFAULT_PATH
    try:
        return json.loads(path.read_text()).get("entries", {})
    except (OSError, json.JSONDecodeError):
        return {}


#: Entry fields that define the execution context a median was taken
#: under.  --check only gates committed/fresh pairs whose contexts
#: match; a committed entry missing a field predates context recording
#: and matches anything (legacy wildcard).
CONTEXT_FIELDS = ("backend", "cpus")


def _context_mismatch(committed_entry: dict, fresh_entry: dict) -> bool:
    return any(
        field in committed_entry
        and field in fresh_entry
        and committed_entry[field] != fresh_entry[field]
        for field in CONTEXT_FIELDS
    )


def compare_entries(
    committed: dict[str, dict],
    fresh: dict[str, dict],
    tolerance: float,
) -> tuple[list[tuple], list[str], list[str]]:
    """Diff fresh medians against committed ones.

    Returns ``(rows, regressions, new_keys)`` where each row is
    ``(key, committed_ms, fresh_ms, ratio, status)`` and ``regressions``
    lists the keys whose fresh median exceeds the committed one by more
    than ``tolerance`` (a fraction, e.g. ``0.3`` for ±30%).

    A fresh key with no committed baseline is *informational*, never a
    failure: it lands in ``new_keys`` with status ``"new"`` so a PR
    that adds benchmark coverage passes the gate and the new entries
    are visible in the table.  Committed keys the fresh run did not
    measure appear with status ``"not-measured"`` (also informational —
    the gate only judges pairs measured on both sides).  A pair whose
    recorded execution context (:data:`CONTEXT_FIELDS` — backend, CPU
    count) disagrees gets status ``"context-differs"``: the ratio is
    shown but never gated, since a median taken under a different
    backend or CPU budget is not evidence of a regression.  Committed
    entries that predate context recording match any context.
    """
    rows: list[tuple] = []
    regressions: list[str] = []
    new_keys: list[str] = []
    for key, entry in sorted(fresh.items()):
        fresh_ms = entry["median_ms"]
        base = committed.get(key)
        if base is None:
            rows.append((key, None, fresh_ms, None, "new"))
            new_keys.append(key)
            continue
        base_ms = base["median_ms"]
        if not base_ms:
            rows.append((key, base_ms, fresh_ms, None, "no-baseline"))
            continue
        if _context_mismatch(base, entry):
            rows.append((
                key, base_ms, fresh_ms, fresh_ms / base_ms, "context-differs"
            ))
            continue
        ratio = fresh_ms / base_ms
        if ratio > 1.0 + tolerance:
            status = "REGRESSION"
            regressions.append(key)
        elif ratio < 1.0 - tolerance:
            status = "improved"
        else:
            status = "ok"
        rows.append((key, base_ms, fresh_ms, ratio, status))
    for key, entry in sorted(committed.items()):
        if key not in fresh:
            rows.append((key, entry.get("median_ms"), None, None, "not-measured"))
    return rows, regressions, new_keys


def render_comparison(rows: list[tuple], tolerance: float) -> str:
    header = ("entry", "committed ms", "fresh ms", "ratio", "status")
    cells = [header]
    for key, base_ms, fresh_ms, ratio, status in rows:
        cells.append((
            key,
            f"{base_ms:.3f}" if base_ms is not None else "-",
            f"{fresh_ms:.3f}" if fresh_ms is not None else "-",
            f"{ratio:.2f}x" if ratio is not None else "-",
            status,
        ))
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    lines = [
        f"committed vs fresh medians (tolerance ±{tolerance * 100:.0f}%)"
    ]
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def run_check(
    params: str = "toy64",
    tolerance: float = 0.3,
    rounds: int = 3,
    batch: int = 32,
    workers: int | None = None,
    path: pathlib.Path | str | None = None,
    backend: str | None = None,
) -> int:
    """Re-measure the smoke entries and diff against the committed file.

    Never writes the trajectory; returns a process exit code (0 = no
    regression beyond tolerance, 1 = at least one).  Only entries whose
    committed execution context (backend, cpus) matches the fresh run
    are gated; the rest are reported as ``context-differs``.
    """
    from benchmarks import smoke
    from repro.crypto.rng import seeded_rng
    from repro.pairing.api import PairingGroup

    committed = load_committed(path)
    group = PairingGroup(params, family="A", backend=backend)
    rng = seeded_rng(f"smoke:{params}")
    fresh = BenchTrajectory(path)
    smoke.run_all(group, rng, fresh, rounds, batch, workers)
    rows, regressions, new_keys = compare_entries(
        committed, fresh.entries, tolerance
    )
    print(render_comparison(rows, tolerance))
    if new_keys:
        print(
            f"\n{len(new_keys)} new entr"
            f"{'y' if len(new_keys) == 1 else 'ies'} without a committed "
            "baseline (informational, not gated):"
        )
        for key in new_keys:
            print(f"  {key}")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond ±{tolerance * 100:.0f}%:")
        for key in regressions:
            print(f"  {key}")
        return 1
    print("\nno regressions beyond tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="re-measure the smoke entries and fail on "
                             "regressions vs the committed trajectory")
    parser.add_argument("--params", default="toy64",
                        help="parameter set for --check (default toy64)")
    parser.add_argument("--tolerance", type=float, default=0.3,
                        help="allowed slowdown fraction (default 0.3 = ±30%%)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per fresh measurement")
    parser.add_argument("--batch", type=int, default=32,
                        help="batch size for the batch/parallel entries")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for the parallel entry")
    parser.add_argument("--backend", default=None,
                        help="field-arithmetic backend for the fresh "
                             "measurements (python, montgomery, gmpy2, "
                             "auto; default auto)")
    parser.add_argument("--path", default=None,
                        help="trajectory file (default: repo root "
                             "BENCH_pairing.json)")
    args = parser.parse_args(argv)

    if args.check:
        return run_check(
            params=args.params,
            tolerance=args.tolerance,
            rounds=args.rounds,
            batch=args.batch,
            workers=args.workers,
            path=args.path,
            backend=args.backend,
        )
    # Without --check: print the committed trajectory.
    committed = load_committed(args.path)
    if not committed:
        print("no committed trajectory found")
        return 0
    for key, entry in sorted(committed.items()):
        print(f"{key}: {entry['median_ms']:.3f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
