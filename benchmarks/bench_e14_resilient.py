"""E14 — missing-update resilience: the §6 future-work construction, priced.

The hierarchical (GS-HIBE over the time tree) scheme lets one broadcast
unlock every elapsed epoch.  The costs the paper anticipated trading:

* update size grows from 1 point to O(d²/2) points worst case,
* decryption grows from 1 pairing to up to d+1 pairings,

where d = log2(number of epochs).  Rows: update points/bytes and
decryption pairings versus tree depth, against plain TRE's constants —
plus the catch-up comparison (epochs a receiver can recover from ONE
message after missing m broadcasts).
"""

from benchmarks.conftest import KEY_MESSAGE, emit
from repro.analysis import format_table
from repro.core.resilient import ResilientTRE, ResilientTimeServer
from repro.core.timeserver import PassiveTimeServer
from repro.core.tre import TimedReleaseScheme
from repro.core.keys import UserKeyPair
from repro.crypto.rng import seeded_rng

DEPTHS = (4, 8, 12, 16)


def _world(group, depth):
    rng = seeded_rng(f"e14-{depth}")
    server = ResilientTimeServer(group, depth, rng)
    scheme = ResilientTRE(group, server.tree, server.public_key)
    user = scheme.generate_user_keypair(server.public_key, rng)
    return rng, server, scheme, user


def test_e14_publish_update(benchmark, toy_group):
    rng, server, _, _ = _world(toy_group, 8)
    counter = iter(range(255))
    benchmark.pedantic(
        lambda: server.publish_update(next(counter)), rounds=3, iterations=1
    )


def test_e14_decrypt(benchmark, toy_group):
    rng, server, scheme, user = _world(toy_group, 8)
    ct = scheme.encrypt(KEY_MESSAGE, user.public, 100, rng,
                        verify_receiver_key=False)
    update = server.publish_update(200)
    result = benchmark.pedantic(
        scheme.decrypt, args=(ct, user, update, rng), rounds=3, iterations=1
    )
    assert result == KEY_MESSAGE


def test_e14_plain_tre_reference(benchmark, toy_group):
    rng = seeded_rng("e14-ref")
    server = PassiveTimeServer(toy_group, rng=rng)
    scheme = TimedReleaseScheme(toy_group)
    user = UserKeyPair.generate(toy_group, server.public_key, rng)
    ct = scheme.encrypt(KEY_MESSAGE, user.public, server.public_key, b"t", rng,
                        verify_receiver_key=False)
    update = server.publish_update(b"t")
    benchmark.pedantic(
        scheme.decrypt, args=(ct, user, update), rounds=3, iterations=1
    )


def test_e14_claim_table(benchmark, toy_group):
    group = toy_group
    rows = []
    for depth in DEPTHS:
        rng, server, scheme, user = _world(group, depth)
        worst_epoch = (1 << depth) - 1
        update = server.publish_update(worst_epoch)
        release_epoch = worst_epoch // 2
        ct = scheme.encrypt(
            KEY_MESSAGE, user.public, release_epoch, rng,
            verify_receiver_key=False,
        )
        with group.counters.measure() as dec_ops:
            assert scheme.decrypt(ct, user, update, rng) == KEY_MESSAGE
        rows.append((
            depth,
            1 << depth,
            update.point_count(),
            update.size_bytes(group),
            dec_ops.get("pairing", 0),
        ))
    rows.append(("plain TRE", "1 label", 1, 54, 1))
    emit(format_table(
        ("tree depth d", "epochs", "update points (worst)", "update bytes",
         "dec pairings"),
        rows,
        title="E14: missing-update resilience (§6) — one broadcast unlocks "
              "all elapsed epochs; cost grows with log(epochs)",
    ))

    # Catch-up property: after missing m broadcasts, ONE update recovers
    # everything (vs m archive fetches for plain TRE).
    rng, server, scheme, user = _world(group, 8)
    missed = [scheme.encrypt(KEY_MESSAGE, user.public, e, rng,
                             verify_receiver_key=False)
              for e in range(40, 90, 10)]
    update = server.publish_update(200)
    for ct in missed:
        assert scheme.decrypt(ct, user, update, rng) == KEY_MESSAGE
    emit(format_table(
        ("design", "messages to catch up after missing m updates"),
        [("plain TRE (archive lookups)", "m"),
         ("hierarchical (this module)", "1")],
        title="E14b: catch-up traffic after an offline period",
    ))
    benchmark(lambda: None)
