"""Legacy setup shim.

`pip install -e .` needs the `wheel` package to build a PEP-660 editable
wheel; on fully offline machines without `wheel`, run

    python setup.py develop

which installs the same editable layout through setuptools directly.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
