"""Tests for the H1/H2/Zq hash maps."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.pairing import hashing
from repro.pairing.api import PairingGroup

GROUPS = {
    "A": PairingGroup("toy64", family="A"),
    "B": PairingGroup("toy64", family="B"),
}

common = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@pytest.mark.parametrize("family", ["A", "B"])
class TestHashToSubgroup:
    def test_in_subgroup(self, family):
        g = GROUPS[family]
        point = g.hash_to_g1(b"2026-07-05T00:00Z")
        assert g.in_group(point)
        assert not point.is_infinity

    def test_deterministic(self, family):
        g = GROUPS[family]
        assert g.hash_to_g1(b"x") == g.hash_to_g1(b"x")

    def test_different_inputs_differ(self, family):
        g = GROUPS[family]
        assert g.hash_to_g1(b"x") != g.hash_to_g1(b"y")

    def test_tag_separation(self, family):
        g = GROUPS[family]
        assert g.hash_to_g1(b"x", tag="t1") != g.hash_to_g1(b"x", tag="t2")

    def test_empty_input(self, family):
        g = GROUPS[family]
        assert g.in_group(g.hash_to_g1(b""))

    def test_long_input(self, family):
        g = GROUPS[family]
        assert g.in_group(g.hash_to_g1(b"T" * 10_000))


@common
@given(st.binary(max_size=64))
def test_hash_to_subgroup_property(data):
    g = GROUPS["A"]
    point = g.hash_to_g1(data)
    assert g.in_group(point)


class TestHashGtToBytes:
    def test_length(self):
        g = GROUPS["A"]
        e = g.pair(g.generator, g.generator)
        for n in (0, 1, 16, 32, 64, 65, 1000):
            assert len(g.mask_bytes(e, n)) == n

    def test_deterministic(self):
        g = GROUPS["A"]
        e = g.pair(g.generator, g.generator)
        assert g.mask_bytes(e, 32) == g.mask_bytes(e, 32)

    def test_prefix_consistency(self):
        g = GROUPS["A"]
        e = g.pair(g.generator, g.generator)
        assert g.mask_bytes(e, 128)[:32] == g.mask_bytes(e, 32)

    def test_distinct_elements_distinct_masks(self):
        g = GROUPS["A"]
        e = g.pair(g.generator, g.generator)
        assert g.mask_bytes(e, 32) != g.mask_bytes(e ** 2, 32)

    def test_tag_separation(self):
        g = GROUPS["A"]
        e = g.pair(g.generator, g.generator)
        assert g.mask_bytes(e, 32, tag="a") != g.mask_bytes(e, 32, tag="b")


class TestHashToScalar:
    def test_range(self):
        q = GROUPS["A"].q
        for i in range(50):
            v = hashing.hash_to_scalar(q, str(i).encode())
            assert 1 <= v < q

    def test_deterministic(self):
        q = GROUPS["A"].q
        assert hashing.hash_to_scalar(q, b"m") == hashing.hash_to_scalar(q, b"m")

    def test_multi_part_framing(self):
        q = GROUPS["A"].q
        # (b"ab", b"c") must differ from (b"a", b"bc").
        assert hashing.hash_to_scalar(q, b"ab", b"c") != hashing.hash_to_scalar(
            q, b"a", b"bc"
        )

    def test_small_modulus(self):
        for _ in range(5):
            assert 1 <= hashing.hash_to_scalar(17, b"x") < 17


class TestHashBytes:
    def test_framing_unambiguous(self):
        assert hashing.hash_bytes(b"ab", b"c") != hashing.hash_bytes(b"a", b"bc")

    def test_tag_separation(self):
        assert hashing.hash_bytes(b"m", tag="x") != hashing.hash_bytes(b"m", tag="y")
