"""The multi-pairing kernel must be byte-identical to pairing products.

``multi_pair`` runs the Miller loops of every pair in lockstep into one
``Fp²`` accumulator and applies a single shared final exponentiation;
negative exponents ride the unitary-conjugation trick
(``FE(conj(f)) == FE(f)^-1``).  Everything here is exact arithmetic mod
``p``, so the composite result must match the product of individual
``pair`` calls *bit for bit* — these tests assert that identity across
both curve families, mixed exponent signs, cached Miller lines, and the
production parameter set.
"""

import random

import pytest

from repro.core.keys import ServerKeyPair, UserKeyPair
from repro.pairing.api import PairingGroup


def _random_pairs(group, rng, count):
    return [
        (group.random_point(rng), group.random_point(rng))
        for _ in range(count)
    ]


def _sequential_product(group, pairs, exponents=None):
    if exponents is None:
        exponents = [1] * len(pairs)
    product = group.gt_identity()
    for (p_point, q_point), exponent in zip(pairs, exponents):
        factor = group.pair(p_point, q_point)
        product = product * (factor if exponent > 0 else factor.inverse())
    return product


class TestByteIdentity:
    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_plain_product(self, any_group, rng, count):
        pairs = _random_pairs(any_group, rng, count)
        fused = any_group.multi_pair(pairs)
        assert fused.to_bytes() == _sequential_product(any_group, pairs).to_bytes()

    @pytest.mark.parametrize(
        "signs",
        [(1, -1), (-1, 1), (1, 1, -1), (-1, -1, -1), (1, -1, 1, -1)],
    )
    def test_mixed_exponents(self, any_group, rng, signs):
        pairs = _random_pairs(any_group, rng, len(signs))
        fused = any_group.multi_pair(pairs, list(signs))
        expected = _sequential_product(any_group, pairs, list(signs))
        assert fused.to_bytes() == expected.to_bytes()

    def test_with_precomputed_lines(self, group, rng):
        pairs = _random_pairs(group, rng, 3)
        expected = _sequential_product(group, pairs, [1, -1, 1])
        # Cache lines for a mix of first and second arguments.
        group.precompute_pairing(pairs[0][0])
        group.precompute_pairing(pairs[1][1])
        try:
            fused = group.multi_pair(pairs, [1, -1, 1])
            with group.counters.measure() as ops:
                again = group.multi_pair(pairs, [1, -1, 1])
            assert fused.to_bytes() == expected.to_bytes()
            assert again.to_bytes() == expected.to_bytes()
            assert ops.get("pairing_precomp", 0) == 2
        finally:
            group.clear_precomputations()

    def test_matches_pair_under_precomp_and_not(self, group, rng):
        """Cached and uncached pairs agree inside one multi-pairing."""
        p_point, q_point = group.random_point(rng), group.random_point(rng)
        direct = group.pair(p_point, q_point)
        fused = group.multi_pair([(p_point, q_point)])
        assert fused.to_bytes() == direct.to_bytes()

    def test_infinity_pairs_contribute_identity(self, any_group, rng):
        live = (any_group.random_point(rng), any_group.random_point(rng))
        pairs = [
            (any_group.identity(), any_group.random_point(rng)),
            live,
            (any_group.random_point(rng), any_group.identity()),
        ]
        fused = any_group.multi_pair(pairs)
        assert fused.to_bytes() == any_group.pair(*live).to_bytes()

    def test_empty_and_all_infinity(self, any_group, rng):
        assert any_group.multi_pair([]).is_identity()
        pairs = [(any_group.identity(), any_group.random_point(rng))]
        assert any_group.multi_pair(pairs).is_identity()

    def test_exponent_validation(self, group, rng):
        pairs = _random_pairs(group, rng, 2)
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            group.multi_pair(pairs, [1])
        with pytest.raises(ParameterError):
            group.multi_pair(pairs, [1, 2])

    def test_counters(self, group, rng):
        pairs = _random_pairs(group, rng, 3)
        with group.counters.measure() as ops:
            group.multi_pair(pairs, [1, 1, -1])
        assert ops.get("pairing", 0) == 3
        assert ops.get("miller_loop", 0) == 3
        assert ops.get("final_exp", 0) == 1
        assert ops.get("multi_pair", 0) == 1


class TestProductionParams:
    """One identity check at production size (kept small: ~6 pairings)."""

    def test_ss512_byte_identity(self):
        group = PairingGroup("ss512", family="A")
        rng = random.Random(0x55512)
        pairs = _random_pairs(group, rng, 2)
        fused = group.multi_pair(pairs, [1, -1])
        expected = _sequential_product(group, pairs, [1, -1])
        assert fused.to_bytes() == expected.to_bytes()


class TestPairRatioIsOne:
    def test_true_and_false_ratios(self, any_group, rng):
        a = any_group.random_scalar(rng)
        g = any_group.random_point(rng)
        h = any_group.random_point(rng)
        # ê(aG, H) == ê(G, aH): a true ratio.
        assert any_group.pair_ratio_is_one(
            ((any_group.mul(g, a), h),), ((g, any_group.mul(h, a)),)
        )
        # Perturbed: false.
        assert not any_group.pair_ratio_is_one(
            ((any_group.mul(g, a + 1), h),), ((g, any_group.mul(h, a)),)
        )

    def test_empty_equation_is_trivially_true(self, group):
        assert group.pair_ratio_is_one(())

    def test_infinity_inputs_rejected(self, any_group, rng):
        """Verifier guard: an infinity factor must fail, not cancel."""
        g = any_group.random_point(rng)
        inf = any_group.identity()
        assert not any_group.pair_ratio_is_one(((inf, g),), ((g, g),))
        assert not any_group.pair_ratio_is_one(((g, g),), ((g, inf),))
        # Both sides infinity would cancel mathematically — still False.
        assert not any_group.pair_ratio_is_one(((inf, g),), ((inf, g),))

    def test_verification_equation(self, group, session_rng, rng):
        server = ServerKeyPair.generate(group, session_rng)
        user = UserKeyPair.generate(group, server.public, rng)
        assert group.pair_ratio_is_one(
            ((user.public.a_generator, server.public.s_generator),),
            ((server.public.generator, user.public.as_generator),),
        )
