"""Re-verify every arithmetic property of the frozen parameter sets."""

import pytest

from repro.errors import ParameterError
from repro.math.primes import is_probable_prime
from repro.pairing.params import PARAMETER_SETS, ParameterSet, get_parameter_set


@pytest.mark.parametrize("name", sorted(PARAMETER_SETS))
class TestParameterSet:
    def test_p_equals_cq_minus_one(self, name):
        ps = PARAMETER_SETS[name]
        assert ps.p == ps.c * ps.q - 1

    def test_q_prime(self, name):
        assert is_probable_prime(PARAMETER_SETS[name].q)

    def test_p_prime(self, name):
        assert is_probable_prime(PARAMETER_SETS[name].p)

    def test_cofactor_divisible_by_12(self, name):
        assert PARAMETER_SETS[name].c % 12 == 0

    def test_family_a_congruence(self, name):
        assert PARAMETER_SETS[name].p % 4 == 3

    def test_family_b_congruence(self, name):
        assert PARAMETER_SETS[name].p % 3 == 2

    def test_bit_lengths(self, name):
        ps = PARAMETER_SETS[name]
        assert ps.q_bits == ps.q.bit_length()
        assert ps.p_bits == ps.p.bit_length()


def test_expected_sizes():
    assert PARAMETER_SETS["toy64"].q_bits == 64
    assert PARAMETER_SETS["ss512"].p_bits == 512
    assert PARAMETER_SETS["ss1024"].p_bits == 1024
    assert PARAMETER_SETS["ss1536"].p_bits == 1536


def test_lookup():
    assert get_parameter_set("ss512").name == "ss512"
    with pytest.raises(ParameterError):
        get_parameter_set("nope")


def test_inconsistent_set_rejected():
    with pytest.raises(ParameterError):
        ParameterSet("bad", q=7, c=12, p=100, security_bits=0)
    with pytest.raises(ParameterError):
        ParameterSet("bad", q=7, c=10, p=69, security_bits=0)
