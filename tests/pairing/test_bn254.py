"""Tests for the BN254 Type-3 pairing backend.

BN254 pairings cost ~0.5 s each in pure Python, so the expensive GT
values are computed once per module and the scalar checks reuse them.
"""

import pytest

from repro.errors import NotInSubgroupError
from repro.pairing.bn254 import (
    ATE_LOOP_COUNT,
    CURVE_ORDER,
    FIELD_MODULUS,
    G2_COFACTOR,
    bn254,
)


@pytest.fixture(scope="module")
def engine():
    return bn254()


@pytest.fixture(scope="module")
def base_pairing(engine):
    return engine.pair(engine.g1, engine.g2)


class TestParameters:
    def test_bn_parameter_relation(self):
        # p and q derive from the BN parameter u.
        u = 4965661367192848881
        p = 36 * u**4 + 36 * u**3 + 24 * u**2 + 6 * u + 1
        q = 36 * u**4 + 36 * u**3 + 18 * u**2 + 6 * u + 1
        assert p == FIELD_MODULUS
        assert q == CURVE_ORDER
        assert 6 * u + 2 == ATE_LOOP_COUNT

    def test_g2_cofactor(self):
        assert G2_COFACTOR == 2 * FIELD_MODULUS - CURVE_ORDER

    def test_hard_part_divisibility(self):
        p, q = FIELD_MODULUS, CURVE_ORDER
        assert (p**4 - p**2 + 1) % q == 0


class TestGroups:
    def test_generators_on_curves(self, engine):
        assert engine.curve_g1.contains(engine.g1.x, engine.g1.y)
        assert engine.curve_g2.contains(engine.g2.x, engine.g2.y)

    def test_generator_orders(self, engine):
        assert (engine.g1 * CURVE_ORDER).is_infinity
        assert (engine.g2 * CURVE_ORDER).is_infinity
        assert not (engine.g1 * (CURVE_ORDER - 1)).is_infinity

    def test_g1_membership(self, engine, rng):
        assert engine.in_g1(engine.g1 * 12345)
        assert engine.in_g1(engine.curve_g1.infinity())
        assert not engine.in_g1(engine.g2)

    def test_g2_membership(self, engine):
        assert engine.in_g2(engine.g2 * 999)
        assert not engine.in_g2(engine.g1)

    def test_twist_lands_on_fq12_curve(self, engine):
        twisted = engine.twist(engine.g2)
        assert engine.curve_g12.contains(twisted.x, twisted.y)

    def test_hash_to_g1(self, engine):
        h1 = engine.hash_to_g1(b"round-1")
        h2 = engine.hash_to_g1(b"round-2")
        assert engine.in_g1(h1)
        assert h1 != h2
        assert engine.hash_to_g1(b"round-1") == h1


class TestPairing:
    def test_non_degenerate(self, base_pairing):
        assert not base_pairing.is_one()

    def test_gt_order(self, base_pairing):
        assert (base_pairing ** CURVE_ORDER).is_one()

    def test_bilinearity(self, engine, base_pairing):
        # Small scalars keep the reused-GT exponentiations cheap.
        a, b = 31337, 271828
        left = engine.pair(engine.g1 * a, engine.g2 * b)
        assert left == base_pairing ** (a * b)

    def test_infinity_inputs(self, engine):
        assert engine.pair(engine.curve_g1.infinity(), engine.g2).is_one()
        assert engine.pair(engine.g1, engine.curve_g2.infinity()).is_one()

    def test_wrong_group_inputs_rejected(self, engine):
        with pytest.raises(NotInSubgroupError):
            engine.pair(engine.g2, engine.g2)
        with pytest.raises(NotInSubgroupError):
            engine.pair(engine.g1, engine.g1)

    def test_mask_bytes(self, engine, base_pairing):
        mask = engine.mask_bytes(base_pairing, 48)
        assert len(mask) == 48
        assert engine.mask_bytes(base_pairing, 48) == mask
        assert engine.mask_bytes(base_pairing ** 2, 48) != mask
