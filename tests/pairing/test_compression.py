"""Tests for compressed G1 point encoding."""

import pytest

from repro.errors import EncodingError, NotOnCurveError, ReproError


class TestCompressedEncoding:
    def test_roundtrip(self, any_group, rng):
        for _ in range(10):
            point = any_group.random_point(rng)
            blob = any_group.point_to_bytes_compressed(point)
            assert any_group.point_from_bytes_compressed(blob) == point

    def test_size_is_half_plus_one(self, group):
        assert group.compressed_point_bytes == (group.point_bytes + 1) // 2

    def test_infinity_roundtrip(self, group):
        blob = group.point_to_bytes_compressed(group.identity())
        assert group.point_from_bytes_compressed(blob).is_infinity

    def test_parity_distinguishes_negation(self, group, rng):
        point = group.random_point(rng)
        b1 = group.point_to_bytes_compressed(point)
        b2 = group.point_to_bytes_compressed(-point)
        assert b1 != b2
        assert b1[1:] == b2[1:]  # same x
        assert group.point_from_bytes_compressed(b2) == -point

    def test_bad_prefix_rejected(self, group, rng):
        blob = bytearray(group.point_to_bytes_compressed(group.random_point(rng)))
        blob[0] = 0x05
        with pytest.raises(EncodingError):
            group.point_from_bytes_compressed(bytes(blob))

    def test_bad_length_rejected(self, group):
        with pytest.raises(EncodingError):
            group.point_from_bytes_compressed(b"\x02\x01")

    def test_non_curve_x_rejected(self, group, rng):
        # Find an x that does not lift to a point (family A: half of Fp).
        for candidate in range(2, 200):
            x = group.ssc.fp(candidate)
            rhs = x.square() * x + group.ssc.curve.a * x + group.ssc.curve.b
            if not rhs.is_zero() and not rhs.is_square():
                blob = b"\x02" + x.to_bytes()
                with pytest.raises((NotOnCurveError, ReproError)):
                    group.point_from_bytes_compressed(blob)
                return
        pytest.skip("no non-liftable x found in range")

    def test_malformed_infinity_rejected(self, group):
        blob = b"\x00" + b"\x01" * (group.compressed_point_bytes - 1)
        with pytest.raises(EncodingError):
            group.point_from_bytes_compressed(blob)

    def test_update_fits_in_compressed_form(self, group, server):
        """The broadcast payload can ship compressed: point + label."""
        update = server.publish_update(b"compressed-T")
        blob = group.point_to_bytes_compressed(update.point)
        restored = group.point_from_bytes_compressed(blob)
        from repro.core.timeserver import TimeBoundKeyUpdate

        rebuilt = TimeBoundKeyUpdate(b"compressed-T", restored)
        assert rebuilt.verify(group, server.public_key)
        assert len(blob) < len(group.point_to_bytes(update.point))
