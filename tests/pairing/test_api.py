"""Tests for the PairingGroup facade and GTElement wrapper."""

import pytest

from repro.errors import GroupMismatchError, ParameterError
from repro.pairing.api import PairingGroup
from repro.pairing.opcount import PAIRING, SCALAR_MULT
from repro.pairing.params import get_parameter_set


class TestConstruction:
    def test_by_name_and_by_object(self):
        by_name = PairingGroup("toy64")
        by_obj = PairingGroup(get_parameter_set("toy64"))
        assert by_name == by_obj

    def test_bad_params_type(self):
        with pytest.raises(ParameterError):
            PairingGroup(42)

    def test_equality_includes_family(self):
        assert PairingGroup("toy64", "A") != PairingGroup("toy64", "B")

    def test_sizes_published(self, group):
        assert group.scalar_bytes == (group.q.bit_length() + 7) // 8
        assert group.point_bytes == 1 + 2 * group.ssc.fp.element_bytes
        assert group.gt_bytes == 2 * group.ssc.fp.element_bytes


class TestScalars:
    def test_random_scalar_range(self, group, rng):
        for _ in range(50):
            s = group.random_scalar(rng)
            assert 1 <= s < group.q

    def test_hash_to_scalar(self, group):
        s = group.hash_to_scalar(b"a", b"b")
        assert 1 <= s < group.q


class TestG1Facade:
    def test_mul_reduces_mod_q(self, group):
        g = group.generator
        assert group.mul(g, group.q + 5) == group.mul(g, 5)

    def test_add_and_negate(self, group, rng):
        p = group.random_point(rng)
        assert group.add(p, group.negate(p)).is_infinity

    def test_random_point_in_group(self, group, rng):
        assert group.in_group(group.random_point(rng))

    def test_point_bytes_fixed_width(self, group, rng):
        p = group.random_point(rng)
        assert len(group.point_to_bytes(p)) == group.point_bytes
        assert len(group.point_to_bytes(group.identity())) == group.point_bytes

    def test_infinity_roundtrip(self, group):
        blob = group.point_to_bytes(group.identity())
        assert group.point_from_bytes(blob).is_infinity


class TestGTElement:
    def test_mul_div(self, group, rng):
        e = group.pair(group.generator, group.generator)
        a = group.random_scalar(rng)
        assert (e ** a) / (e ** a) == group.gt_identity()
        assert (e ** a) * (e ** (group.q - a)) == group.gt_identity()

    def test_pow_mod_q(self, group):
        e = group.pair(group.generator, group.generator)
        assert e ** group.q == group.gt_identity()
        assert e ** (group.q + 3) == e ** 3

    def test_inverse(self, group):
        e = group.pair(group.generator, group.generator)
        assert (e * e.inverse()).is_identity()

    def test_serialization_roundtrip(self, group):
        e = group.pair(group.generator, group.generator)
        assert group.gt_from_bytes(e.to_bytes()) == e

    def test_cross_group_rejected(self, group, group_b):
        e1 = group.pair(group.generator, group.generator)
        e2 = group_b.pair(group_b.generator, group_b.generator)
        with pytest.raises(GroupMismatchError):
            e1 * e2

    def test_hashable(self, group):
        e = group.pair(group.generator, group.generator)
        assert len({e, e, e ** 2}) == 2


class TestOpCounters:
    def test_pairing_counted(self):
        g = PairingGroup("toy64")
        g.counters.reset()
        g.pair(g.generator, g.generator)
        assert g.counters.total(PAIRING) == 1

    def test_measure_context(self):
        g = PairingGroup("toy64")
        with g.counters.measure() as delta:
            g.mul(g.generator, 5)
            g.mul(g.generator, 7)
        assert delta[SCALAR_MULT] == 2

    def test_reset(self):
        g = PairingGroup("toy64")
        g.mul(g.generator, 3)
        g.counters.reset()
        assert g.counters.snapshot() == {}
