"""Cached-Miller-line pairings must be byte-identical to direct pairings."""

import pytest

from repro.errors import NotInSubgroupError, ParameterError
from repro.pairing.api import PairingGroup
from repro.pairing.miller import record_line_sequence
from repro.pairing.opcount import PAIRING, PAIRING_PRECOMP


class TestPrecomputedLinesEngine:
    def test_byte_identical_to_direct(self, group, rng):
        for _ in range(5):
            p = group.random_point(rng)
            q = group.random_point(rng)
            lines = group.tate.precompute_lines(p)
            direct = group.tate.pair(p, q)
            fast = group.tate.pair_with_precomp(lines, q)
            assert fast == direct
            assert fast.to_bytes() == direct.to_bytes()

    def test_line_count_scales_with_order(self, group, rng):
        lines = group.tate.precompute_lines(group.random_point(rng))
        assert group.q.bit_length() <= len(lines) <= 3 * group.q.bit_length()
        assert lines.order == group.q

    def test_record_ends_at_infinity_for_subgroup_point(self, group, rng):
        # record_line_sequence itself asserts q·P = O; a non-subgroup
        # order must be rejected rather than silently recorded.
        p = group.random_point(rng)
        with pytest.raises(ParameterError):
            record_line_sequence(p, group.q - 1)

    def test_family_b_rejects_precompute(self, group_b, rng):
        with pytest.raises(ParameterError):
            group_b.tate.precompute_lines(group_b.random_point(rng))

    def test_rejects_infinity_and_foreign_points(self, group, group_b):
        with pytest.raises(ParameterError):
            group.tate.precompute_lines(group.identity())
        with pytest.raises(NotInSubgroupError):
            group.tate.precompute_lines(group_b.generator)

    def test_precomp_pair_with_infinity_is_identity(self, group, rng):
        lines = group.tate.precompute_lines(group.random_point(rng))
        assert group.tate.pair_with_precomp(lines, group.identity()).is_one()


class TestGroupLevelCache:
    def test_pair_probes_both_argument_slots(self, rng):
        fresh = PairingGroup("toy64", family="A")
        p = fresh.random_point(rng)
        q = fresh.random_point(rng)
        direct_pq = fresh.pair(p, q)
        direct_qp = fresh.pair(q, p)
        fresh.precompute_pairing(p)
        fresh.counters.reset()
        assert fresh.pair(p, q) == direct_pq          # fixed first arg
        assert fresh.pair(q, p) == direct_qp          # symmetry swap
        assert fresh.counters.total(PAIRING) == 2
        assert fresh.counters.total(PAIRING_PRECOMP) == 2

    def test_uncached_pair_records_no_advisory_counter(self, rng):
        fresh = PairingGroup("toy64", family="A")
        p = fresh.random_point(rng)
        q = fresh.random_point(rng)
        fresh.counters.reset()
        fresh.pair(p, q)
        assert fresh.counters.total(PAIRING) == 1
        assert fresh.counters.total(PAIRING_PRECOMP) == 0

    def test_precomputation_object_pair_matches_group_pair(self, any_group, rng):
        p = any_group.random_point(rng)
        q = any_group.random_point(rng)
        direct = any_group.tate.pair(p, q)
        precomp = any_group.precompute_pairing(p)
        assert precomp.pair(q).value == direct
        assert precomp.pair(q).to_bytes() == direct.to_bytes()
        any_group.clear_precomputations()

    def test_family_b_precompute_falls_back(self, rng):
        fresh = PairingGroup("toy64", family="B")
        p = fresh.random_point(rng)
        q = fresh.random_point(rng)
        precomp = fresh.precompute_pairing(p)
        assert precomp.lines is None
        direct = fresh.tate.pair(p, q)
        fresh.counters.reset()
        assert precomp.pair(q).value == direct
        assert fresh.counters.total(PAIRING) == 1
        assert fresh.counters.total(PAIRING_PRECOMP) == 0

    def test_precompute_is_cached_and_clearable(self, rng):
        fresh = PairingGroup("toy64", family="A")
        p = fresh.random_point(rng)
        first = fresh.precompute_pairing(p)
        assert fresh.precompute_pairing(p) is first
        fresh.clear_precomputations()
        assert fresh.precompute_pairing(p) is not first

    def test_infinity_argument_handling(self, rng):
        fresh = PairingGroup("toy64", family="A")
        p = fresh.random_point(rng)
        precomp = fresh.precompute_pairing(fresh.identity())
        assert precomp.lines is None
        assert precomp.pair(p).is_identity()
        lines_precomp = fresh.precompute_pairing(p)
        assert lines_precomp.pair(fresh.identity()).is_identity()

    def test_bilinearity_through_cache(self, group, rng):
        a = group.random_scalar(rng)
        b = group.random_scalar(rng)
        p = group.random_point(rng)
        q = group.random_point(rng)
        group.precompute_pairing(p)
        left = group.pair(group.mul(p, a), group.mul(q, b))
        right = group.pair(p, q) ** (a * b % group.q)
        assert left == right
        group.clear_precomputations()
