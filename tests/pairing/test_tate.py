"""Correctness of the modified Tate pairing on both families."""

import random

import pytest

from repro.errors import NotInSubgroupError
from repro.pairing.api import PairingGroup
from repro.pairing.miller import miller_loop_general
from repro.pairing.params import get_parameter_set
from repro.pairing.supersingular import SupersingularCurve
from repro.pairing.tate import TatePairing, unitary_pow


class TestPairingProperties:
    def test_non_degenerate(self, any_group):
        e = any_group.pair(any_group.generator, any_group.generator)
        assert not e.is_identity()

    def test_gt_order_q(self, any_group):
        e = any_group.pair(any_group.generator, any_group.generator)
        assert (e ** any_group.q).is_identity()

    def test_bilinearity_left(self, any_group, rng):
        g = any_group.generator
        a = any_group.random_scalar(rng)
        assert any_group.pair(g * a, g) == any_group.pair(g, g) ** a

    def test_bilinearity_right(self, any_group, rng):
        g = any_group.generator
        b = any_group.random_scalar(rng)
        assert any_group.pair(g, g * b) == any_group.pair(g, g) ** b

    def test_bilinearity_joint(self, any_group, rng):
        g = any_group.generator
        a, b = any_group.random_scalar(rng), any_group.random_scalar(rng)
        assert (
            any_group.pair(g * a, g * b)
            == any_group.pair(g, g) ** (a * b % any_group.q)
        )

    def test_symmetry(self, any_group, rng):
        # Type-1 pairings built from a distortion map are symmetric.
        g = any_group.generator
        p = g * any_group.random_scalar(rng)
        q = g * any_group.random_scalar(rng)
        assert any_group.pair(p, q) == any_group.pair(q, p)

    def test_infinity_maps_to_identity(self, any_group):
        o = any_group.identity()
        g = any_group.generator
        assert any_group.pair(o, g).is_identity()
        assert any_group.pair(g, o).is_identity()

    def test_hashed_points_pair_consistently(self, any_group, rng):
        h = any_group.hash_to_g1(b"release-time")
        a = any_group.random_scalar(rng)
        g = any_group.generator
        assert any_group.pair(h * a, g) == any_group.pair(h, g * a)

    def test_pairing_inverse(self, any_group, rng):
        g = any_group.generator
        a = any_group.random_scalar(rng)
        e = any_group.pair(g, g * a)
        assert (e * any_group.pair(g, -(g * a))).is_identity()

    def test_wrong_curve_input_rejected(self, group, group_b):
        with pytest.raises(NotInSubgroupError):
            group.pair(group.generator, group_b.generator)

    def test_ddh_oracle(self, any_group, rng):
        # The pairing solves DDH in G1 (the Gap property from §4).
        g = any_group.generator
        a, b = any_group.random_scalar(rng), any_group.random_scalar(rng)
        good = g * (a * b % any_group.q)
        bad = g * ((a * b + 1) % any_group.q)
        assert any_group.pair(g * a, g * b) == any_group.pair(g, good)
        assert any_group.pair(g * a, g * b) != any_group.pair(g, bad)


class TestMillerVariantsAgree:
    def test_general_matches_denominator_free_on_family_a(self):
        """The general divisor evaluation and the BKLS shortcut must give
        the same reduced pairing value on family A."""
        params = get_parameter_set("toy64")
        ssc = SupersingularCurve(params, "A")
        tate = TatePairing(ssc)
        general_aux = TatePairing.__new__(TatePairing)
        general_aux.ssc = ssc
        general_aux.fp2 = ssc.fp2
        general_aux._aux_points = general_aux._derive_aux_points()

        rng = random.Random(17)
        for _ in range(3):
            p = ssc.generator * rng.randrange(1, params.q)
            q_pt = ssc.generator * rng.randrange(1, params.q)
            fast = tate.pair(p, q_pt)
            s_point = ssc.distort(q_pt)
            f = miller_loop_general(
                p, s_point, params.q, ssc.fp2, general_aux._aux_points[0]
            )
            slow = tate.final_exponentiation(f)
            assert fast == slow


class TestUnitaryPow:
    def test_matches_plain_pow(self, group, rng):
        e = group.pair(group.generator, group.generator)
        value = e.value
        for exponent in (0, 1, 2, 3, 17, 1 << 20, group.q - 1):
            assert unitary_pow(value, exponent) == value ** exponent

    def test_negative_exponent(self, group):
        e = group.pair(group.generator, group.generator).value
        assert unitary_pow(e, -5) == (e ** 5).inverse()

    def test_identity_base(self, group):
        one = group.ssc.fp2.one()
        assert unitary_pow(one, 123456) == one


class TestAcrossParameterSets:
    @pytest.mark.parametrize("name", ["toy64", "ss512"])
    def test_bilinearity(self, name):
        g = PairingGroup(name, family="A")
        rng = random.Random(5)
        a, b = g.random_scalar(rng), g.random_scalar(rng)
        gen = g.generator
        assert g.pair(gen * a, gen * b) == g.pair(gen, gen) ** (a * b % g.q)
