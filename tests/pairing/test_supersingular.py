"""Tests for the supersingular curve families and distortion maps."""

import random

import pytest

from repro.errors import NotInSubgroupError, ParameterError
from repro.pairing.params import get_parameter_set
from repro.pairing.supersingular import FAMILY_A, FAMILY_B, SupersingularCurve

PARAMS = get_parameter_set("toy64")


@pytest.fixture(scope="module", params=[FAMILY_A, FAMILY_B])
def ssc(request):
    return SupersingularCurve(PARAMS, request.param)


class TestConstruction:
    def test_unknown_family_raises(self):
        with pytest.raises(ParameterError):
            SupersingularCurve(PARAMS, "C")

    def test_curve_equations(self):
        a = SupersingularCurve(PARAMS, FAMILY_A)
        assert a.curve.a.value == 1 and a.curve.b.value == 0
        b = SupersingularCurve(PARAMS, FAMILY_B)
        assert b.curve.a.value == 0 and b.curve.b.value == 1

    def test_generator_in_subgroup(self, ssc):
        assert ssc.in_subgroup(ssc.generator)
        assert not ssc.generator.is_infinity

    def test_generator_deterministic(self, ssc):
        again = SupersingularCurve(PARAMS, ssc.family)
        assert again.generator == ssc.generator

    def test_families_have_distinct_generators(self):
        a = SupersingularCurve(PARAMS, FAMILY_A)
        b = SupersingularCurve(PARAMS, FAMILY_B)
        assert a.generator.curve != b.generator.curve


class TestGroupOrder:
    def test_curve_order_is_p_plus_one(self, ssc):
        # #E(Fp) = p + 1 for supersingular curves: any point times p+1 = O.
        rng = random.Random(1)
        for _ in range(5):
            point = ssc.curve.random_point(rng)
            assert (point * (PARAMS.p + 1)).is_infinity

    def test_subgroup_order_q(self, ssc):
        assert (ssc.generator * PARAMS.q).is_infinity
        assert not (ssc.generator * (PARAMS.q - 1)).is_infinity

    def test_clear_cofactor_lands_in_subgroup(self, ssc):
        rng = random.Random(2)
        for _ in range(5):
            cleared = ssc.clear_cofactor(ssc.curve.random_point(rng))
            assert ssc.in_subgroup(cleared)


class TestDistortionMap:
    def test_image_on_extension_curve(self, ssc):
        point = ssc.generator
        image = ssc.distort(point)
        assert ssc.ext_curve.contains(image.x, image.y)

    def test_image_linearly_independent(self, ssc):
        # phi(P) is not a scalar multiple of the embedded P: their x
        # coordinates differ as Fp2 elements for all k (spot check k=1).
        point = ssc.generator
        image = ssc.distort(point)
        embedded_x = ssc.fp2.from_base(point.x)
        assert image.x != embedded_x

    def test_distortion_is_homomorphism(self, ssc):
        p1 = ssc.generator
        p2 = ssc.generator * 7
        left = ssc.distort(p1 + p2)
        right = ssc.distort(p1) + ssc.distort(p2)
        assert left == right

    def test_distort_infinity(self, ssc):
        assert ssc.distort(ssc.curve.infinity()).is_infinity

    def test_image_order_q(self, ssc):
        image = ssc.distort(ssc.generator)
        assert (image * PARAMS.q).is_infinity


class TestSubgroupChecks:
    def test_infinity_in_subgroup(self, ssc):
        assert ssc.in_subgroup(ssc.curve.infinity())

    def test_out_of_subgroup_detected(self, ssc):
        rng = random.Random(3)
        # A random full-curve point is outside the q-subgroup w.h.p.
        for _ in range(10):
            point = ssc.curve.random_point(rng)
            if not (point * PARAMS.q).is_infinity:
                assert not ssc.in_subgroup(point)
                with pytest.raises(NotInSubgroupError):
                    ssc.ensure_in_subgroup(point)
                return
        pytest.fail("never sampled a non-subgroup point")

    def test_wrong_curve_rejected(self, ssc):
        other_family = FAMILY_B if ssc.family == FAMILY_A else FAMILY_A
        other = SupersingularCurve(PARAMS, other_family)
        assert not ssc.in_subgroup(other.generator)
