"""Edge-case tests for the Miller loop internals."""

import pytest

from repro.errors import ParameterError
from repro.pairing.miller import (
    _line_value,
    _vertical_value,
    miller_loop_denominator_free,
    miller_loop_general,
)
from repro.pairing.params import get_parameter_set
from repro.pairing.supersingular import SupersingularCurve

PARAMS = get_parameter_set("toy64")


@pytest.fixture(scope="module")
def ssc():
    return SupersingularCurve(PARAMS, "A")


@pytest.fixture(scope="module")
def ssc_b():
    return SupersingularCurve(PARAMS, "B")


class TestLineValues:
    def test_line_through_infinity_is_one(self, ssc):
        s = ssc.distort(ssc.generator)
        one = ssc.fp2.one()
        assert _line_value(ssc.curve.infinity(), ssc.generator, s.x, s.y, ssc.fp2) == one
        assert _line_value(ssc.generator, ssc.curve.infinity(), s.x, s.y, ssc.fp2) == one

    def test_vertical_through_infinity_is_one(self, ssc):
        s = ssc.distort(ssc.generator)
        assert _vertical_value(ssc.curve.infinity(), s.x, ssc.fp2) == ssc.fp2.one()

    def test_chord_line_vanishes_on_its_points(self, ssc):
        """The chord through P and Q must evaluate to zero at both
        (embedded into Fp2)."""
        p = ssc.generator
        q = ssc.generator * 5
        for point in (p, q, -(p + q)):
            value = _line_value(
                p, q, ssc.fp2.from_base(point.x), ssc.fp2.from_base(point.y),
                ssc.fp2,
            )
            assert value.is_zero()

    def test_tangent_line_vanishes_at_point(self, ssc):
        p = ssc.generator * 3
        value = _line_value(
            p, p, ssc.fp2.from_base(p.x), ssc.fp2.from_base(p.y), ssc.fp2
        )
        assert value.is_zero()

    def test_vertical_line_value(self, ssc):
        p = ssc.generator
        value = _vertical_value(p, ssc.fp2.from_base(p.x), ssc.fp2)
        assert value.is_zero()

    def test_line_between_negatives_is_vertical(self, ssc):
        p = ssc.generator * 7
        s = ssc.distort(ssc.generator * 11)
        chord = _line_value(p, -p, s.x, s.y, ssc.fp2)
        vertical = _vertical_value(p, s.x, ssc.fp2)
        assert chord == vertical


class TestLoopValidation:
    def test_evaluation_at_infinity_rejected(self, ssc):
        with pytest.raises(ParameterError):
            miller_loop_denominator_free(
                ssc.generator, ssc.ext_curve.infinity(), PARAMS.q, ssc.fp2
            )

    def test_wrong_order_rejected(self, ssc):
        s = ssc.distort(ssc.generator)
        with pytest.raises(ParameterError):
            miller_loop_denominator_free(ssc.generator, s, PARAMS.q - 1, ssc.fp2)

    def test_general_loop_rejects_bad_aux(self, ssc_b):
        s = ssc_b.distort(ssc_b.generator)
        with pytest.raises(ParameterError):
            miller_loop_general(
                ssc_b.generator, s, PARAMS.q, ssc_b.fp2,
                ssc_b.ext_curve.infinity(),
            )

    def test_loop_value_nonzero(self, ssc):
        s = ssc.distort(ssc.generator * 17)
        value = miller_loop_denominator_free(
            ssc.generator, s, PARAMS.q, ssc.fp2
        )
        assert not value.is_zero()
