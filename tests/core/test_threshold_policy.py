"""Tests for t-of-m threshold condition locks."""

import itertools

import pytest

from repro.core.policylock import ThresholdPolicyScheme
from repro.errors import PolicyError

CONDITIONS = [b"board-approved", b"audit-passed", b"regulator-ok", b"ceo-signed"]


@pytest.fixture(scope="module")
def scheme(group):
    return ThresholdPolicyScheme(group)


@pytest.fixture(scope="module")
def locked(scheme, server, user, session_rng):
    return scheme.encrypt(
        b"threshold secret", user.public, server.public_key, CONDITIONS, 2,
        session_rng,
    )


@pytest.fixture(scope="module")
def attestations(server):
    return {c: server.publish_update(c) for c in CONDITIONS}


class TestThresholdPolicy:
    def test_every_pair_opens(self, scheme, user, server, locked, attestations):
        for pair in itertools.combinations(CONDITIONS, 2):
            atts = [attestations[c] for c in pair]
            assert scheme.decrypt(
                locked, user, atts, server.public_key
            ) == b"threshold secret"

    def test_below_threshold_fails(self, scheme, user, locked, attestations):
        with pytest.raises(PolicyError):
            scheme.decrypt(locked, user, [attestations[CONDITIONS[0]]])

    def test_extra_attestations_harmless(self, scheme, user, locked, attestations):
        atts = [attestations[c] for c in CONDITIONS]
        assert scheme.decrypt(locked, user, atts) == b"threshold secret"

    def test_duplicate_attestations_not_counted(self, scheme, user, locked,
                                                attestations):
        att = attestations[CONDITIONS[0]]
        with pytest.raises(PolicyError):
            scheme.decrypt(locked, user, [att, att, att])

    def test_unrelated_attestations_ignored(self, scheme, user, server, locked,
                                            attestations):
        unrelated = server.publish_update(b"not-in-policy")
        with pytest.raises(PolicyError):
            scheme.decrypt(
                locked, user, [attestations[CONDITIONS[0]], unrelated]
            )

    def test_wrong_receiver_fails_loudly(self, scheme, group, server, locked,
                                         attestations, rng):
        from repro.core.keys import UserKeyPair
        from repro.errors import DecryptionError

        other = UserKeyPair.generate(group, server.public_key, rng)
        atts = [attestations[c] for c in CONDITIONS[:2]]
        with pytest.raises(DecryptionError):
            scheme.decrypt(locked, other, atts)

    def test_one_of_m_matches_disjunction_semantics(self, scheme, user, server,
                                                    attestations, rng):
        ct = scheme.encrypt(
            b"any one", user.public, server.public_key, CONDITIONS, 1, rng
        )
        for condition in CONDITIONS:
            assert scheme.decrypt(
                ct, user, [attestations[condition]]
            ) == b"any one"

    def test_m_of_m_matches_conjunction_semantics(self, scheme, user, server,
                                                  attestations, rng):
        ct = scheme.encrypt(
            b"all four", user.public, server.public_key, CONDITIONS,
            len(CONDITIONS), rng,
        )
        atts = [attestations[c] for c in CONDITIONS]
        assert scheme.decrypt(ct, user, atts) == b"all four"
        with pytest.raises(PolicyError):
            scheme.decrypt(ct, user, atts[:-1])

    def test_invalid_threshold_rejected(self, scheme, user, server, rng):
        with pytest.raises(PolicyError):
            scheme.encrypt(
                b"m", user.public, server.public_key, CONDITIONS, 0, rng
            )
        with pytest.raises(PolicyError):
            scheme.encrypt(
                b"m", user.public, server.public_key, CONDITIONS, 5, rng
            )

    def test_duplicate_conditions_rejected(self, scheme, user, server, rng):
        with pytest.raises(PolicyError):
            scheme.encrypt(
                b"m", user.public, server.public_key, [b"c", b"c"], 1, rng
            )

    def test_forged_attestation_rejected_when_verifying(
        self, scheme, group, user, server, locked, attestations, rng
    ):
        from repro.core.timeserver import TimeBoundKeyUpdate
        from repro.errors import UpdateVerificationError

        forged = TimeBoundKeyUpdate(CONDITIONS[1], group.random_point(rng))
        with pytest.raises(UpdateVerificationError):
            scheme.decrypt(
                locked, user, [attestations[CONDITIONS[0]], forged],
                server.public_key,
            )
