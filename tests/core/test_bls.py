"""Tests for BLS short signatures (the substance of the key updates)."""

import pytest

from repro.core.bls import BLSSignatureScheme
from repro.core.keys import ServerKeyPair


@pytest.fixture(scope="module")
def scheme(group):
    return BLSSignatureScheme(group)


@pytest.fixture(scope="module")
def keypair(group, session_rng):
    return ServerKeyPair.generate(group, session_rng)


class TestSignVerify:
    def test_valid_signature_accepted(self, scheme, keypair):
        sig = scheme.sign(keypair, b"2026-07-05")
        assert scheme.verify(keypair.public, b"2026-07-05", sig)

    def test_wrong_message_rejected(self, scheme, keypair):
        sig = scheme.sign(keypair, b"m1")
        assert not scheme.verify(keypair.public, b"m2", sig)

    def test_wrong_key_rejected(self, scheme, keypair, group, rng):
        other = ServerKeyPair.generate(group, rng)
        sig = scheme.sign(keypair, b"m")
        assert not scheme.verify(other.public, b"m", sig)

    def test_tampered_signature_rejected(self, scheme, keypair, group):
        sig = scheme.sign(keypair, b"m")
        assert not scheme.verify(keypair.public, b"m", group.add(sig, group.generator))

    def test_infinity_rejected(self, scheme, keypair, group):
        assert not scheme.verify(keypair.public, b"m", group.identity())

    def test_out_of_subgroup_rejected(self, scheme, keypair, group, rng):
        # A full-curve point outside the q-subgroup must not verify.
        full = group.ssc.curve.random_point(rng)
        if group.in_group(full):
            full = full + group.ssc.curve.random_point(rng)
        if group.in_group(full):
            pytest.skip("sampled subgroup point twice")
        assert not scheme.verify(keypair.public, b"m", full)

    def test_signature_deterministic(self, scheme, keypair):
        assert scheme.sign(keypair, b"m") == scheme.sign(keypair, b"m")

    def test_signature_is_short(self, scheme, keypair, group):
        # One G1 point: half the size of a (point, scalar)-style signature.
        sig = scheme.sign(keypair, b"m")
        assert len(group.point_to_bytes(sig)) == group.point_bytes


class TestAggregation:
    def test_aggregate_verifies(self, scheme, group, rng):
        generator = group.random_point(rng)
        keypairs = [
            ServerKeyPair.generate(group, rng, generator=generator)
            for _ in range(3)
        ]
        messages = [f"m{i}".encode() for i in range(3)]
        sigs = [scheme.sign(kp, m) for kp, m in zip(keypairs, messages)]
        agg = scheme.aggregate(sigs)
        assert scheme.verify_aggregate(
            [kp.public for kp in keypairs], messages, agg
        )

    def test_aggregate_rejects_wrong_message(self, scheme, group, rng):
        generator = group.random_point(rng)
        keypairs = [
            ServerKeyPair.generate(group, rng, generator=generator)
            for _ in range(2)
        ]
        sigs = [scheme.sign(kp, b"m") for kp in keypairs]
        agg = scheme.aggregate(sigs)
        assert not scheme.verify_aggregate(
            [kp.public for kp in keypairs], [b"m", b"other"], agg
        )

    def test_aggregate_requires_shared_generator(self, scheme, group, rng):
        keypairs = [ServerKeyPair.generate(group, rng) for _ in range(2)]
        sigs = [scheme.sign(kp, b"m") for kp in keypairs]
        agg = scheme.aggregate(sigs)
        assert not scheme.verify_aggregate(
            [kp.public for kp in keypairs], [b"m", b"m"], agg
        )

    def test_empty_aggregate_rejected(self, scheme, group):
        assert not scheme.verify_aggregate([], [], group.identity())

    def test_infinity_aggregate_rejected(self, scheme, group, rng):
        """The point at infinity must never verify as an aggregate.

        Without the explicit guard, infinity passes ``in_group`` and
        the pairing equation degenerates: an attacker who can steer the
        hash-side product to the identity gets a "valid" aggregate for
        free.  Regression test for the guard in ``verify_aggregate``.
        """
        generator = group.random_point(rng)
        keypairs = [
            ServerKeyPair.generate(group, rng, generator=generator)
            for _ in range(2)
        ]
        messages = [b"m0", b"m1"]
        assert not scheme.verify_aggregate(
            [kp.public for kp in keypairs], messages, group.identity()
        )

    def test_infinity_aggregate_rejected_even_if_equation_degenerates(
        self, scheme, group, rng
    ):
        # The actual forgery the guard blocks: "signers" with secrets s
        # and q-s on the same message.  The hash-side product collapses
        # to the identity, so the infinity aggregate (= σ + (-σ))
        # satisfies the raw pairing equation — and must still fail.
        from repro.core.keys import ServerPublicKey

        generator = group.random_point(rng)
        keypair = ServerKeyPair.generate(group, rng, generator=generator)
        mirrored = ServerPublicKey(
            generator, group.negate(keypair.public.s_generator)
        )
        sig = scheme.sign(keypair, b"m")
        agg = scheme.aggregate([sig, group.negate(sig)])
        assert agg.is_infinity
        assert not scheme.verify_aggregate(
            [keypair.public, mirrored], [b"m", b"m"], agg
        )

    def test_aggregate_single_signer_matches_verify(self, scheme, keypair):
        sig = scheme.sign(keypair, b"solo")
        assert scheme.verify_aggregate([keypair.public], [b"solo"], sig)
