"""Tests for the passive time server and its update archive."""

import pytest

from repro.core.keys import ServerKeyPair
from repro.core.timeserver import PassiveTimeServer, TimeBoundKeyUpdate, epoch_label
from repro.errors import (
    UpdateNotAvailableError,
    UpdateVerificationError,
)


class TestEpochLabel:
    def test_lexicographic_order(self):
        labels = [epoch_label(i) for i in (0, 1, 9, 10, 99, 100, 10**11)]
        assert labels == sorted(labels)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            epoch_label(-1)

    def test_prefix(self):
        assert epoch_label(3, prefix="day").startswith(b"day:")


class TestUpdateSelfAuthentication:
    def test_published_update_verifies(self, group, server):
        update = server.publish_update(b"t-auth-1")
        assert update.verify(group, server.public_key)
        update.ensure_valid(group, server.public_key)

    def test_forged_update_rejected(self, group, server, rng):
        forged = TimeBoundKeyUpdate(b"t-forged", group.random_point(rng))
        assert not forged.verify(group, server.public_key)
        with pytest.raises(UpdateVerificationError):
            forged.ensure_valid(group, server.public_key)

    def test_relabeled_update_rejected(self, group, server):
        update = server.publish_update(b"t-real")
        relabeled = TimeBoundKeyUpdate(b"t-fake", update.point)
        assert not relabeled.verify(group, server.public_key)

    def test_update_from_other_server_rejected(self, group, server, rng):
        other = PassiveTimeServer(group, rng=rng)
        update = other.publish_update(b"t-x")
        assert not update.verify(group, server.public_key)

    def test_serialization_roundtrip(self, group, server):
        update = server.publish_update(b"t-ser")
        blob = update.to_bytes(group)
        assert TimeBoundKeyUpdate.from_bytes(group, blob) == update


class TestServerBehaviour:
    def test_update_identical_for_all_callers(self, group, rng):
        # "a single I_t for all receivers": repeated publishes return the
        # exact same object/point.
        server = PassiveTimeServer(group, rng=rng)
        u1 = server.publish_update(b"t")
        u2 = server.publish_update(b"t")
        assert u1 == u2
        assert server.updates_published == 1

    def test_archive_lookup(self, group, rng):
        server = PassiveTimeServer(group, rng=rng)
        update = server.publish_update(b"t-arch")
        assert server.lookup(b"t-arch") == update
        assert b"t-arch" in server.archive_labels()

    def test_lookup_unpublished_raises(self, group, rng):
        server = PassiveTimeServer(group, rng=rng)
        with pytest.raises(UpdateNotAvailableError):
            server.lookup(b"never-published")

    def test_no_per_user_state(self, group, rng):
        # The server object stores keys + archive only; creating users
        # does not touch it, and its byte counter grows per *update*.
        server = PassiveTimeServer(group, rng=rng)
        before = server.bytes_broadcast
        server.publish_update(b"t1")
        after_one = server.bytes_broadcast
        server.publish_update(b"t2")
        assert server.bytes_broadcast == 2 * (after_one - before)

    def test_requires_rng_or_keypair(self, group):
        with pytest.raises(ValueError):
            PassiveTimeServer(group)

    def test_existing_keypair(self, group, rng):
        kp = ServerKeyPair.generate(group, rng)
        server = PassiveTimeServer(group, keypair=kp)
        assert server.public_key == kp.public


class TestReleasePolicy:
    def test_future_epoch_refused(self, group, rng):
        clock = {"now": 5}
        server = PassiveTimeServer(group, rng=rng, clock=lambda: clock["now"])
        with pytest.raises(UpdateNotAvailableError):
            server.publish_update(epoch_label(6))
        # Current and past epochs are fine.
        server.publish_update(epoch_label(5))
        server.publish_update(epoch_label(1))
        clock["now"] = 6
        server.publish_update(epoch_label(6))

    def test_freeform_labels_bypass_policy(self, group, rng):
        server = PassiveTimeServer(group, rng=rng, clock=lambda: 0)
        # Non-epoch labels carry no ordering the server can enforce.
        server.publish_update(b"the-merger-closes")

    def test_issue_update_models_corrupt_server(self, group, rng):
        server = PassiveTimeServer(group, rng=rng, clock=lambda: 0)
        update = server.issue_update(epoch_label(10**6))
        assert update.verify(group, server.public_key)
        # But an honest publish of the same label still refuses.
        with pytest.raises(UpdateNotAvailableError):
            server.publish_update(epoch_label(10**6))


class TestClockSkewTolerance:
    def test_skew_widens_the_release_window(self, group, rng):
        clock = {"now": 5}
        server = PassiveTimeServer(
            group, rng=rng, clock=lambda: clock["now"], max_clock_skew=2
        )
        # A client whose clock runs up to 2 epochs ahead is tolerated...
        server.publish_update(epoch_label(6))
        server.publish_update(epoch_label(7))
        # ...but no further.
        with pytest.raises(UpdateNotAvailableError):
            server.publish_update(epoch_label(8))

    def test_zero_skew_is_strict(self, group, rng):
        server = PassiveTimeServer(group, rng=rng, clock=lambda: 5)
        with pytest.raises(UpdateNotAvailableError):
            server.publish_update(epoch_label(6))

    def test_negative_skew_rejected(self, group, rng):
        with pytest.raises(ValueError):
            PassiveTimeServer(group, rng=rng, max_clock_skew=-1)


class TestSnapshotRestore:
    def test_roundtrip_restores_every_update(self, group, rng):
        server = PassiveTimeServer(group, rng=rng)
        for epoch in range(4):
            server.publish_update(epoch_label(epoch))
        snapshot = server.snapshot_archive()

        reborn = PassiveTimeServer(group, keypair=server._keypair)
        assert reborn.restore_archive(snapshot) == 4
        assert reborn.archive_labels() == server.archive_labels()
        for label in server.archive_labels():
            assert reborn.lookup(label) == server.lookup(label)

    def test_restore_is_idempotent(self, group, rng):
        server = PassiveTimeServer(group, rng=rng)
        server.publish_update(epoch_label(0))
        snapshot = server.snapshot_archive()
        assert server.restore_archive(snapshot) == 0  # all already present

    def test_snapshot_contains_no_secret(self, group, rng):
        server = PassiveTimeServer(group, rng=rng)
        server.publish_update(epoch_label(0))
        snapshot = server.snapshot_archive()
        secret = server._keypair.private.to_bytes(
            (server._keypair.private.bit_length() + 7) // 8, "big"
        )
        assert secret not in snapshot

    def test_foreign_snapshot_rejected(self, group, rng):
        honest = PassiveTimeServer(group, rng=rng)
        imposter = PassiveTimeServer(group, rng=rng)
        imposter.publish_update(epoch_label(0))
        with pytest.raises(UpdateVerificationError):
            honest.restore_archive(imposter.snapshot_archive())

    def test_archive_since_is_strictly_greater(self, group, rng):
        server = PassiveTimeServer(group, rng=rng)
        for epoch in range(5):
            server.publish_update(epoch_label(epoch))
        since = server.archive_since(epoch_label(2))
        assert [u.time_label for u in since] == [
            epoch_label(3), epoch_label(4)
        ]
        assert server.archive_since(b"") == [
            server.lookup(epoch_label(e)) for e in range(5)
        ]
